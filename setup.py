"""Legacy-install shim.

This environment is offline (no ``wheel`` available), so ``pip install -e .``
must take the legacy ``setup.py develop`` path; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()

"""The batch pipeline: one engine API for mixed insert/remove batches.

Builds a Fig. 12-style mixed update stream (insertions interleaved with
random removals), chunks it into batches, and replays it twice on the
order-based engine — once per edge, once through ``apply_batch`` — then
shows the naive engine turning the same batches into one recomputation
each.  The point to watch: identical final core numbers, far less ``mcd``
repair work, and every engine reached through ``make_engine``.

Run:  python examples/batch_pipeline.py
"""

import time

from repro import Batch, load_dataset, make_engine
from repro.bench.workloads import mixed_batch_workload


def main() -> None:
    dataset = load_dataset("gowalla", scale=0.3, seed=13)
    workload, plan, batches = mixed_batch_workload(
        dataset, n_updates=400, batch_size=100, p=0.3, seed=13
    )
    print(
        f"dataset gowalla: base graph m={workload.base_graph().m}, "
        f"plan of {len(plan)} mixed ops in {len(batches)} batches"
    )

    # Per-edge replay: one mcd repair per update.
    per_edge = make_engine("order", workload.base_graph(), seed=13)
    started = time.perf_counter()
    for kind, (u, v) in plan:
        op = per_edge.insert_edge if kind == "insert" else per_edge.remove_edge
        op(u, v)
    per_edge_seconds = time.perf_counter() - started

    # Batched replay: mcd repair coalesced per same-kind run.
    batched = make_engine("order", workload.base_graph(), seed=13)
    started = time.perf_counter()
    for batch in batches:
        batched.apply_batch(batch)
    batched_seconds = time.perf_counter() - started

    assert per_edge.core_numbers() == batched.core_numbers()
    print(
        f"order  per-edge: {per_edge_seconds:.3f}s, "
        f"{per_edge.mcd_recomputations} mcd recomputations"
    )
    print(
        f"order  batched : {batched_seconds:.3f}s, "
        f"{batched.mcd_recomputations} mcd recomputations "
        f"(same final core numbers)"
    )

    # The order engine defaults to the OM-list sequence backend: order
    # tests are O(1) label compares, never rank walks.  The treap backend
    # stays selectable (sequence="treap" / engine name "order-treap").
    stats = batched.sequence_stats
    treap = make_engine("order-treap", workload.base_graph(), seed=13)
    for batch in batches:
        treap.apply_batch(batch)
    assert treap.core_numbers() == batched.core_numbers()
    print(
        f"order  om backend   : {stats.order_queries} order queries, "
        f"{stats.rank_walk_steps} rank-walk steps, {stats.relabels} relabels"
    )
    print(
        f"order  treap backend: {treap.sequence_stats.order_queries} order "
        f"queries, {treap.sequence_stats.rank_walk_steps} rank-walk steps"
    )

    # The naive engine runs CoreDecomp once per *batch*, not per edge.
    naive = make_engine("naive", workload.base_graph())
    started = time.perf_counter()
    for batch in batches:
        result = naive.apply_batch(batch)
    naive_seconds = time.perf_counter() - started
    assert naive.core_numbers() == batched.core_numbers()
    print(
        f"naive  batched : {naive_seconds:.3f}s, "
        f"{naive.recomputations} recomputations for {len(plan)} ops"
    )

    # Batches are first-class values: build them directly, too.
    demo = Batch.inserts([("a", "b"), ("b", "c"), ("c", "a")]).remove("a", "b")
    engine = make_engine("trav-2", workload.base_graph())
    summary = engine.apply_batch(demo)
    print(
        f"trav-2 ad-hoc batch: {summary.ops} ops, "
        f"net |V*|={summary.total_changed}, {summary.seconds:.4f}s"
    )


if __name__ == "__main__":
    main()

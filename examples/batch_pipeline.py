"""The batch pipeline through the service façade.

Builds a Fig. 12-style mixed update stream (insertions interleaved with
random removals), chunks it into batches, and replays it twice on the
order-based engine — once per edge, once as transactional commits — then
shows the naive engine turning the same batches into one recomputation
each.  The point to watch: identical final core numbers, far less ``mcd``
repair work, and every session opened through ``CoreService``.

Run:  python examples/batch_pipeline.py
"""

import time

from repro import Batch, CoreService, load_dataset
from repro.bench.workloads import mixed_batch_workload


def main() -> None:
    dataset = load_dataset("gowalla", scale=0.3, seed=13)
    workload, plan, batches = mixed_batch_workload(
        dataset, n_updates=400, batch_size=100, p=0.3, seed=13
    )
    print(
        f"dataset gowalla: base graph m={workload.base_graph().m}, "
        f"plan of {len(plan)} mixed ops in {len(batches)} batches"
    )

    # Per-edge replay: one one-op commit (and one mcd repair) per update.
    # The paper's engine is pinned by name here because the story below
    # is its mcd-repair amortization (the registry default is the
    # simplified engine, which has no mcd at all).
    per_edge = CoreService.open(workload.base_graph(), engine="order", seed=13)
    started = time.perf_counter()
    for kind, (u, v) in plan:
        op = per_edge.insert if kind == "insert" else per_edge.remove
        op(u, v)
    per_edge_seconds = time.perf_counter() - started

    # Batched replay: mcd repair coalesced per same-kind run.
    batched = CoreService.open(workload.base_graph(), engine="order", seed=13)
    started = time.perf_counter()
    for batch in batches:
        batched.apply(batch)
    batched_seconds = time.perf_counter() - started

    assert per_edge.cores() == batched.cores()
    print(
        f"order  per-edge: {per_edge_seconds:.3f}s, "
        f"{per_edge.engine.mcd_recomputations} mcd recomputations"
    )
    print(
        f"order  batched : {batched_seconds:.3f}s, "
        f"{batched.engine.mcd_recomputations} mcd recomputations "
        f"(same final core numbers)"
    )

    # The order engine defaults to the OM-list sequence backend: order
    # tests are O(1) label compares, never rank walks.  The treap backend
    # stays selectable (engine="order-treap").
    stats = batched.engine.sequence_stats
    treap = CoreService.open(workload.base_graph(), engine="order-treap", seed=13)
    for batch in batches:
        treap.apply(batch)
    assert treap.cores() == batched.cores()
    print(
        f"order  om backend   : {stats.order_queries} order queries, "
        f"{stats.rank_walk_steps} rank-walk steps, {stats.relabels} relabels"
    )
    print(
        f"order  treap backend: "
        f"{treap.engine.sequence_stats.order_queries} order queries, "
        f"{treap.engine.sequence_stats.rank_walk_steps} rank-walk steps"
    )

    # The naive engine runs CoreDecomp once per *batch*, not per edge.
    naive = CoreService.open(workload.base_graph(), engine="naive")
    started = time.perf_counter()
    for batch in batches:
        naive.apply(batch)
    naive_seconds = time.perf_counter() - started
    assert naive.cores() == batched.cores()
    print(
        f"naive  batched : {naive_seconds:.3f}s, "
        f"{naive.engine.recomputations} recomputations for {len(plan)} ops"
    )

    # Batches are first-class values: build them directly, too.
    demo = Batch.inserts([("a", "b"), ("b", "c"), ("c", "a")]).remove("a", "b")
    svc = CoreService.open(workload.base_graph(), engine="trav-2")
    receipt = svc.apply(demo)
    print(
        f"trav-2 ad-hoc batch: {receipt.ops} ops, "
        f"net |V*|={len(receipt.deltas)}, {receipt.seconds:.4f}s"
    )


if __name__ == "__main__":
    main()

"""Checkpoint and restore a CoreService session across "restarts".

Index creation is the one-time cost of adopting core maintenance
(Table III of the paper).  A long-lived service amortizes it once and then
checkpoints the maintained state: graph + k-order + deg+ + mcd.
``CoreService.load`` validates every invariant before going live, so a
corrupt checkpoint fails fast instead of silently corrupting future
updates — and the restored session subscribes and commits like the
original.

Run:  python examples/index_checkpointing.py
"""

import tempfile
import time
from pathlib import Path

from repro import CoreService, load_dataset


def main() -> None:
    dataset = load_dataset("livejournal", scale=0.6, seed=21)

    started = time.perf_counter()
    svc = CoreService.open(dataset.edges)
    build_seconds = time.perf_counter() - started
    print(f"cold index build: {build_seconds:.3f}s "
          f"(n={svc.graph.n}, m={svc.graph.m})")

    # Serve some traffic, then checkpoint.
    churn = dataset.edges[:200]
    with svc.transaction() as tx:
        tx.remove_many(churn)
    with svc.transaction() as tx:
        tx.insert_many(churn[:120])

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "core-index.json"
        started = time.perf_counter()
        svc.save(path)
        print(f"checkpoint written in {time.perf_counter() - started:.3f}s "
              f"({path.stat().st_size / 1024:.0f} KiB)")

        # "Restart": restore instead of rebuilding.
        started = time.perf_counter()
        restored = CoreService.load(path)  # audits invariants on load
        restore_seconds = time.perf_counter() - started
        print(f"restore + audit: {restore_seconds:.3f}s")

        assert restored.cores() == svc.cores()
        # The restored service resumes exactly where the old one stopped
        # — including live event subscriptions.
        promotions = []
        restored.subscribe(promotions.append)
        with restored.transaction() as tx:
            tx.insert_many(churn[120:])
        print(
            "restored service resumed updates; degeneracy "
            f"{restored.degeneracy()}, {len(promotions)} core events "
            "delivered, all invariants hold"
        )
        restored.engine.check()


if __name__ == "__main__":
    main()

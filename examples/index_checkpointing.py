"""Checkpoint and restore the maintained index across "restarts".

Index creation is the one-time cost of adopting core maintenance
(Table III of the paper).  A long-lived service amortizes it once and then
snapshots the maintained state: graph + k-order + deg+ + mcd.  Restoring
validates every invariant before going live, so a corrupt checkpoint fails
fast instead of silently corrupting future updates.

Run:  python examples/index_checkpointing.py
"""

import tempfile
import time
from pathlib import Path

from repro import DynamicGraph, OrderedCoreMaintainer, load_dataset
from repro.core.snapshot import load_snapshot, save_snapshot


def main() -> None:
    dataset = load_dataset("livejournal", scale=0.6, seed=21)

    started = time.perf_counter()
    engine = OrderedCoreMaintainer(DynamicGraph(dataset.edges))
    build_seconds = time.perf_counter() - started
    print(f"cold index build: {build_seconds:.3f}s "
          f"(n={engine.graph.n}, m={engine.graph.m})")

    # Serve some traffic, then checkpoint.
    churn = dataset.edges[:200]
    for u, v in churn:
        engine.remove_edge(u, v)
    for u, v in churn[:120]:
        engine.insert_edge(u, v)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "core-index.json"
        started = time.perf_counter()
        save_snapshot(engine, path)
        print(f"checkpoint written in {time.perf_counter() - started:.3f}s "
              f"({path.stat().st_size / 1024:.0f} KiB)")

        # "Restart": restore instead of rebuilding.
        started = time.perf_counter()
        restored = load_snapshot(path)  # audits invariants on load
        restore_seconds = time.perf_counter() - started
        print(f"restore + audit: {restore_seconds:.3f}s")

        assert restored.core_numbers() == engine.core_numbers()
        # The restored engine picks up exactly where the old one stopped.
        for u, v in churn[120:]:
            restored.insert_edge(u, v)
        print(
            "restored engine resumed updates; degeneracy "
            f"{restored.degeneracy()}, all invariants hold"
        )
        restored.check()


if __name__ == "__main__":
    main()

"""Quickstart: maintain k-cores of a small evolving graph.

Run:  python examples/quickstart.py
"""

from repro import DynamicGraph, OrderedCoreMaintainer


def main() -> None:
    # A triangle with a pendant vertex.
    graph = DynamicGraph([(0, 1), (1, 2), (2, 0), (2, 3)])
    maintainer = OrderedCoreMaintainer(graph)

    print("initial core numbers:", maintainer.core_numbers())
    # {0: 2, 1: 2, 2: 2, 3: 1} — the triangle is a 2-core, vertex 3 hangs off.

    # Close the square 0-3: vertex 3 now has two neighbors in the 2-core.
    result = maintainer.insert_edge(3, 0)
    print(f"insert (3, 0): V* = {result.changed}, visited {result.visited}")
    print("core numbers:", maintainer.core_numbers())

    # Densify: every insertion repairs cores in time ~|V*|, not |V|.
    for edge in [(1, 3), (0, 4), (1, 4), (3, 4)]:
        result = maintainer.insert_edge(*edge)
        print(f"insert {edge}: V* = {result.changed}")
    print("degeneracy:", maintainer.degeneracy())
    print("3-core:", sorted(maintainer.k_core(3)))

    # Edges can leave too; vertex 4 falls back out of the 3-core.
    result = maintainer.remove_edge(3, 4)
    print(f"remove (3, 4): V* = {result.changed}")
    print("final core numbers:", maintainer.core_numbers())

    # The maintained k-order is always a valid CoreDecomp removal order.
    print("maintained k-order:", maintainer.order())


if __name__ == "__main__":
    main()

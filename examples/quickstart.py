"""Quickstart: a CoreService session over a small evolving graph.

Open a session, commit updates transactionally, query k-cores, and react
to core changes through the event stream — the full façade in one page.

Run:  python examples/quickstart.py
"""

from repro import CoreService


def main() -> None:
    # A triangle with a pendant vertex.
    svc = CoreService.open([(0, 1), (1, 2), (2, 0), (2, 3)])

    print("initial core numbers:", svc.cores())
    # {0: 2, 1: 2, 2: 2, 3: 1} — the triangle is a 2-core, vertex 3 hangs off.

    # React to every core change as it commits.
    events = svc.subscribe(
        lambda e: print(f"  event: {e.vertex} {e.old_core} -> {e.new_core}")
    )

    # Close the square 0-3: vertex 3 now has two neighbors in the 2-core.
    receipt = svc.insert(3, 0)
    print(f"insert (3, 0): deltas {dict(receipt.deltas)}")

    # Densify atomically: one transaction, one engine batch, one receipt.
    with svc.transaction() as tx:
        tx.insert(1, 3).insert(0, 4).insert(1, 4).insert(3, 4)
    print(f"transaction committed {tx.receipt.ops} inserts "
          f"({tx.receipt.promotions} promotions)")

    print("degeneracy:", svc.degeneracy())
    print("3-core:", sorted(svc.kcore(3)))
    print("top vertices:", svc.top(3))

    # Edges can leave too; vertex 4 falls back out of the 3-core.
    receipt = svc.remove(3, 4)
    print(f"remove (3, 4): deltas {dict(receipt.deltas)}")
    events.close()
    print("final core numbers:", svc.cores())

    # A transaction that fails rolls back without touching the engine.
    try:
        with svc.transaction() as tx:
            tx.insert(7, 8)
            raise RuntimeError("caller changed its mind")
    except RuntimeError:
        pass
    print("after rollback, (7, 8) absent:", svc.core(7, None) is None)


if __name__ == "__main__":
    main()

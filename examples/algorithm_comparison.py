"""Head-to-head: order-based vs traversal vs naive on one stream.

A miniature of the paper's Table II and Fig. 2 on a single dataset:
inserts then removes the same edge stream with all three engines, printing
accumulated time and search-space statistics.  Sessions open through the
service façade; the per-edge replay times ``service.engine`` directly so
the measurement is of the paper's update algorithms, not the wrapper.

Run:  python examples/algorithm_comparison.py [dataset]
"""

import sys

from repro import CoreService, load_dataset
from repro.bench.runner import run_updates
from repro.bench.workloads import make_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gowalla"
    dataset = load_dataset(name, seed=5)
    workload = make_workload(dataset, n_updates=300, seed=5)
    print(
        f"dataset {name}: base graph m={len(workload.base_edges)}, "
        f"{len(workload.update_edges)} updates"
    )
    header = (
        f"{'engine':<10} {'ins time':>9} {'rem time':>9} "
        f"{'visited/changed':>16} {'max visited':>12}"
    )
    print(header)
    print("-" * len(header))
    for engine_name in ("order", "trav-2", "trav-4", "naive"):
        svc = CoreService.open(
            workload.base_graph(), engine=engine_name, seed=5
        )
        ins = run_updates(svc.engine, workload.update_edges, "insert")
        rem = run_updates(
            svc.engine, list(reversed(workload.update_edges)), "remove"
        )
        ratio = ins.visited_to_changed_ratio()
        print(
            f"{engine_name:<10} {ins.total_seconds:>8.3f}s "
            f"{rem.total_seconds:>8.3f}s {ratio:>16.1f} "
            f"{max(ins.visited):>12}"
        )
    print(
        "\nThe order-based engine visits within a small factor of |V*| "
        "while the traversal engine's search space explodes on some edges."
    )


if __name__ == "__main__":
    main()

"""Community tracking over a social-network edge stream.

The paper's introduction motivates core maintenance with community search
on evolving social networks.  This example replays the facebook stand-in
as a live stream: friendships arrive one at a time and we keep asking for
the k-core community of one user — without ever recomputing cores from
scratch.

Run:  python examples/social_stream_communities.py
"""

from repro import OrderedCoreMaintainer, load_dataset
from repro.applications.community import best_community, kcore_community
from repro.bench.workloads import make_workload


def main() -> None:
    dataset = load_dataset("facebook", scale=0.5, seed=7)
    workload = make_workload(dataset, n_updates=1500, seed=7)
    maintainer = OrderedCoreMaintainer(workload.base_graph())

    # Track the most active user (highest initial coreness).
    user = max(maintainer.core_numbers(), key=lambda v: maintainer.core_of(v))
    k = max(2, maintainer.core_of(user) // 2)
    print(f"tracking user {user} at cohesion level k={k}")

    checkpoints = max(1, len(workload.update_edges) // 5)
    for i, (u, v) in enumerate(workload.update_edges, 1):
        maintainer.insert_edge(u, v)
        if i % checkpoints == 0:
            community = kcore_community(maintainer, user, k)
            print(
                f"after {i:5d} new friendships: "
                f"community size {len(community):4d}, "
                f"user coreness {maintainer.core_of(user)}"
            )

    level, community = best_community(maintainer, user, min_size=5)
    print(
        f"final: tightest community of user {user} has "
        f"{len(community)} members at k={level}"
    )


if __name__ == "__main__":
    main()

"""Community tracking over a social-network edge stream.

The paper's introduction motivates core maintenance with community search
on evolving social networks.  This example replays the facebook stand-in
as a live stream through a ``CoreService`` session: friendships commit in
small transactions, a **subscription** watches one user's coreness move,
and the k-core community queries never trigger a recomputation.

Run:  python examples/social_stream_communities.py
"""

from repro import CoreService
from repro import load_dataset
from repro.applications.community import best_community, kcore_community
from repro.bench.workloads import make_workload


def main() -> None:
    dataset = load_dataset("facebook", scale=0.5, seed=7)
    workload = make_workload(dataset, n_updates=1500, seed=7)
    svc = CoreService.open(workload.base_graph(), seed=7)

    # Track the most active user (highest initial coreness).
    user, coreness = svc.top(1)[0]
    k = max(2, coreness // 2)
    print(f"tracking user {user} at cohesion level k={k}")

    # React to the tracked user's moves as they commit.
    def on_event(event):
        if event.vertex == user:
            print(
                f"  user {user} moved: coreness "
                f"{event.old_core} -> {event.new_core} "
                f"(commit #{event.receipt_id})"
            )

    svc.subscribe(on_event, min_k=k)

    checkpoints = max(1, len(workload.update_edges) // 5)
    for i in range(0, len(workload.update_edges), checkpoints):
        chunk = workload.update_edges[i : i + checkpoints]
        with svc.transaction() as tx:
            tx.insert_many(chunk)
        community = kcore_community(svc.engine, user, k)
        print(
            f"after {i + len(chunk):5d} new friendships: "
            f"community size {len(community):4d}, "
            f"user coreness {svc.core(user)}"
        )

    level, community = best_community(svc.engine, user, min_size=5)
    print(
        f"final: tightest community of user {user} has "
        f"{len(community)} members at k={level}"
    )


if __name__ == "__main__":
    main()

"""Who is in the densest collaboration core, month by month?

A DBLP-style temporal collaboration network: papers arrive in timestamp
order and every paper adds a clique among its authors.  We maintain core
numbers incrementally and watch the "elite" core — the max-k core — grow
and shift, plus an approximate densest subgroup.

Run:  python examples/temporal_collaboration.py
"""

from repro import OrderedCoreMaintainer, load_dataset
from repro.applications.densest import dynamic_densest


def main() -> None:
    dataset = load_dataset("dblp", scale=0.4, seed=11)
    stream = dataset.stream()
    # Start from the first 60% of history, stream in the remaining 40%.
    split = int(len(stream) * 0.6)
    maintainer = OrderedCoreMaintainer(stream.graph_before(split))
    densest = dynamic_densest(maintainer)

    _, future = stream.split_at(split)
    epochs = 8
    per_epoch = max(1, len(future) // epochs)
    print(f"replaying {len(future)} collaborations in {epochs} epochs")
    for epoch in range(epochs):
        chunk = future[epoch * per_epoch : (epoch + 1) * per_epoch]
        promoted = 0
        for u, v in chunk:
            promoted += len(maintainer.insert_edge(u, v).changed)
        top = maintainer.degeneracy()
        elite = maintainer.k_core(top)
        dens_set, dens = densest.current()
        print(
            f"epoch {epoch + 1}: +{len(chunk):4d} edges, "
            f"{promoted:3d} promotions | elite core k={top} "
            f"({len(elite)} authors) | densest approx {dens:.2f} "
            f"({len(dens_set)} authors)"
        )


if __name__ == "__main__":
    main()

"""Who is in the densest collaboration core, month by month?

A DBLP-style temporal collaboration network: papers arrive in timestamp
order and every paper adds a clique among its authors.  Each epoch of
collaborations commits as one service transaction, a subscriber tallies
promotions, and the "elite" core — the max-k core — is read straight
from the query layer, alongside an approximate densest subgroup.

Run:  python examples/temporal_collaboration.py
"""

from repro import CoreService, load_dataset
from repro.applications.densest import dynamic_densest


def main() -> None:
    dataset = load_dataset("dblp", scale=0.4, seed=11)
    stream = dataset.stream()
    # Start from the first 60% of history, stream in the remaining 40%.
    split = int(len(stream) * 0.6)
    svc = CoreService.open(stream.graph_before(split))
    densest = dynamic_densest(svc.engine)

    _, future = stream.split_at(split)
    epochs = 8
    per_epoch = max(1, len(future) // epochs)
    print(f"replaying {len(future)} collaborations in {epochs} epochs")
    for epoch in range(epochs):
        chunk = future[epoch * per_epoch : (epoch + 1) * per_epoch]
        with svc.transaction() as tx:
            for u, v in chunk:
                if not svc.graph.has_edge(u, v):
                    tx.insert(u, v)
        promoted = tx.receipt.promotions
        top = svc.degeneracy()
        elite = svc.kcore(top)
        dens_set, dens = densest.current()
        print(
            f"epoch {epoch + 1}: +{len(chunk):4d} edges, "
            f"{promoted:3d} promotions | elite core k={top} "
            f"({len(elite)} authors) | densest approx {dens:.2f} "
            f"({len(dens_set)} authors)"
        )


if __name__ == "__main__":
    main()

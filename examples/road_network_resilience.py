"""Core resilience of a road network under edge failures.

The removal-heavy counterpart to the insertion examples: roads fail
(randomly, or targeted at the densest interchanges) and ``OrderRemoval``
repairs core numbers after every failure.  Sessions open through the
service façade; the coreness spectrum before and after comes from the
query layer.  The coreness profile of a road network is shallow
(max k = 3), so watch how quickly targeted failures flatten it compared
to random ones.

Run:  python examples/road_network_resilience.py
"""

from repro import CoreService, load_dataset
from repro.applications.resilience import core_resilience_profile


def main() -> None:
    dataset = load_dataset("ca", seed=3)
    failures = dataset.graph().m // 4

    for mode in ("random", "targeted"):
        svc = CoreService.open(dataset.edges)
        before = svc.spectrum()
        profile = core_resilience_profile(
            svc.engine, failures, mode=mode, seed=3
        )
        after = svc.spectrum()
        print(f"--- {mode} failures ({profile.steps()} edges removed) ---")
        print(f"  core spectrum before: {dict(sorted(before.items()))}")
        print(f"  core spectrum after:  {dict(sorted(after.items()))}")
        print(f"  total core demotions: {profile.total_demotions}")
        print(
            "  degeneracy trajectory: "
            f"{profile.degeneracy[0]} -> {profile.degeneracy[-1]}"
        )


if __name__ == "__main__":
    main()

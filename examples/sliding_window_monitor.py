"""Sliding-window core monitoring: "who is in the hot core right now?"

A timestamped activity stream (the gowalla stand-in replayed as check-in
ties) flows through a sliding window: an interaction counts for a fixed
horizon, then expires.  The monitor drives a ``CoreService`` session, so
arrivals and expiries commit as transactions and its promotion/demotion
statistics are plain event subscribers.

The window workload itself is constructed through ``repro.scenarios``
— ``scenario_from_stream(..., every=TICK, window=WINDOW)`` is the one
source of truth for how arrivals group into ticks and when edges
expire.  The monitor consumes the same stream live, and the finale
replays the scenario through the replay driver and asserts both paths
reached the identical core map (compared by digest).

Run:  python examples/sliding_window_monitor.py
"""

from repro import load_dataset
from repro.scenarios import core_digest, replay, scenario_from_stream
from repro.streaming import SlidingWindowCoreMonitor

#: Width of one arrival tick: every edge whose timestamp falls in the
#: same TICK-wide bucket lands on the engine as a single batch.
TICK = 25.0

#: Lifetime of a tie: a window of 1,500 time units over the stream.
WINDOW = 1500.0


def main() -> None:
    dataset = load_dataset("gowalla", scale=0.4, seed=13)
    stream = dataset.stream()

    # One source of truth for the workload: the scenario subsystem turns
    # the arrival stream into timed mixed insert/expire batches.
    scenario = scenario_from_stream(
        stream, name="gowalla-window", every=TICK, window=WINDOW
    )

    monitor = SlidingWindowCoreMonitor(window=WINDOW)
    ticks = list(stream.ticks(every=TICK))
    report_every = max(1, len(ticks) // 8)
    for i, (t, edges) in enumerate(ticks):
        monitor.observe_many(edges, t)
        if (i + 1) % report_every == 0:
            top = monitor.degeneracy()
            hot = monitor.k_core(top)
            print(
                f"t={t:7.0f}: {monitor.live_edges():5d} live ties | "
                f"hottest core k={top:2d} with {len(hot):3d} users | "
                f"{monitor.stats.promotions} promotions, "
                f"{monitor.stats.demotions} demotions so far"
            )

    # The live monitor and a cold replay of the recorded scenario must
    # land on the same core map — same workload, two drivers.
    live_digest = core_digest(monitor.service.cores())
    replayed = replay(scenario)
    assert replayed.checkpoints[-1].digest == live_digest, (
        "monitor and scenario replay diverged"
    )
    print(
        f"scenario replay agrees: {replayed.ticks} ticks, "
        f"{replayed.ops} ops, final digest {live_digest}"
    )

    removed = monitor.drain()
    commits = monitor.service.last_receipt.receipt_id
    print(
        f"stream over: drained {removed} remaining ties; totals — "
        f"{monitor.stats.arrivals} arrivals, {monitor.stats.refreshes} "
        f"refreshes, {monitor.stats.expiries} expiries in "
        f"{commits} service commits ({len(ticks)} arrival ticks)"
    )


if __name__ == "__main__":
    main()

"""Sliding-window core monitoring: "who is in the hot core right now?"

A timestamped activity stream (the gowalla stand-in replayed as check-in
ties) flows through a sliding window: an interaction counts for a fixed
horizon, then expires.  Every arrival and expiry is a single incremental
core update — this is the deployment shape the paper's streaming
motivation describes.

Run:  python examples/sliding_window_monitor.py
"""

from repro import load_dataset
from repro.streaming import SlidingWindowCoreMonitor


def main() -> None:
    dataset = load_dataset("gowalla", scale=0.4, seed=13)
    # Replay with one edge per tick and a window of 1,500 ticks.
    monitor = SlidingWindowCoreMonitor(window=1500.0)
    report_every = max(1, len(dataset.edges) // 8)
    for t, (u, v) in enumerate(dataset.edges):
        monitor.observe(u, v, float(t))
        if (t + 1) % report_every == 0:
            top = monitor.degeneracy()
            hot = monitor.k_core(top)
            print(
                f"t={t + 1:6d}: {monitor.live_edges():5d} live ties | "
                f"hottest core k={top:2d} with {len(hot):3d} users | "
                f"{monitor.stats.promotions} promotions, "
                f"{monitor.stats.demotions} demotions so far"
            )
    removed = monitor.drain()
    print(
        f"stream over: drained {removed} remaining ties; totals — "
        f"{monitor.stats.arrivals} arrivals, {monitor.stats.refreshes} "
        f"refreshes, {monitor.stats.expiries} expiries"
    )


if __name__ == "__main__":
    main()

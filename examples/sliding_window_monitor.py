"""Sliding-window core monitoring: "who is in the hot core right now?"

A timestamped activity stream (the gowalla stand-in replayed as check-in
ties) flows through a sliding window: an interaction counts for a fixed
horizon, then expires.  The monitor drives a ``CoreService`` session, so
arrivals and expiries commit as transactions and its promotion/demotion
statistics are plain event subscribers.

The replay is fed at the stream's **tick granularity**: the stand-in's
timestamps are dense event indices, so ``TemporalEdgeStream.ticks``
buckets them into bursts of ``TICK`` time units, and each burst reaches
the engine as *one* batch through ``observe_many`` — one commit per
tick, however many ties arrive together.

Run:  python examples/sliding_window_monitor.py
"""

from repro import load_dataset
from repro.streaming import SlidingWindowCoreMonitor

#: Width of one arrival tick: every edge whose timestamp falls in the
#: same TICK-wide bucket lands on the engine as a single batch.
TICK = 25.0


def main() -> None:
    dataset = load_dataset("gowalla", scale=0.4, seed=13)
    stream = dataset.stream()
    # A window of 1,500 ticks over the check-in stream.
    monitor = SlidingWindowCoreMonitor(window=1500.0)
    ticks = list(stream.ticks(every=TICK))
    report_every = max(1, len(ticks) // 8)
    for i, (t, edges) in enumerate(ticks):
        monitor.observe_many(edges, t)
        if (i + 1) % report_every == 0:
            top = monitor.degeneracy()
            hot = monitor.k_core(top)
            print(
                f"t={t:7.0f}: {monitor.live_edges():5d} live ties | "
                f"hottest core k={top:2d} with {len(hot):3d} users | "
                f"{monitor.stats.promotions} promotions, "
                f"{monitor.stats.demotions} demotions so far"
            )
    removed = monitor.drain()
    commits = monitor.service.last_receipt.receipt_id
    print(
        f"stream over: drained {removed} remaining ties; totals — "
        f"{monitor.stats.arrivals} arrivals, {monitor.stats.refreshes} "
        f"refreshes, {monitor.stats.expiries} expiries in "
        f"{commits} service commits ({len(ticks)} arrival ticks)"
    )


if __name__ == "__main__":
    main()

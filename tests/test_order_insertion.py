"""Unit tests for OrderInsert (Algorithms 2-3), incl. the paper examples."""

import pytest

from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs.undirected import DynamicGraph

from helpers import fig3_edges, u


def fresh_maintainer(edges, **kw):
    kw.setdefault("audit", True)
    return OrderedCoreMaintainer(DynamicGraph(edges), **kw)


class TestBasicInsertions:
    def test_insert_into_empty_graph(self):
        m = OrderedCoreMaintainer(DynamicGraph(), audit=True)
        result = m.insert_edge(1, 2)
        assert set(result.changed) == {1, 2}
        assert result.k == 0
        assert m.core_of(1) == m.core_of(2) == 1

    def test_pendant_insertion_changes_nothing(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        result = m.insert_edge(3, 4)  # new vertex 4 hangs off vertex 3
        assert set(result.changed) == {4}  # 4 enters the 1-core
        assert m.core_of(3) == 1

    def test_closing_square_promotes(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        result = m.insert_edge(3, 0)
        assert result.changed == (3,)
        assert result.kind == "insert"
        assert result.k == 1
        assert result.delta == 1
        assert m.core_of(3) == 2

    def test_whole_cycle_promotes_together(self):
        # Path 0-1-2-3: closing the cycle lifts all four to core 2.
        m = fresh_maintainer([(0, 1), (1, 2), (2, 3)])
        result = m.insert_edge(3, 0)
        assert set(result.changed) == {0, 1, 2, 3}
        assert all(m.core_of(v) == 2 for v in range(4))

    def test_duplicate_edge_rejected(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        from repro.errors import EdgeExistsError

        with pytest.raises(EdgeExistsError):
            m.insert_edge(0, 1)

    def test_self_loop_rejected(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        from repro.errors import SelfLoopError

        with pytest.raises(SelfLoopError):
            m.insert_edge(0, 0)

    def test_building_clique_step_by_step(self):
        m = OrderedCoreMaintainer(DynamicGraph(), audit=True)
        vertices = range(5)
        for i in vertices:
            for j in range(i + 1, 5):
                m.insert_edge(i, j)
        assert all(m.core_of(v) == 4 for v in vertices)

    def test_insert_between_different_cores(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        # vertex 3 (core 1) to vertex 0 (core 2): K = 1 either way round.
        result = m.insert_edge(0, 3)
        assert result.k == 1
        assert m.core_of(3) == 2


class TestPaperExamples:
    def test_example_5_2_single_visit(self):
        """Insert (v4, u0): V* = {u0}, and OrderInsert visits ~1 vertex
        where the traversal algorithm visits the whole chain."""
        m = fresh_maintainer(fig3_edges(tail=2000), audit=False)
        result = m.insert_edge(4, u(0))
        assert result.changed == (u(0),)
        assert result.visited <= 3
        assert m.core_of(u(0)) == 2
        m.check()

    def test_example_5_2_chain_untouched(self):
        m = fresh_maintainer(fig3_edges(tail=100))
        m.insert_edge(4, u(0))
        for i in range(1, 100):
            assert m.core_of(u(i)) == 1

    def test_fig3_insert_inside_3_subcore(self):
        """Linking the two K4s densifies nothing immediately (cores cap
        at 3 until degree supports 4)."""
        m = fresh_maintainer(fig3_edges(tail=30))
        result = m.insert_edge(6, 10)
        assert result.changed == ()
        assert m.core_of(6) == 3 and m.core_of(10) == 3


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_insert_streams_match_recomputation(self, seed):
        import random

        rng = random.Random(seed)
        n = 25
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        base, updates = pairs[:40], pairs[40:140]
        m = fresh_maintainer(base)
        graph_copy = DynamicGraph(base)
        for e in updates:
            m.insert_edge(*e)
            graph_copy.add_edge(*e)
            assert m.core_numbers() == core_numbers(graph_copy)

    def test_theorem_3_1_core_changes_by_at_most_one(self, small_random_graph):
        before = core_numbers(small_random_graph)
        m = OrderedCoreMaintainer(small_random_graph, audit=True)
        import random

        rng = random.Random(0)
        vertices = sorted(before)
        for _ in range(40):
            a, b = rng.sample(vertices, 2)
            if m.graph.has_edge(a, b):
                continue
            snapshot = m.core_numbers()
            result = m.insert_edge(a, b)
            for v, new in m.core_numbers().items():
                assert new - snapshot.get(v, 0) in (0, 1)
            assert all(
                m.core_of(w) == snapshot[w] + 1 for w in result.changed
            )

    def test_v_star_within_one_k_level(self, small_random_graph):
        """Theorem 3.2: only vertices at level K can change."""
        m = OrderedCoreMaintainer(small_random_graph, audit=True)
        import random

        rng = random.Random(1)
        vertices = sorted(small_random_graph.vertices())
        for _ in range(40):
            a, b = rng.sample(vertices, 2)
            if m.graph.has_edge(a, b):
                continue
            before = m.core_numbers()
            result = m.insert_edge(a, b)
            for w in result.changed:
                assert before[w] == result.k

    def test_v_star_connected_in_new_graph(self, small_random_graph):
        """Theorem 3.2(3): the induced subgraph of V* is connected."""
        m = OrderedCoreMaintainer(small_random_graph, audit=True)
        import random

        rng = random.Random(2)
        vertices = sorted(small_random_graph.vertices())
        for _ in range(60):
            a, b = rng.sample(vertices, 2)
            if m.graph.has_edge(a, b):
                continue
            result = m.insert_edge(a, b)
            changed = set(result.changed)
            if len(changed) <= 1:
                continue
            sub = m.graph.subgraph(changed)
            start = next(iter(changed))
            assert sub.connected_component(start) == changed

"""White-box tests of OrderInsert's internals: candidate evictions
(Algorithm 3), Observation 6.1 repositioning, and the jump behaviour."""

import random

import pytest

from repro.core.decomposition import korder_decomposition
from repro.core.insertion import order_insert
from repro.core.korder import KOrder
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs.undirected import DynamicGraph


def build_state(edges, vertices=()):
    """Graph + k-order + cores for direct order_insert driving.

    ``order_insert`` assumes every endpoint is already indexed (vertex
    registration is the maintainer's job), so tests that feed arbitrary
    edges must pre-register the vertex universe.
    """
    graph = DynamicGraph(edges, vertices=vertices)
    decomposition = korder_decomposition(graph, policy="small")
    korder = KOrder.from_decomposition(decomposition, random.Random(0))
    return graph, korder, dict(decomposition.core)


class TestEvictionCascade:
    def test_eviction_happens_on_random_streams(self):
        """Guard against the Algorithm 3 cascade being dead code: across a
        random insertion stream, some update must evict a candidate."""
        rng = random.Random(5)
        n = 30
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        engine = OrderedCoreMaintainer(
            DynamicGraph(pairs[:70], vertices=range(n)), audit=True
        )
        total_evicted = 0
        for e in pairs[70:260]:
            result = engine.insert_edge(*e)
            total_evicted += result.evicted
            # Conservation: every visited vertex is candidate-or-settled,
            # and every eventual candidate was visited.
            assert result.visited >= len(result.changed) + result.evicted
        assert total_evicted > 0

    def test_eviction_counts_on_traversal_engine_too(self):
        from repro.traversal.maintainer import TraversalCoreMaintainer

        rng = random.Random(6)
        n = 30
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        engine = TraversalCoreMaintainer(
            DynamicGraph(pairs[:70], vertices=range(n)), h=2
        )
        assert sum(
            engine.insert_edge(*e).evicted for e in pairs[70:220]
        ) > 0

    def test_targeted_eviction_scenario(self):
        """A hand-built eviction: a near-candidate chain that collapses.

        Square 0-1-2-3 (core 2) with a path 4-5 attached to it at both
        ends: inserting (4, 5)... builds a case where scanning O_1
        considers chain vertices and must retract some.
        """
        edges = [(0, 1), (1, 2), (2, 3), (3, 0),  # square, core 2
                 (0, 4), (4, 5), (5, 6)]           # dangling path, core 1
        graph, korder, core = build_state(edges)
        # Insert (6, 0): path 4-5-6 + 0 forms a cycle -> all rise to 2.
        v_star, k, visited, evicted = order_insert(graph, korder, core, 6, 0)
        assert set(v_star) == {4, 5, 6}
        assert k == 1
        korder.audit(graph, core)

    def test_failed_promotion_evicts_everyone(self):
        """Candidates that cannot close the loop all get evicted."""
        # Path 0-1-2-3-4; insert (0, 2) creates a triangle 0-1-2 only.
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        graph, korder, core = build_state(edges)
        v_star, k, visited, evicted = order_insert(graph, korder, core, 0, 2)
        assert set(v_star) == {0, 1, 2}
        assert core[3] == 1 and core[4] == 1
        korder.audit(graph, core)


class TestRepositioning:
    def test_evicted_vertex_lands_after_settler(self):
        """Observation 6.1: an evicted candidate must end up after the
        vertex whose settlement triggered the cascade."""
        rng = random.Random(7)
        n = 24
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        engine = OrderedCoreMaintainer(
            DynamicGraph(pairs[:60], vertices=range(n)), audit=True
        )
        # audit=True already verifies deg+ against the final order after
        # every update; additionally confirm evictions occurred so the
        # repositioning path was really exercised.
        evictions = sum(
            engine.insert_edge(*e).evicted for e in pairs[60:220]
        )
        assert evictions > 0

    def test_promoted_set_prepended_in_relative_order(self):
        """V* lands at the front of O_{K+1} preserving its own order."""
        # Path 0-1-2-3 closed into a cycle: all four promote from O_1.
        edges = [(0, 1), (1, 2), (2, 3)]
        graph, korder, core = build_state(edges)
        before = [v for v in korder.iter_block(1)]
        v_star, k, _, _ = order_insert(graph, korder, core, 3, 0)
        block2 = list(korder.iter_block(2))
        assert block2[: len(v_star)] == v_star
        # Relative order among promoted vertices matches their O_1 order.
        original_pos = {v: i for i, v in enumerate(before)}
        promoted_pos = [original_pos[v] for v in v_star]
        assert promoted_pos == sorted(promoted_pos)

    def test_untouched_higher_blocks_keep_order(self):
        """An O_1 update must not reshuffle O_3."""
        k4 = [(10, 11), (10, 12), (10, 13), (11, 12), (11, 13), (12, 13)]
        chain = [(0, 1), (1, 2)]
        graph, korder, core = build_state(k4 + chain)
        before = list(korder.iter_block(3))
        order_insert(graph, korder, core, 2, 0)
        assert list(korder.iter_block(3)) == before


class TestJumps:
    def test_case_2a_vertices_never_visited(self):
        """On the paper's chain scenario the scan must not touch the
        skipped Case-2a stretch at all (visited == 1)."""
        from helpers import fig3_edges, u

        graph = DynamicGraph(fig3_edges(tail=300))
        decomposition = korder_decomposition(graph, policy="small")
        korder = KOrder.from_decomposition(decomposition, random.Random(1))
        core = dict(decomposition.core)
        v_star, k, visited, evicted = order_insert(
            graph, korder, core, 4, u(0)
        )
        assert v_star == [u(0)]
        assert visited == 1
        assert evicted == 0

    def test_no_work_when_deg_plus_fits(self):
        """Lemma 5.2 early exit: zero visits when deg+(u) stays <= K."""
        # Triangle with pendant: adding a second pendant edge to vertex 3
        # keeps deg+(3) at 1 <= core 1 only if 3 is ordered before the new
        # neighbor; verify via the result's visited count being 0 or the
        # cores being unchanged.
        engine = OrderedCoreMaintainer(
            DynamicGraph([(0, 1), (1, 2), (2, 0), (2, 3)]), audit=True
        )
        result = engine.insert_edge(3, 99)  # fresh pendant vertex
        assert result.changed == (99,)  # only the new vertex enters core 1

    def test_insertion_between_blocks_touches_lower_block_only(self):
        engine = OrderedCoreMaintainer(
            DynamicGraph(
                [(0, 1), (1, 2), (2, 0),  # triangle, core 2
                 (5, 6)]                   # lone edge, core 1
            ),
            audit=True,
        )
        result = engine.insert_edge(5, 0)
        assert result.k == 1
        assert engine.core_of(5) == 1  # still degree-starved at level 2


class TestConsistencyWithOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_internals_roundtrip_many_shapes(self, seed):
        """Drive order_insert directly (not via the maintainer) and check
        cores against recomputation plus a full audit every step."""
        from repro.core.decomposition import core_numbers

        rng = random.Random(seed)
        n = 18
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        graph, korder, core = build_state(pairs[:30], vertices=range(n))
        for e in pairs[30:90]:
            order_insert(graph, korder, core, *e)
            korder.audit(graph, core)
            assert core == core_numbers(graph)

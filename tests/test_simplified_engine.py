"""The simplified order-based engine (Guo & Sekerinski).

Beyond the cross-engine agreement suites (``test_batch_property``,
``test_service_events``) this pins the engine's *protocol*: no ``mcd``
structure exists — ``mcd`` is derived from the two order-local degrees —
batch counters report ``candidate_visits`` instead of
``mcd_recomputations``, and snapshots round-trip through the shared
order-family layout with the ``engine`` field dispatching the restore.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer, compute_mcd
from repro.core.simplified import SimplifiedCoreMaintainer, compute_d_in
from repro.core.snapshot import from_snapshot, to_snapshot
from repro.engine import Batch, make_engine
from repro.errors import ServiceError, StaleIndexError
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService


def random_gnm(n, m, seed=0):
    rng = random.Random(seed)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    return pairs[:m], pairs[m:]


class TestRegistryFamily:
    def test_base_name_and_backend_aliases(self):
        graph = DynamicGraph([(0, 1), (1, 2), (2, 0)])
        engine = make_engine("order-simplified", graph.copy())
        assert isinstance(engine, SimplifiedCoreMaintainer)
        assert engine.name == "order-simplified"
        assert make_engine("order-simplified-om", graph.copy()).sequence == "om"
        assert (
            make_engine("order-simplified-treap", graph.copy()).sequence
            == "treap"
        )

    @pytest.mark.parametrize("policy", ["small", "large", "random"])
    def test_policy_aliases(self, policy):
        graph = DynamicGraph([(0, 1), (1, 2), (2, 0), (0, 3)])
        engine = make_engine(f"order-simplified-{policy}", graph, seed=5)
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_batch_scheduler_options(self):
        # Since the engine gained batch-native runs, it carries the same
        # region-scheduler options as the default order family; the
        # schedule must report its shape and agree with recomputation.
        edges, spare = random_gnm(18, 30, seed=9)
        engine = make_engine(
            "order-simplified", DynamicGraph(edges), partition=True,
            parallel=2,
        )
        result = engine.apply_batch(Batch.inserts(spare[:10]))
        assert result.counters["regions"] >= 1
        assert engine.core_numbers() == core_numbers(engine.graph)


class TestNoMcdProtocol:
    def test_mcd_is_derived_not_stored(self):
        edges, _ = random_gnm(15, 35, seed=1)
        engine = make_engine("order-simplified", DynamicGraph(edges))
        # The property materializes d_in + d_out on demand ...
        assert engine.mcd == compute_mcd(engine.graph, engine.core)
        # ... and no maintained mcd dict backs it.
        assert not hasattr(engine, "_mcd")
        assert not hasattr(engine, "mcd_recomputations")

    def test_degree_identity_holds_under_updates(self):
        edges, spare = random_gnm(18, 40, seed=2)
        engine = make_engine(
            "order-simplified", DynamicGraph(edges), audit=True
        )
        for e in spare[:8]:
            engine.insert_edge(*e)
        for e in edges[:8]:
            engine.remove_edge(*e)
        mcd = compute_mcd(engine.graph, engine.core)
        for v in engine.core:
            assert engine.d_in[v] + engine.d_out[v] == mcd[v]
        assert engine.d_in == compute_d_in(
            engine.graph, engine.core, engine.order()
        )

    def test_batch_counters_report_candidate_visits(self):
        edges, spare = random_gnm(16, 30, seed=3)
        engine = make_engine("order-simplified", DynamicGraph(edges))
        result = engine.apply_batch(
            Batch.inserts(spare[:6]).remove(*edges[0]).remove(*edges[1])
        )
        assert "candidate_visits" in result.counters
        assert "mcd_recomputations" not in result.counters
        assert result.counters["candidate_visits"] >= 0
        assert "order_queries" in result.counters

    def test_counters_are_per_batch_deltas(self):
        edges, spare = random_gnm(16, 30, seed=4)
        engine = make_engine("order-simplified", DynamicGraph(edges))
        first = engine.apply_batch(Batch.inserts(spare[:8]))
        second = engine.apply_batch(Batch.removes(spare[:8]))
        totals = engine._batch_counters()
        assert totals["candidate_visits"] == (
            first.counters.get("candidate_visits", 0)
            + second.counters.get("candidate_visits", 0)
        )

    def test_vertex_lifecycle(self):
        engine = make_engine(
            "order-simplified", DynamicGraph([(0, 1), (1, 2), (2, 0)]),
            audit=True,
        )
        assert engine.add_vertex("iso")
        assert not engine.add_vertex("iso")
        engine.insert_edge("iso", 0)
        engine.remove_vertex(1)
        assert engine.core_numbers() == core_numbers(engine.graph)
        assert "iso" in engine.d_in and 1 not in engine.d_in


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    sequence=st.sampled_from(["om", "treap"]),
    data=st.data(),
)
def test_simplified_matches_recompute(seed, sequence, data):
    """Hypothesis: arbitrary mixed per-edge streams keep the index true
    on both sequence backends, with the full d_in/d_out audit on."""
    rng = random.Random(seed)
    n = data.draw(st.integers(min_value=4, max_value=18), label="n")
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    m = data.draw(st.integers(min_value=0, max_value=len(pairs)), label="m")
    base, spare = pairs[:m], pairs[m:]
    engine = make_engine(
        "order-simplified",
        DynamicGraph(base, vertices=range(n)),
        seed=seed,
        audit=True,
        sequence=sequence,
    )
    batch = Batch()
    for edge in spare[: data.draw(st.integers(0, 10), label="inserts")]:
        batch.insert(*edge)
    removes = data.draw(st.integers(0, 10), label="removes")
    for edge in rng.sample(base, min(len(base), removes)):
        batch.remove(*edge)
    engine.apply_batch(batch)
    assert engine.core_numbers() == core_numbers(engine.graph)


class TestSnapshot:
    def test_round_trip_preserves_engine_and_state(self, tmp_path):
        edges, spare = random_gnm(14, 30, seed=6)
        svc = CoreService.open(edges, engine="order-simplified-treap")
        path = tmp_path / "snap.json"
        svc.save(path)
        restored = CoreService.load(path)
        assert restored.engine_name == "order-simplified"
        assert isinstance(restored.engine, SimplifiedCoreMaintainer)
        assert restored.engine.sequence == "treap"
        assert restored.cores() == svc.cores()
        assert restored.engine.order() == svc.engine.order()
        # The restored index is live: updates keep it true.
        restored.apply(Batch.inserts(spare[:5]))
        restored.engine.check()
        assert restored.cores() == core_numbers(restored.graph)

    def test_dispatch_defaults_to_order_engine(self):
        edges, _ = random_gnm(10, 18, seed=7)
        snapshot = to_snapshot(OrderedCoreMaintainer(DynamicGraph(edges)))
        assert snapshot["engine"] == "order"
        # Pre-"engine" snapshots (older layout) restore as the default.
        del snapshot["engine"]
        assert isinstance(from_snapshot(snapshot), OrderedCoreMaintainer)

    def test_unknown_engine_field_fails_loudly(self):
        snapshot = to_snapshot(
            SimplifiedCoreMaintainer(DynamicGraph([(0, 1)]))
        )
        assert snapshot["engine"] == "order-simplified"
        snapshot["engine"] = "order-quantum"
        with pytest.raises(StaleIndexError, match="order-quantum"):
            from_snapshot(snapshot)

    def test_non_order_family_engines_still_refuse_save(self, tmp_path):
        svc = CoreService.open([(0, 1)], engine="trav-2")
        with pytest.raises(ServiceError, match="no snapshot support"):
            svc.save(tmp_path / "nope.json")

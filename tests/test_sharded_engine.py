"""Tests for the sharded order engine (``order-sharded``).

Three layers of guarantees:

* **protocol** — shards materialize per component, cross-shard inserts
  merge (O(smaller), no recomputation), targeted re-shards split
  disconnected shards, and the counters (``shards``, ``shard_merges``,
  ``shard_splits``, ``cross_region_ops``, ``parallel_commits``) tell
  that story in ``BatchResult.counters``;
* **boundary cases** — cross-region edges arriving mid-batch,
  merge-then-remove on the seam, batches over brand-new vertices,
  removal of edges that cannot exist;
* **degeneration** — on a single-component graph the sharded engine is
  the plain order engine, byte-for-byte on snapshots, and the
  hypothesis oracle pins batch agreement on both sequence backends,
  with and without the lock-free parallel pool.
"""

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from engine_contract import SEQUENCE_BACKENDS, sharded_engines
from repro.core.decomposition import core_numbers
from repro.core.snapshot import to_snapshot
from repro.engine import Batch, make_engine
from repro.engine.sharded import ShardedOrderEngine
from repro.errors import EdgeNotFoundError, ServiceError
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService


def pockets_graph(n_pockets=3, size=6, seed=0):
    """Disconnected random pockets; returns (edges, per-pocket edges)."""
    rng = random.Random(seed)
    pockets = []
    for b in range(n_pockets):
        base = b * 100
        verts = range(base, base + size)
        pairs = [(i, j) for i in verts for j in verts if i < j]
        rng.shuffle(pairs)
        pockets.append(pairs[: size + 3])
    return [e for p in pockets for e in p], pockets


class TestShardProtocol:
    def test_one_shard_per_component(self):
        edges, pockets = pockets_graph(4)
        engine = make_engine("order-sharded", DynamicGraph(edges))
        assert isinstance(engine, ShardedOrderEngine)
        assert engine.shard_count == 4
        assert engine.core_numbers() == core_numbers(engine.graph)
        # Every pocket's vertices share one shard id.
        for pocket in pockets:
            sids = {engine.shard_id_of(v) for e in pocket for v in e}
            assert len(sids) == 1

    def test_cross_shard_insert_merges(self):
        edges, _ = pockets_graph(2)
        engine = make_engine("order-sharded", DynamicGraph(edges), audit=True)
        result = engine.insert_edge(0, 100)
        assert engine.shard_count == 1
        assert engine.shard_merges == 1
        assert engine.cross_region_ops == 1
        assert result.kind == "insert"
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_merge_preserves_counters_across_turnover(self):
        edges, _ = pockets_graph(2)
        engine = make_engine("order-sharded", DynamicGraph(edges))
        engine.apply_batch(Batch.removes(edges[:2]))
        before = engine.mcd_recomputations
        stats_before = engine.sequence_stats.order_queries
        engine.insert_edge(0, 100)  # merge retires the smaller engine
        assert engine.mcd_recomputations >= before
        assert engine.sequence_stats.order_queries >= stats_before

    def test_reshard_splits_disconnected_shard(self):
        edges, _ = pockets_graph(2)
        engine = make_engine("order-sharded", DynamicGraph(edges), audit=True)
        engine.insert_edge(0, 100)
        assert engine.shard_count == 1
        engine.remove_edge(0, 100)
        assert engine.shard_count == 1  # removals never split eagerly
        created = engine.reshard()
        assert created == 1
        assert engine.shard_count == 2
        assert engine.shard_splits == 1
        assert engine.core_numbers() == core_numbers(engine.graph)
        assert engine.reshard() == 0  # already per-component

    def test_reshard_batch_policy_splits_after_removal_batches(self):
        edges, _ = pockets_graph(2)
        engine = make_engine(
            "order-sharded", DynamicGraph(edges), reshard="batch", audit=True
        )
        engine.apply_batch(Batch.inserts([(0, 100)]))
        assert engine.shard_count == 1
        result = engine.apply_batch(Batch.removes([(0, 100)]))
        assert engine.shard_count == 2
        assert result.counters["shards"] == 2
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_unknown_reshard_policy_rejected(self):
        with pytest.raises(ValueError, match="reshard policy"):
            make_engine("order-sharded", DynamicGraph(), reshard="eager")

    def test_counters_flow_into_batch_result(self):
        edges, _ = pockets_graph(3)
        engine = make_engine("order-sharded", DynamicGraph(edges))
        result = engine.apply_batch(
            Batch.removes([edges[0], edges[9], edges[18]])
        )
        counters = result.counters
        assert counters["shards"] == 3
        assert counters["regions"] == 3
        assert counters["region_max_size"] == 1
        # Never-touched counters are omitted, not zero-filled.
        assert "shard_merges" not in counters
        assert "cross_region_ops" not in counters
        assert counters["parallel_commits"] == 0
        assert "mcd_recomputations" in counters
        assert "order_queries" in counters

    def test_parallel_commits_run_without_engine_lock(self):
        edges, pockets = pockets_graph(4)
        serial = make_engine("order", DynamicGraph(edges))
        engine = make_engine(
            "order-sharded", DynamicGraph(edges), parallel=3, audit=True
        )
        batch = Batch()
        for pocket in pockets:
            for edge in pocket[:3]:
                batch.remove(*edge)
        serial.apply_batch(batch)
        result = engine.apply_batch(batch)
        assert result.counters["parallel_commits"] == 4
        assert result.counters["regions"] == 4
        assert engine.core_numbers() == serial.core_numbers()

    def test_order_is_a_valid_global_korder(self):
        edges, _ = pockets_graph(3)
        engine = make_engine("order-sharded", DynamicGraph(edges))
        order = engine.order()
        assert sorted(order, key=repr) == sorted(
            engine.graph.vertices(), key=repr
        )
        cores = engine.core
        assert all(
            cores[order[i]] <= cores[order[i + 1]]
            for i in range(len(order) - 1)
        )

    def test_service_wiring_and_snapshot_rejection(self, tmp_path):
        svc = CoreService.open(
            [(0, 1), (1, 2), (2, 0), (5, 6)], engine="order-sharded"
        )
        with svc.transaction() as tx:
            tx.insert(2, 5)
        assert tx.receipt.counters["shard_merges"] == 1
        assert svc.core(5) == 1
        with pytest.raises(ServiceError, match="snapshot"):
            svc.save(tmp_path / "index.json")


class TestShardBoundaries:
    def test_cross_region_edge_arriving_mid_batch(self):
        """A batch that starts intra-shard and then bridges two shards
        mid-stream must merge and keep every op's effect."""
        edges, pockets = pockets_graph(2)
        serial = make_engine("order", DynamicGraph(edges))
        engine = make_engine("order-sharded", DynamicGraph(edges), audit=True)
        batch = (
            Batch()
            .remove(*pockets[0][0])
            .insert(0, 100)  # the cross-region edge, mid-batch
            .remove(*pockets[1][0])
        )
        serial.apply_batch(batch)
        result = engine.apply_batch(batch)
        assert engine.core_numbers() == serial.core_numbers()
        assert result.counters["shard_merges"] == 1
        assert result.counters["cross_region_ops"] == 1
        assert result.counters["regions"] == 1  # merged before grouping
        assert engine.shard_count == 1

    def test_merge_then_remove_on_the_seam(self):
        """Insert a bridging edge and remove it again in one batch: the
        conflicting ops keep their order, the merge stays (sharding is
        allowed to be coarse), and cores end where they started."""
        edges, _ = pockets_graph(2)
        engine = make_engine("order-sharded", DynamicGraph(edges), audit=True)
        before = engine.core_numbers()
        batch = Batch().insert(0, 100).remove(0, 100)
        result = engine.apply_batch(batch)
        assert engine.core_numbers() == before
        assert result.counters["shard_merges"] == 1
        assert engine.shard_count == 1  # merged, not eagerly re-split
        assert not engine.graph.has_edge(0, 100)
        # A reshard recovers the fine-grained sharding.
        engine.reshard()
        assert engine.shard_count == 2
        assert engine.core_numbers() == before

    def test_seam_remove_with_batch_reshard_policy(self):
        edges, _ = pockets_graph(2)
        engine = make_engine(
            "order-sharded", DynamicGraph(edges), reshard="batch", audit=True
        )
        result = engine.apply_batch(Batch().insert(0, 100).remove(0, 100))
        assert result.counters["shard_merges"] == 1
        assert engine.shard_count == 2  # split back at the batch boundary
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_batch_over_brand_new_vertices(self):
        engine = make_engine("order-sharded", DynamicGraph(), audit=True)
        batch = Batch.inserts([("a", "b"), ("b", "c"), ("x", "y")])
        result = engine.apply_batch(batch)
        assert engine.shard_count == 2
        assert engine.core_numbers() == core_numbers(engine.graph)
        assert result.inserts == 3
        # Insert-only batches keep per-op results in batch op order.
        assert [r.edge for r in result.results] == [
            op.edge for op in batch
        ]

    def test_new_vertex_bridging_two_shards(self):
        """A new vertex whose edges land in two different pockets chains
        the merges through its own assignment."""
        edges, _ = pockets_graph(2)
        serial = make_engine("order", DynamicGraph(edges))
        engine = make_engine("order-sharded", DynamicGraph(edges), audit=True)
        batch = Batch.inserts([(0, "hub"), (100, "hub")])
        serial.apply_batch(batch)
        engine.apply_batch(batch)
        assert engine.shard_count == 1
        assert engine.core_numbers() == serial.core_numbers()

    def test_remove_across_shards_raises_edge_not_found(self):
        edges, _ = pockets_graph(2)
        engine = make_engine("order-sharded", DynamicGraph(edges))
        with pytest.raises(EdgeNotFoundError):
            engine.remove_edge(0, 100)
        with pytest.raises(EdgeNotFoundError):
            engine.apply_batch(Batch.removes([(0, 100)]))
        # Nothing committed, nothing corrupted.
        engine.check()
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_parallel_mid_batch_error_leaves_mirror_consistent(self):
        """An invalid intra-shard removal raises from its sub-engine
        mid-commit; the mirror sync must wait for every worker, so the
        landed edges of *all* shards end up mirrored exactly."""
        edges, pockets = pockets_graph(3)
        engine = make_engine("order-sharded", DynamicGraph(edges), parallel=2)
        batch = Batch()
        for pocket in pockets:
            for edge in pocket[:4]:
                batch.remove(*edge)
        # Same-shard endpoints whose edge does not exist: passes the
        # grouping check, fails inside the sub-engine.
        pocket_vertices = sorted({v for e in pockets[0] for v in e})
        present = set(pockets[0]) | {(b, a) for a, b in pockets[0]}
        missing = next(
            (a, b)
            for a in pocket_vertices
            for b in pocket_vertices
            if a < b and (a, b) not in present
        )
        batch.remove(*missing)
        with pytest.raises(EdgeNotFoundError):
            engine.apply_batch(batch)
        engine.check()  # shards, assignment and mirror all consistent
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_vertex_removal_through_the_shards(self):
        edges, _ = pockets_graph(2)
        engine = make_engine("order-sharded", DynamicGraph(edges), audit=True)
        engine.insert_edge(0, 100)
        engine.remove_vertex(0)
        assert not engine.graph.has_vertex(0)
        assert engine.core_numbers() == core_numbers(engine.graph)
        engine.check()

    def test_add_vertex_creates_singleton_shard(self):
        engine = make_engine("order-sharded", DynamicGraph([(0, 1)]))
        assert engine.add_vertex("lonely") is True
        assert engine.add_vertex("lonely") is False
        assert engine.shard_count == 2
        assert engine.core["lonely"] == 0


def _plain_family(sharded_name):
    """The unsharded engine a sharded wrapper degenerates to."""
    return "order" + sharded_name.removeprefix("order-sharded")


@pytest.mark.parametrize("name", sharded_engines())
@pytest.mark.parametrize("sequence", list(SEQUENCE_BACKENDS))
class TestSingleShardDegeneration:
    """One component ⇒ each sharded engine *is* its plain sub-engine."""

    EDGES = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0), (1, 4)]

    def test_snapshot_byte_for_byte(self, name, sequence):
        plain = make_engine(
            _plain_family(name), DynamicGraph(self.EDGES), sequence=sequence
        )
        sharded = make_engine(
            name, DynamicGraph(self.EDGES), sequence=sequence
        )
        assert sharded.shard_count == 1
        (sub,) = sharded.shards
        assert json.dumps(to_snapshot(sub)) == json.dumps(to_snapshot(plain))

    def test_snapshot_byte_for_byte_after_updates(self, name, sequence):
        plain = make_engine(
            _plain_family(name), DynamicGraph(self.EDGES), sequence=sequence
        )
        sharded = make_engine(
            name, DynamicGraph(self.EDGES), sequence=sequence
        )
        batch = Batch().insert(4, 5).insert(5, 0).remove(1, 2).insert(3, 0)
        plain.apply_batch(batch)
        sharded.apply_batch(batch)
        (sub,) = sharded.shards
        assert json.dumps(to_snapshot(sub)) == json.dumps(to_snapshot(plain))


@pytest.mark.parametrize("name", sharded_engines())
class TestShardedOracle:
    """Hypothesis: each sharded engine tracks the from-scratch oracle
    and its plain sub-engine family under arbitrary valid mixed batches,
    on both sequence backends, sequentially and through the lock-free
    pool."""

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        sequence=st.sampled_from(SEQUENCE_BACKENDS),
        parallel=st.sampled_from([None, 3]),
        data=st.data(),
    )
    def test_sharded_matches_plain_and_recompute(
        self, name, seed, sequence, parallel, data
    ):
        rng = random.Random(seed)
        # Several pockets so batches genuinely span shards.
        pairs = []
        for b in range(3):
            base = b * 50
            verts = range(base, base + 8)
            pairs.extend((i, j) for i in verts for j in verts if i < j)
        bridges = [(i, 50 + i) for i in range(8)] + [
            (50 + i, 100 + i) for i in range(8)
        ]
        rng.shuffle(pairs)
        m = data.draw(st.integers(10, len(pairs)), label="m")
        base_edges, spare = pairs[:m], pairs[m:] + bridges
        plain = make_engine(
            _plain_family(name), DynamicGraph(base_edges), seed=seed,
            sequence=sequence,
        )
        sharded = make_engine(
            name, DynamicGraph(base_edges), seed=seed,
            sequence=sequence, parallel=parallel, audit=True,
            reshard=data.draw(
                st.sampled_from(["off", "batch"]), label="reshard"
            ),
        )
        for _ in range(data.draw(st.integers(1, 3), label="rounds")):
            batch = Batch()
            present = list(plain.graph.edges())
            for edge in rng.sample(
                present,
                min(len(present), data.draw(st.integers(0, 8), label="rm")),
            ):
                batch.remove(*edge)
            for edge in spare[: data.draw(st.integers(0, 6), label="ins")]:
                if not plain.graph.has_edge(*edge):
                    batch.insert(*edge)
            spare = spare[6:] + spare[:6]  # rotate the insert pool
            if not batch:
                continue
            plain.apply_batch(batch)
            sharded.apply_batch(batch)
            assert sharded.core_numbers() == plain.core_numbers()
            assert sharded.core_numbers() == core_numbers(sharded.graph)


@pytest.mark.parametrize("name", sharded_engines())
class TestLifecycle:
    """Satellite: close() semantics and worker-pool fault tolerance,
    over every sharded engine family."""

    def build(self, name, parallel=2):
        return make_engine(
            name,
            DynamicGraph([(1, 2), (2, 3), (10, 11), (11, 12)]),
            parallel=parallel,
        )

    def test_close_is_idempotent(self, name):
        engine = self.build(name)
        engine.apply_batch(Batch().insert(3, 1).insert(12, 10))
        engine.close()
        engine.close()
        assert engine.closed

    def test_reads_answer_after_close(self, name):
        engine = self.build(name)
        engine.close()
        assert engine.core_numbers()
        assert engine.core_of(1) == 1
        engine.check()

    def test_commit_after_close_raises_service_error(self, name):
        engine = self.build(name)
        engine.close()
        with pytest.raises(ServiceError, match=f"{name!r} is closed"):
            engine.apply_batch(Batch().insert(3, 1))
        with pytest.raises(ServiceError, match="is closed"):
            engine.insert_edge(3, 1)
        with pytest.raises(ServiceError, match="is closed"):
            engine.remove_edge(1, 2)
        with pytest.raises(ServiceError, match="is closed"):
            engine.add_vertex(99)

    def test_service_close_closes_sharded_engine(self, name):
        svc = CoreService.open(
            [(1, 2), (2, 3)], engine=name, parallel=2
        )
        svc.close()
        assert svc.engine.closed

    def test_transient_submit_failure_retries_then_succeeds(
        self, name, monkeypatch
    ):
        from concurrent.futures import ThreadPoolExecutor

        engine = self.build(name)
        failures = {"left": 2}
        real_submit = ThreadPoolExecutor.submit

        def flaky_submit(self, fn, *args, **kwargs):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("can't start new thread")
            return real_submit(self, fn, *args, **kwargs)

        monkeypatch.setattr(ThreadPoolExecutor, "submit", flaky_submit)
        monkeypatch.setattr("repro.engine.sharded.POOL_RETRY_BACKOFF", 0.0)
        result = engine.apply_batch(Batch().insert(3, 1).insert(12, 10))
        assert result.counters["pool_retries"] >= 1
        engine.check()
        assert engine.core_numbers() == core_numbers(engine.graph)
        engine.close()

    def test_exhausted_retries_fall_back_to_inline_commit(
        self, name, monkeypatch
    ):
        from concurrent.futures import ThreadPoolExecutor

        def dead_submit(self, fn, *args, **kwargs):
            raise RuntimeError("can't start new thread")

        engine = self.build(name)
        monkeypatch.setattr(ThreadPoolExecutor, "submit", dead_submit)
        monkeypatch.setattr("repro.engine.sharded.POOL_RETRY_BACKOFF", 0.0)
        result = engine.apply_batch(Batch().insert(3, 1).insert(12, 10))
        # Every sub-batch still committed (inline), cores stay exact.
        assert engine.graph.has_edge(3, 1) and engine.graph.has_edge(12, 10)
        assert result.counters["pool_retries"] > 0
        engine.check()
        assert engine.core_numbers() == core_numbers(engine.graph)
        engine.close()

    def test_worker_fault_leaves_mirror_consistent(self, name):
        from repro.testing import FaultPlan, InjectedFault

        engine = self.build(name)
        with FaultPlan(seed=1).crash("shard.worker_commit"):
            with pytest.raises(InjectedFault):
                engine.apply_batch(Batch().insert(3, 1).insert(12, 10))
        # One shard may have committed, the other not — but the mirror
        # graph, shard assignment and cores all describe the same state.
        engine.check()
        assert engine.core_numbers() == core_numbers(engine.graph)
        engine.apply_batch(Batch().insert(5, 1))  # still usable
        engine.check()
        engine.close()

"""Property-based tests (hypothesis) on the core data structures and the
maintenance invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    core_numbers,
    is_valid_korder,
    korder_decomposition,
)
from repro.core.maintainer import OrderedCoreMaintainer, compute_mcd
from repro.graphs.undirected import DynamicGraph
from repro.naive.maintainer import NaiveCoreMaintainer
from repro.structures.heaps import LazyMinHeap
from repro.structures.treap import OrderStatisticTreap

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=60,
).map(
    lambda pairs: list(
        {(min(u, v), max(u, v)) for u, v in pairs}
    )
)

op_streams = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove"]),
        st.integers(0, 11),
        st.integers(0, 11),
    ).filter(lambda op: op[1] != op[2]),
    max_size=60,
)


# ----------------------------------------------------------------------
# Treap properties
# ----------------------------------------------------------------------

class TestTreapProperties:
    @given(st.lists(st.integers(), unique=True, max_size=80))
    def test_iteration_preserves_insertion_order(self, items):
        treap = OrderStatisticTreap(items, rng=random.Random(0))
        assert list(treap) == items

    @given(
        st.lists(st.integers(), unique=True, min_size=1, max_size=60),
        st.data(),
    )
    def test_rank_select_inverse(self, items, data):
        treap = OrderStatisticTreap(items, rng=random.Random(1))
        index = data.draw(st.integers(0, len(items) - 1))
        assert treap.rank(treap.select(index)) == index
        assert treap.select(treap.rank(items[index])) == items[index]

    @given(
        st.lists(st.integers(), unique=True, min_size=2, max_size=50),
        st.data(),
    )
    def test_removal_keeps_relative_order(self, items, data):
        victim = data.draw(st.sampled_from(items))
        treap = OrderStatisticTreap(items, rng=random.Random(2))
        treap.remove(victim)
        expected = [x for x in items if x != victim]
        assert list(treap) == expected
        treap.check_invariants()


# ----------------------------------------------------------------------
# Lazy heap properties
# ----------------------------------------------------------------------

class TestHeapProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 20)), max_size=60
        )
    )
    def test_pops_come_out_sorted(self, pushes):
        heap = LazyMinHeap()
        live = {}
        for key, item in pushes:
            if item not in live:
                heap.push(key, item)
                live[item] = key
        popped = []
        while True:
            top = heap.pop()
            if top is None:
                break
            popped.append(top[0])
        assert popped == sorted(popped)
        assert len(popped) == len(live)


# ----------------------------------------------------------------------
# Decomposition properties
# ----------------------------------------------------------------------

class TestDecompositionProperties:
    @given(edge_lists)
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_core_definition_holds(self, edges):
        """Every vertex has >= core(v) neighbors in its own core level's
        k-core (the defining property of core numbers)."""
        graph = DynamicGraph(edges)
        core = core_numbers(graph)
        for v, k in core.items():
            members = {w for w, c in core.items() if c >= k}
            assert sum(1 for w in graph.adj[v] if w in members) >= k

    @given(edge_lists, st.sampled_from(["small", "large", "random"]))
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_every_policy_emits_valid_korder(self, edges, policy):
        graph = DynamicGraph(edges)
        d = korder_decomposition(graph, policy=policy, seed=3)
        assert is_valid_korder(graph, d.core, d.order)
        assert d.core == core_numbers(graph)

    @given(edge_lists)
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_mcd_definition(self, edges):
        graph = DynamicGraph(edges)
        core = core_numbers(graph)
        mcd = compute_mcd(graph, core)
        for v in graph.vertices():
            assert mcd[v] == sum(
                1 for w in graph.adj[v] if core[w] >= core[v]
            )
            assert mcd[v] >= core[v]


# ----------------------------------------------------------------------
# Maintenance invariants under random update streams
# ----------------------------------------------------------------------

class TestMaintenanceProperties:
    @given(op_streams)
    @settings(
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_order_engine_matches_oracle_with_audits(self, ops):
        """The central property: on any op stream, the order-based engine
        (with full internal audits) matches naive recomputation."""
        order = OrderedCoreMaintainer(DynamicGraph(), audit=True)
        naive = NaiveCoreMaintainer(DynamicGraph())
        for kind, a, b in ops:
            if kind == "insert":
                if order.graph.has_edge(a, b):
                    continue
                order.insert_edge(a, b)
                naive.insert_edge(a, b)
            else:
                if not order.graph.has_edge(a, b):
                    continue
                order.remove_edge(a, b)
                naive.remove_edge(a, b)
            assert order.core_numbers() == naive.core_numbers()

    @given(op_streams)
    @settings(
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_theorem_3_1_under_any_stream(self, ops):
        """No single edge update ever moves a core number by more than 1."""
        engine = OrderedCoreMaintainer(DynamicGraph(), audit=False)
        for kind, a, b in ops:
            before = engine.core_numbers()
            if kind == "insert":
                if engine.graph.has_edge(a, b):
                    continue
                engine.insert_edge(a, b)
            else:
                if not engine.graph.has_edge(a, b):
                    continue
                engine.remove_edge(a, b)
            after = engine.core_numbers()
            for v, c in after.items():
                assert abs(c - before.get(v, 0)) <= 1

    @given(op_streams)
    @settings(
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_update_results_report_exact_changes(self, ops):
        """UpdateResult.changed is exactly the set of changed vertices."""
        engine = OrderedCoreMaintainer(DynamicGraph(), audit=False)
        for kind, a, b in ops:
            before = engine.core_numbers()
            if kind == "insert":
                if engine.graph.has_edge(a, b):
                    continue
                result = engine.insert_edge(a, b)
            else:
                if not engine.graph.has_edge(a, b):
                    continue
                result = engine.remove_edge(a, b)
            after = engine.core_numbers()
            actually_changed = {
                v
                for v in after
                if after[v] != before.get(v, 0)
            }
            assert set(result.changed) == actually_changed

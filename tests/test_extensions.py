"""Unit tests for the extension modules: RMAT/forest-fire generators,
METIS IO, validation utilities, visualization, and the scan ablation."""

import random

import pytest

from repro.analysis.validation import (
    diff_cores,
    validate_against_reference,
    validate_maintainer,
)
from repro.applications.visualization import (
    render_fingerprint,
    render_shell_histogram,
    shell_layout,
)
from repro.core.ablation import ScanningOrderedCoreMaintainer, order_insert_scan
from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs import generators
from repro.graphs import io as gio
from repro.graphs.undirected import DynamicGraph
from repro.naive.maintainer import NaiveCoreMaintainer

from helpers import random_gnm


class TestRmat:
    def test_simple_and_deterministic(self):
        edges = generators.rmat(8, edge_factor=4, seed=1)
        assert edges == generators.rmat(8, edge_factor=4, seed=1)
        seen = set()
        for u, v in edges:
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))

    def test_vertex_range(self):
        edges = generators.rmat(6, edge_factor=4, seed=2)
        assert all(0 <= u < 64 and 0 <= v < 64 for u, v in edges)

    def test_skewed_degrees(self):
        g = DynamicGraph.from_edges(generators.rmat(9, edge_factor=6, seed=3))
        assert g.max_degree() > 3 * g.average_degree()

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            generators.rmat(5, a=0.5, b=0.3, c=0.3)


class TestForestFire:
    def test_connected_growth(self):
        edges = generators.forest_fire(150, forward_prob=0.35, seed=4)
        g = DynamicGraph.from_edges(edges)
        assert g.n == 150
        assert g.connected_component(0) == set(g.vertices())

    def test_densification_with_prob(self):
        sparse = generators.forest_fire(150, forward_prob=0.1, seed=5)
        dense = generators.forest_fire(150, forward_prob=0.5, seed=5)
        assert len(dense) > len(sparse)

    def test_prob_validation(self):
        with pytest.raises(ValueError):
            generators.forest_fire(10, forward_prob=1.0)

    def test_deterministic(self):
        assert generators.forest_fire(60, seed=6) == generators.forest_fire(
            60, seed=6
        )


class TestMetisIO:
    def test_roundtrip(self, tmp_path):
        g = random_gnm(20, 40, seed=1)
        path = tmp_path / "g.metis"
        assert gio.write_metis(path, g) == 20
        g2 = gio.read_metis(path)
        assert g2.n == g.n and g2.m == g.m
        # Vertices are relabelled 1..n in sorted order; degrees must match.
        original = sorted(g.degree(v) for v in g.vertices())
        restored = sorted(g2.degree(v) for v in g2.vertices())
        assert original == restored

    def test_header_first_line(self, tmp_path):
        g = DynamicGraph([(1, 2), (2, 3)])
        path = tmp_path / "g.metis"
        gio.write_metis(path, g)
        assert path.read_text().splitlines()[0] == "3 2"

    def test_edge_count_mismatch_detected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(ValueError):
            gio.read_metis(path)

    def test_weighted_format_rejected(self, tmp_path):
        path = tmp_path / "weighted.metis"
        path.write_text("2 1 011\n2\n1\n")
        with pytest.raises(ValueError):
            gio.read_metis(path)

    def test_isolated_vertices_preserved(self, tmp_path):
        g = DynamicGraph([(1, 2)], vertices=[1, 2, 3])
        path = tmp_path / "iso.metis"
        gio.write_metis(path, g)
        assert gio.read_metis(path).n == 3


class TestValidation:
    def test_clean_engine_validates(self, small_random_graph):
        engine = OrderedCoreMaintainer(small_random_graph)
        report = validate_maintainer(engine)
        assert report.ok
        report.raise_if_invalid()  # no-op when ok

    def test_detects_core_corruption(self, triangle_graph):
        engine = NaiveCoreMaintainer(triangle_graph)
        engine._core[0] = 99
        report = validate_maintainer(engine)
        assert not report.ok
        assert report.core_mismatches[0] == (99, 2)
        with pytest.raises(AssertionError):
            report.raise_if_invalid()

    def test_detects_index_corruption(self, triangle_graph):
        engine = OrderedCoreMaintainer(triangle_graph)
        engine.korder.deg_plus[0] += 1
        report = validate_maintainer(engine)
        assert not report.ok
        assert report.index_errors

    def test_diff_cores_both_directions(self):
        assert diff_cores({1: 2}, {1: 3}) == {1: (2, 3)}
        assert diff_cores({1: 2, 9: 1}, {1: 2}) == {9: (1, -1)}
        assert diff_cores({1: 2}, {1: 2, 9: 1}) == {9: (-1, 1)}

    def test_reference_graph_comparison(self, triangle_graph):
        engine = OrderedCoreMaintainer(triangle_graph.copy())
        ok = validate_against_reference(engine, triangle_graph)
        assert ok.ok
        other = triangle_graph.copy()
        other.add_edge(0, 3)
        bad = validate_against_reference(engine, other)
        assert not bad.ok


class TestVisualization:
    def test_shell_layout_radii(self, fig3_graph):
        core = core_numbers(fig3_graph)
        layout = shell_layout(core, seed=1)
        assert set(layout) == set(core)
        # Higher coreness means closer to the origin on average.
        def mean_radius(k):
            rs = [
                (x * x + y * y) ** 0.5
                for v, (x, y) in layout.items()
                if core[v] == k
            ]
            return sum(rs) / len(rs)

        assert mean_radius(3) < mean_radius(1)

    def test_layout_deterministic(self, triangle_graph):
        core = core_numbers(triangle_graph)
        assert shell_layout(core, seed=5) == shell_layout(core, seed=5)

    def test_histogram_contains_all_shells(self, fig3_graph):
        core = core_numbers(fig3_graph)
        text = render_shell_histogram(core)
        assert "k=1" in text and "k=2" in text and "k=3" in text
        assert "(empty graph)" == render_shell_histogram({})

    def test_fingerprint_shape(self, fig3_graph):
        core = core_numbers(fig3_graph)
        text = render_fingerprint(core, rows=11, cols=23, seed=2)
        lines = text.splitlines()
        assert len(lines) == 11
        assert all(len(line) == 23 for line in lines)
        assert "3" in text  # the 3-core shows up
        assert render_fingerprint({}) == "(empty graph)"

    def test_fingerprint_glyph_saturation(self):
        core = {i: 12 for i in range(30)}
        assert "*" in render_fingerprint(core, rows=7, cols=7, seed=0)


class TestScanAblation:
    def test_matches_jump_implementation(self):
        rng = random.Random(7)
        n = 30
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        base = pairs[:80]
        scan = ScanningOrderedCoreMaintainer(
            DynamicGraph(base, vertices=range(n))
        )
        jump = OrderedCoreMaintainer(
            DynamicGraph(base, vertices=range(n)), audit=True
        )
        for e in pairs[80:200]:
            rs = scan.insert_edge(*e)
            rj = jump.insert_edge(*e)
            assert set(rs.changed) == set(rj.changed)
            assert rs.visited == rj.visited
            assert scan.core_numbers() == jump.core_numbers()
        scan.check()

    def test_scanned_at_least_visited(self):
        scan = ScanningOrderedCoreMaintainer(
            DynamicGraph([(0, 1), (1, 2), (2, 3)])
        )
        result = scan.insert_edge(3, 0)
        assert set(result.changed) == {0, 1, 2, 3}
        assert scan.total_scanned >= result.visited

    def test_scan_low_level_roundtrip(self, triangle_graph):
        from repro.core.decomposition import korder_decomposition
        from repro.core.korder import KOrder

        d = korder_decomposition(triangle_graph, policy="small")
        ko = KOrder.from_decomposition(d)
        core = dict(d.core)
        v_star, k, visited, scanned = order_insert_scan(
            triangle_graph, ko, core, 3, 0
        )
        assert v_star == [3]
        assert k == 1
        assert scanned >= visited >= 1
        ko.audit(triangle_graph, core)

    def test_removals_delegate(self, triangle_graph):
        scan = ScanningOrderedCoreMaintainer(triangle_graph)
        result = scan.remove_edge(0, 1)
        assert set(result.changed) == {0, 1, 2}
        scan.check()

    def test_ablation_experiment(self):
        from repro.bench.experiments import ablation_jump

        result = ablation_jump("ca", n_updates=40, scale=0.15, seed=3)
        assert result.scanned >= result.visited
        assert result.steps_saved == result.scanned - result.visited

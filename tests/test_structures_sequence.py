"""Tests for the order-maintenance sequence backends.

Both :class:`TaggedOrderList` and :class:`OrderStatisticTreap` implement
the :class:`SequenceIndex` protocol, so a shared parametrized suite
drives them through the same scenarios against a plain-list reference —
including the relabel-storm stress case (adversarial same-position
inserts) that exercises the OM list's Bender relabeling.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.sequence import (
    SequenceIndex,
    SequenceStats,
    TaggedOrderList,
)
from repro.structures.treap import OrderStatisticTreap

BACKENDS = ("om", "treap")


def make_backend(name, stats=None):
    if name == "om":
        return TaggedOrderList(stats=stats)
    return OrderStatisticTreap(rng=random.Random(0), stats=stats)


# ----------------------------------------------------------------------
# Protocol conformance and shared behavior
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
class TestSharedBehavior:
    def test_satisfies_protocol(self, backend):
        assert isinstance(make_backend(backend), SequenceIndex)

    def test_positional_insertions(self, backend):
        seq = make_backend(backend)
        seq.insert_back("b")
        seq.insert_front("a")
        seq.insert_after("b", "d")
        seq.insert_before("d", "c")
        assert seq.to_list() == ["a", "b", "c", "d"]
        assert len(seq) == 4 and "c" in seq and "z" not in seq
        seq.check_invariants()

    def test_extend_front_preserves_given_order(self, backend):
        seq = make_backend(backend)
        seq.insert_back("x")
        seq.extend_front(["a", "b", "c"])
        assert seq.to_list() == ["a", "b", "c", "x"]

    def test_move_after(self, backend):
        seq = make_backend(backend)
        seq.extend_back("abcde")
        seq.move_after("d", "b")
        assert seq.to_list() == list("acdbe")
        seq.move_after("a", "e")  # backward move, the eviction shape
        assert seq.to_list() == list("aecdb")
        with pytest.raises(ValueError):
            seq.move_after("a", "a")
        seq.check_invariants()

    def test_precedes_matches_positions(self, backend):
        seq = make_backend(backend)
        seq.extend_back(range(10))
        for i in range(10):
            for j in range(10):
                if i != j:
                    assert seq.precedes(i, j) == (i < j)

    def test_rank_select_first_last_neighbors(self, backend):
        seq = make_backend(backend)
        seq.extend_back("abcde")
        assert [seq.rank(c) for c in "abcde"] == [0, 1, 2, 3, 4]
        assert [seq.select(i) for i in range(5)] == list("abcde")
        assert seq.first() == "a" and seq.last() == "e"
        assert seq.successor("b") == "c" and seq.predecessor("b") == "a"
        assert seq.successor("e") is None and seq.predecessor("a") is None
        with pytest.raises(IndexError):
            seq.select(5)

    def test_duplicate_and_missing_items_raise(self, backend):
        seq = make_backend(backend)
        seq.insert_back(1)
        with pytest.raises(ValueError):
            seq.insert_back(1)
        with pytest.raises(KeyError):
            seq.remove(2)
        with pytest.raises(KeyError):
            seq.rank(2)
        with pytest.raises(KeyError):
            seq.order_key(2)

    def test_empty_sequence_edges(self, backend):
        seq = make_backend(backend)
        assert len(seq) == 0 and not seq and seq.to_list() == []
        with pytest.raises(IndexError):
            seq.first()
        with pytest.raises(IndexError):
            seq.last()
        seq.insert_back(1)
        seq.clear()
        assert seq.to_list() == [] and 1 not in seq
        seq.insert_back(2)  # usable after clear
        assert seq.to_list() == [2]
        seq.check_invariants()

    def test_order_keys_compare_like_positions(self, backend):
        seq = make_backend(backend)
        seq.extend_back(range(20))
        keys = {i: seq.order_key(i) for i in range(20)}
        for a in range(20):
            for b in range(20):
                assert (keys[a] < keys[b]) == (a < b)
                assert (keys[a] > keys[b]) == (a > b)

    def test_order_queries_counted(self, backend):
        stats = SequenceStats()
        seq = make_backend(backend, stats)
        seq.extend_back(range(5))
        before = stats.order_queries
        seq.precedes(0, 4)
        seq.order_key(2)
        assert stats.order_queries == before + 2

    @given(ops=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 1000)), max_size=120
    ))
    @settings(max_examples=60, deadline=None)
    def test_random_interleaving_matches_reference(self, backend, ops):
        """Random insert/remove/precedes interleavings vs a plain list."""
        seq = make_backend(backend)
        ref = []
        next_item = 0
        for kind, pick in ops:
            if kind == 0 or not ref:  # insert at a position
                if ref and pick % 2:
                    anchor = ref[pick % len(ref)]
                    seq.insert_after(anchor, next_item)
                    ref.insert(ref.index(anchor) + 1, next_item)
                else:
                    seq.insert_front(next_item)
                    ref.insert(0, next_item)
                next_item += 1
            elif kind == 1:
                seq.insert_back(next_item)
                ref.append(next_item)
                next_item += 1
            elif kind == 2:
                victim = ref.pop(pick % len(ref))
                seq.remove(victim)
            else:
                a = ref[pick % len(ref)]
                b = ref[(pick * 7 + 3) % len(ref)]
                if a != b:
                    assert seq.precedes(a, b) == (ref.index(a) < ref.index(b))
        assert seq.to_list() == ref
        seq.check_invariants()


# ----------------------------------------------------------------------
# OM-list specifics: labels and relabeling
# ----------------------------------------------------------------------

class TestTaggedOrderList:
    def test_relabel_storm_same_position_inserts(self):
        """Adversarial same-gap hammering: every insert lands right after
        one fixed anchor, exhausting its label gap over and over."""
        stats = SequenceStats()
        seq = TaggedOrderList(stats=stats)
        seq.extend_back(range(200))
        anchor = 100
        storm = [1000 + i for i in range(2000)]
        for item in storm:
            seq.insert_after(anchor, item)
        assert stats.relabels > 0
        expected = list(range(101)) + storm[::-1] + list(range(101, 200))
        assert seq.to_list() == expected
        seq.check_invariants()

    def test_extend_front_preallocates_labels(self):
        """A whole chain prepended at once reserves one chain-sized label
        gap instead of bisecting the same gap per item — no relabel
        storm (ROADMAP's batch-aware label preallocation)."""
        stats = SequenceStats()
        seq = TaggedOrderList(stats=stats)
        seq.extend_back(range(100))
        chain = [1000 + i for i in range(5000)]
        seq.extend_front(chain)
        assert stats.relabels == 0
        assert seq.to_list() == chain + list(range(100))
        seq.check_invariants()
        # The per-item shape of the same bulk load storms: that is the
        # behaviour the preallocation removes.
        storm_stats = SequenceStats()
        storm = TaggedOrderList(stats=storm_stats)
        storm.extend_back(range(100))
        previous = None
        for item in chain:
            if previous is None:
                storm.insert_front(item)
            else:
                storm.insert_after(previous, item)
            previous = item
        assert storm.to_list() == seq.to_list()
        assert storm_stats.relabels > 0

    def test_extend_front_on_empty_and_tight_front(self):
        """Chains land correctly on an empty list and when the front gap
        is smaller than the chain (one spread, then the chain)."""
        seq = TaggedOrderList()
        seq.extend_front("abc")
        assert seq.to_list() == list("abc")
        seq.check_invariants()
        # Exhaust the front label space so the chain cannot fit.
        stats = SequenceStats()
        tight = TaggedOrderList(stats=stats)
        tight.extend_back(range(10))
        for i in range(2000):
            tight.insert_front(10 + i)
        front = list(tight)
        chain = [-1, -2, -3, *range(100000, 103000)]
        before = stats.relabels
        tight.extend_front(chain)
        assert stats.relabels <= before + 1
        assert tight.to_list() == chain + front
        tight.check_invariants()
        with pytest.raises(ValueError):
            tight.extend_front([-1])
        with pytest.raises(ValueError):
            tight.extend_front(["x", "x"])

    def test_front_storm(self):
        """Prepend hammering exhausts the leading gap the same way."""
        stats = SequenceStats()
        seq = TaggedOrderList(stats=stats)
        storm = list(range(3000))
        for item in storm:
            seq.insert_front(item)
        assert seq.to_list() == storm[::-1]
        assert stats.relabels > 0
        seq.check_invariants()

    def test_order_keys_stay_live_across_relabels(self):
        """Keys granted before a relabel storm must still compare
        correctly after it — the OrderInsert heap's invariant."""
        seq = TaggedOrderList()
        seq.extend_back(range(100))
        keys = {i: seq.order_key(i) for i in range(0, 100, 7)}
        relabels_before = seq.stats.relabels
        for i in range(1500):
            seq.insert_after(50, 1000 + i)  # storm between 50 and 51
        assert seq.stats.relabels > relabels_before
        held = sorted(keys)
        for a in held:
            for b in held:
                assert (keys[a] < keys[b]) == (a < b)

    def test_move_after_keeps_tokens_live(self):
        """The OrderInsert stale-heap-entry hazard: a token granted
        before the item is repositioned (and before relabel storms) must
        keep comparing by the item's *current* position.  move_after
        reuses the node, so the old token never freezes."""
        seq = TaggedOrderList()
        seq.extend_back(range(50))
        token_30 = seq.order_key(30)
        token_10 = seq.order_key(10)
        seq.move_after(5, 30)  # 30 now sits between 5 and 6
        assert token_30 < token_10  # ...so it precedes 10 per its token
        relabels_before = seq.stats.relabels
        for i in range(1500):
            seq.insert_after(5, 1000 + i)  # storm right around 30's gap
        assert seq.stats.relabels > relabels_before
        assert token_30 < token_10
        assert (token_30 < seq.order_key(5)) is False
        assert seq.to_list().index(30) == seq.to_list().index(5) + 1501

    def test_labels_strictly_increasing_under_random_churn(self):
        rng = random.Random(9)
        seq = TaggedOrderList()
        ref = []
        for i in range(4000):
            if ref and rng.random() < 0.3:
                victim = ref.pop(rng.randrange(len(ref)))
                seq.remove(victim)
            elif ref and rng.random() < 0.7:
                anchor = ref[rng.randrange(len(ref))]
                seq.insert_after(anchor, i)
                ref.insert(ref.index(anchor) + 1, i)
            else:
                seq.insert_back(i)
                ref.append(i)
        assert seq.to_list() == ref
        seq.check_invariants()

    def test_om_answers_without_rank_walks(self):
        stats = SequenceStats()
        seq = TaggedOrderList(stats=stats)
        seq.extend_back(range(500))
        for i in range(0, 500, 3):
            seq.precedes(i, (i * 13 + 7) % 500) if i != (i * 13 + 7) % 500 else None
        assert stats.rank_walk_steps == 0
        seq.rank(250)  # the diagnostic walk *is* charged
        assert stats.rank_walk_steps == 250

    def test_treap_rank_walks_counted(self):
        stats = SequenceStats()
        seq = OrderStatisticTreap(range(100), rng=random.Random(3), stats=stats)
        assert stats.rank_walk_steps == 0
        seq.precedes(10, 90)
        assert stats.order_queries == 1
        assert stats.rank_walk_steps > 0

    def test_stats_reset_and_as_dict(self):
        stats = SequenceStats(order_queries=3, relabels=1, rank_walk_steps=7)
        assert stats.as_dict() == {
            "order_queries": 3, "relabels": 1, "rank_walk_steps": 7,
        }
        stats.reset()
        assert stats.as_dict() == {
            "order_queries": 0, "relabels": 0, "rank_walk_steps": 0,
        }

"""Unit tests for the application layer (community, densest, engagement,
resilience)."""

import pytest

from repro.applications.community import (
    best_community,
    community_timeline,
    kcore_community,
)
from repro.applications.densest import (
    densest_subgraph_peel,
    density,
    dynamic_densest,
)
from repro.applications.engagement import (
    departure_cascade,
    engagement_core,
    engagement_strength,
    fragile_vertices,
)
from repro.applications.resilience import core_resilience_profile
from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer
from repro.errors import VertexNotFoundError
from repro.graphs.undirected import DynamicGraph

from helpers import u


class TestCommunity:
    def test_community_within_kcore(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph)
        assert kcore_community(m, 6, 3) == {6, 7, 8, 9}
        # At k=2 the component extends through v2-v7 to the pentagon.
        community = kcore_community(m, 6, 2)
        assert {1, 2, 3, 4, 5, 6, 7, 8, 9} <= community

    def test_disconnected_kcores_are_separate_communities(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph)
        assert kcore_community(m, 10, 3) == {10, 11, 12, 13}

    def test_query_below_k_returns_empty(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph)
        assert kcore_community(m, u(0), 2) == set()

    def test_missing_query_raises(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        with pytest.raises(VertexNotFoundError):
            kcore_community(m, 99, 1)

    def test_best_community(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph)
        k, community = best_community(m, 6, min_size=2)
        assert k == 3 and community == {6, 7, 8, 9}

    def test_best_community_falls_back(self):
        m = OrderedCoreMaintainer(DynamicGraph(vertices=[1]))
        k, community = best_community(m, 1, min_size=2)
        assert k == 0 and community == {1}

    def test_community_timeline_grows(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        sizes = community_timeline(
            m, 0, 2, [(3, 0), (3, 4), (4, 0), (4, 2)]
        )
        assert sizes[0] == 4  # closing the square pulls 3 into the 2-core
        assert sizes[-1] == 5
        assert sizes == sorted(sizes)


class TestDensest:
    def test_density_helper(self, triangle_graph):
        assert density(triangle_graph, {0, 1, 2}) == pytest.approx(1.0)
        assert density(triangle_graph, set()) == 0.0

    def test_peel_finds_clique(self):
        clique = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        tail = [(4, 10), (10, 11), (11, 12)]
        g = DynamicGraph(clique + tail)
        vertices, d = densest_subgraph_peel(g)
        assert vertices == {0, 1, 2, 3, 4}
        assert d == pytest.approx(2.0)

    def test_peel_empty_graph(self):
        assert densest_subgraph_peel(DynamicGraph()) == (set(), 0.0)

    def test_peel_half_approximation(self, small_random_graph):
        _, approx = densest_subgraph_peel(small_random_graph)
        core = core_numbers(small_random_graph)
        degeneracy = max(core.values())
        # density <= degeneracy <= 2 * optimal density and the peel is a
        # 1/2-approximation, so approx * 2 >= degeneracy / 2... the robust
        # certified relation is: degeneracy/2 <= approx (peel contains the
        # max-core prefix) and approx <= degeneracy.
        assert approx <= degeneracy
        assert 2 * approx >= degeneracy

    def test_dynamic_densest_tracks_growth(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        tracker = dynamic_densest(m)
        _, d0 = tracker.current()
        assert d0 == pytest.approx(1.0)
        # Grow a K5 around vertex 0.
        for e in [(0, 4), (1, 4), (2, 4), (0, 3), (1, 3), (3, 4)]:
            m.insert_edge(*e)
        _, d1 = tracker.current()
        assert d1 == pytest.approx(2.0)

    def test_dynamic_densest_invalidate(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        tracker = dynamic_densest(m)
        tracker.current()
        tracker.invalidate()
        vertices, _ = tracker.current()
        assert vertices == {0, 1, 2}


class TestEngagement:
    def test_cascade_survivors_are_kcore(self, fig3_graph):
        expected = {
            v for v, c in core_numbers(fig3_graph).items() if c >= 2
        }
        departures, survivors = departure_cascade(fig3_graph, 2)
        assert survivors == expected
        assert set(departures) | survivors == set(fig3_graph.vertices())

    def test_cascade_departure_order_valid(self, fig3_graph):
        """At departure time each leaver has < k surviving neighbors."""
        k = 2
        departures, _ = departure_cascade(fig3_graph, k)
        gone = set()
        for v in departures:
            alive_neighbors = sum(
                1 for w in fig3_graph.adj[v] if w not in gone
            )
            assert alive_neighbors < k
            gone.add(v)

    def test_engagement_core_matches_maintainer(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph)
        _, survivors = departure_cascade(fig3_graph, 3)
        assert engagement_core(m, 3) == survivors

    def test_engagement_strength_is_mcd(self, fig3_graph):
        from repro.core.maintainer import compute_mcd

        core = core_numbers(fig3_graph)
        mcd = compute_mcd(fig3_graph, core)
        for v in fig3_graph.vertices():
            assert engagement_strength(fig3_graph, core, v) == mcd[v]

    def test_fragile_vertices(self, fig3_graph):
        core = core_numbers(fig3_graph)
        fragile = fragile_vertices(fig3_graph, core)
        # Chain tips (mcd == core == 1) are fragile; interior chain is not.
        assert u(49) in fragile or u(50) in fragile
        assert u(5) not in fragile


class TestResilience:
    def test_random_profile_lengths(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph)
        profile = core_resilience_profile(m, 10, mode="random", seed=1)
        assert profile.steps() == 10
        assert len(profile.degeneracy) == 10
        assert len(profile.max_core_size) == 10

    def test_failures_capped_at_edge_count(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        profile = core_resilience_profile(m, 100, mode="random", seed=0)
        assert profile.steps() == 4
        assert m.graph.m == 0

    def test_targeted_attacks_hit_dense_core_first(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph)
        profile = core_resilience_profile(m, 5, mode="targeted")
        for edge in profile.removed_edges:
            # All five attacks land inside the 3-core region (v6..v13).
            assert set(edge) <= set(range(6, 14))

    def test_degeneracy_never_increases_under_removal(self, small_random_graph):
        m = OrderedCoreMaintainer(small_random_graph)
        profile = core_resilience_profile(m, 40, mode="random", seed=2)
        assert profile.degeneracy == sorted(profile.degeneracy, reverse=True)

    def test_unknown_mode_rejected(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        with pytest.raises(ValueError):
            core_resilience_profile(m, 1, mode="sideways")

    def test_demotions_counted(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        profile = core_resilience_profile(m, 4, mode="targeted")
        assert profile.total_demotions >= 3

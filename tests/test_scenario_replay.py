"""Replay-agreement tests: every engine, every scenario family.

The subsystem's core promise — a scenario replays to *identical*
per-tick core maps no matter which engine runs it, whether it was
generated live or loaded from a recorded trace, and whether it is
driven locally or through the async serving front.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import scenarios as sc
from repro.core.decomposition import core_numbers
from repro.engine import DEFAULT_ENGINE
from repro.errors import ScenarioError
from repro.service import CoreClient, CoreServer, CoreService
from repro.testing import tiny_scenario

FIXTURE = "tests/data/snap_temporal_sample.txt"

FAMILIES = sc.available_scenarios()

#: The agreement matrix: the paper's engine, the simplified variant and
#: the sharded deployment shape.
ENGINES = ("order", "order-simplified", "order-sharded")


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_families_agree_across_engines(self, name):
        scenario = tiny_scenario(name, seed=11)
        reports = sc.replay_all(
            scenario, ENGINES, keep_cores=True, check=True
        )
        assert set(reports) == set(ENGINES)
        for report in reports.values():
            assert report.ticks == scenario.n_ticks
            assert report.ops == scenario.n_ops

    def test_snap_fixture_agrees_across_engines(self):
        scenario = sc.scenario_from_snap(FIXTURE, count=8)
        sc.replay_all(scenario, ENGINES, keep_cores=True, check=True)

    def test_final_cores_match_from_scratch_decomposition(self):
        scenario = tiny_scenario("flash-crowd", seed=5)
        report = sc.replay(scenario)
        graph = scenario.base_graph()
        for kind, (u, v) in scenario.plan():
            if kind == "insert":
                graph.add_edge(u, v)
            else:
                graph.remove_edge(u, v)
        assert report.final_cores == core_numbers(graph)

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        name=st.sampled_from(FAMILIES),
        seed=st.integers(0, 10_000),
    )
    def test_agreement_holds_for_any_seed(self, name, seed):
        sc.replay_all(
            tiny_scenario(name, seed=seed), ENGINES, keep_cores=True
        )


class TestRecordedVsLive:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_trace_replay_equals_live_replay(self, name):
        """Recording and reloading must not change a single checkpoint."""
        live = tiny_scenario(name, seed=23)
        recorded = sc.loads(sc.dumps(live))
        a = sc.replay(live, keep_cores=True)
        b = sc.replay(recorded, keep_cores=True)
        assert a.digests() == b.digests()
        assert [cp.cores for cp in a.checkpoints] == [
            cp.cores for cp in b.checkpoints
        ]

    def test_trace_file_round_trip_through_service(self, tmp_path):
        scenario = sc.scenario_from_snap(FIXTURE, count=8)
        path = tmp_path / "fixture.trace"
        sc.record(scenario, path)
        assert sc.replay(sc.load(path)).digests() == (
            sc.replay(scenario).digests()
        )


class TestReplayDriver:
    def test_report_counts_and_summary(self):
        scenario = tiny_scenario("burst", seed=3)
        report = sc.replay(scenario)
        inserts, removes = scenario.counts()
        assert (report.inserts, report.removes) == (inserts, removes)
        summary = report.summary()
        assert summary["scenario"] == "burst"
        assert summary["engine"] == DEFAULT_ENGINE
        assert summary["final_digest"] == report.checkpoints[-1].digest

    def test_adopted_service_is_left_open(self):
        scenario = tiny_scenario("mixed", seed=3)
        service = CoreService.open(scenario.base_graph())
        report = sc.replay(scenario, service=service)
        assert report.engine == DEFAULT_ENGINE
        assert service.cores() == report.final_cores  # still open
        service.close()

    def test_digest_distinguishes_different_maps(self):
        assert sc.core_digest({0: 1}) != sc.core_digest({0: 2})
        assert sc.core_digest({0: 1, 1: 2}) == sc.core_digest(
            {1: 2, 0: 1}
        )

    def test_checkpoints_omit_cores_by_default(self):
        report = sc.replay(tiny_scenario("mixed", seed=1))
        assert all(cp.cores is None for cp in report.checkpoints)

    def test_check_agreement_flags_divergence(self):
        a = sc.replay(tiny_scenario("burst", seed=1))
        b = sc.replay(tiny_scenario("burst", seed=2))
        with pytest.raises(ScenarioError, match="disagreement"):
            sc.check_agreement([a, b])

    def test_check_agreement_flags_tick_count_skew(self):
        a = sc.replay(tiny_scenario("burst", seed=1))
        b = sc.replay(tiny_scenario("sliding-window", seed=1))
        with pytest.raises(ScenarioError, match="ticks"):
            sc.check_agreement([a, b])

    def test_check_agreement_trivial_cases(self):
        sc.check_agreement([])
        sc.check_agreement([sc.replay(tiny_scenario("mixed", seed=1))])


class TestServerReplay:
    def test_client_replay_matches_local(self, tmp_path):
        """The same scenario through the async serving front reaches
        the same per-tick digests as a local service replay."""
        scenario = tiny_scenario("shard-merge-storm", seed=7)
        local = sc.replay(scenario)

        async def drive():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                async with await CoreClient.connect(
                    host, port, session="replay"
                ) as client:
                    return await sc.replay_via_client(scenario, client)

        remote = asyncio.run(asyncio.wait_for(drive(), 60))
        assert remote.engine == "client"
        assert remote.digests() == local.digests()
        assert remote.final_cores == local.final_cores

"""Unit tests for static core decomposition and k-order generation."""

import pytest

from repro.core.decomposition import (
    POLICIES,
    core_numbers,
    is_valid_korder,
    korder_decomposition,
)
from repro.graphs.undirected import DynamicGraph

from helpers import fig3_edges, random_gnm, u


class TestCoreNumbers:
    def test_empty_graph(self):
        assert core_numbers(DynamicGraph()) == {}

    def test_isolated_vertices_are_core_0(self):
        g = DynamicGraph(vertices=[1, 2])
        assert core_numbers(g) == {1: 0, 2: 0}

    def test_single_edge(self):
        assert core_numbers(DynamicGraph([(1, 2)])) == {1: 1, 2: 1}

    def test_triangle_with_pendant(self, triangle_graph):
        assert core_numbers(triangle_graph) == {0: 2, 1: 2, 2: 2, 3: 1}

    def test_star_is_1_core(self):
        g = DynamicGraph([(0, i) for i in range(1, 6)])
        assert set(core_numbers(g).values()) == {1}

    def test_clique_core_is_size_minus_1(self):
        k = 6
        g = DynamicGraph(
            [(i, j) for i in range(k) for j in range(i + 1, k)]
        )
        assert set(core_numbers(g).values()) == {k - 1}

    def test_paper_example_3_1(self, fig3_graph):
        """core(v6..v13) = 3, core(v1..v5) = 2, core(u_i) = 1."""
        core = core_numbers(fig3_graph)
        assert all(core[i] == 3 for i in range(6, 14))
        assert all(core[i] == 2 for i in range(1, 6))
        assert all(core[u(i)] == 1 for i in range(50))

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        g = random_gnm(60, 180, seed=3)
        nx_graph = networkx.Graph(list(g.edges()))
        nx_graph.add_nodes_from(g.vertices())
        assert core_numbers(g) == networkx.core_number(nx_graph)

    def test_disconnected_components_independent(self):
        g = DynamicGraph([(0, 1), (1, 2), (2, 0), (10, 11)])
        core = core_numbers(g)
        assert core[0] == 2 and core[10] == 1


class TestKOrderDecomposition:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_order_is_valid_korder(self, policy, small_random_graph):
        d = korder_decomposition(small_random_graph, policy=policy, seed=1)
        assert is_valid_korder(small_random_graph, d.core, d.order)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cores_agree_across_policies(self, policy, small_random_graph):
        expected = core_numbers(small_random_graph)
        d = korder_decomposition(small_random_graph, policy=policy, seed=2)
        assert d.core == expected

    def test_deg_plus_counts_later_neighbors(self, fig3_graph):
        d = korder_decomposition(fig3_graph, policy="small")
        position = {v: i for i, v in enumerate(d.order)}
        for v in fig3_graph.vertices():
            later = sum(
                1 for w in fig3_graph.adj[v] if position[w] > position[v]
            )
            assert d.deg_plus[v] == later

    def test_deg_plus_bounded_by_core(self, small_random_graph):
        d = korder_decomposition(small_random_graph, policy="small")
        assert all(d.deg_plus[v] <= d.core[v] for v in d.order)

    def test_order_nondecreasing_core(self, small_random_graph):
        d = korder_decomposition(small_random_graph, policy="large", seed=0)
        cores_along = [d.core[v] for v in d.order]
        assert cores_along == sorted(cores_along)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            korder_decomposition(DynamicGraph(), policy="sideways")

    def test_random_policy_deterministic_with_seed(self, small_random_graph):
        a = korder_decomposition(small_random_graph, policy="random", seed=9)
        b = korder_decomposition(small_random_graph, policy="random", seed=9)
        assert a.order == b.order

    def test_full_fig3_order_small_policy(self):
        """On the full Fig. 3 graph, the chain ends come first in O_1."""
        g = DynamicGraph(fig3_edges(tail=200))
        d = korder_decomposition(g, policy="small")
        o1 = [v for v in d.order if d.core[v] == 1]
        # u_0 anchors both strands; 'small deg+ first' peels it last.
        assert o1[-1] == u(0)


class TestIsValidKorder:
    def test_rejects_wrong_length(self, triangle_graph):
        core = core_numbers(triangle_graph)
        assert not is_valid_korder(triangle_graph, core, [0, 1])

    def test_rejects_core_decrease(self, triangle_graph):
        core = core_numbers(triangle_graph)
        assert not is_valid_korder(triangle_graph, core, [0, 1, 2, 3])

    def test_rejects_deg_plus_violation(self):
        # Path a-b-c: order [b, a, c] leaves b with 2 later neighbors > core 1.
        g = DynamicGraph([("a", "b"), ("b", "c")])
        core = core_numbers(g)
        assert not is_valid_korder(g, core, ["b", "a", "c"])
        assert is_valid_korder(g, core, ["a", "b", "c"])

"""Shared non-fixture test helpers, imported explicitly by test modules.

These used to live in ``tests/conftest.py`` and be imported as
``from conftest import …`` — but ``conftest`` is not a safe import name:
pytest puts every conftest-bearing rootdir subdirectory on ``sys.path``,
so ``benchmarks/conftest.py`` could shadow the tests' one at collection
time.  Helpers now live in this plainly-named module; ``conftest.py``
keeps only the pytest fixtures built on top of them.
"""

from __future__ import annotations

import random

from repro.graphs.undirected import DynamicGraph

# ----------------------------------------------------------------------
# The paper's Fig. 3 graph.
#
# * u-part: u_0 .. u_{2000}; edges (u_0,u_1) and (u_i, u_{i+2}) — two
#   interleaved strands anchored at u_0; every u_i has core number 1.
# * v-part: v_1..v_5 form the unique 2-subcore (a 5-cycle here), with
#   v_5 - u_0 attaching the chain; v_6..v_9 and v_10..v_13 form two
#   3-subcores (K4s), v_7 - v_2 linking one of them to the 2-subcore.
#
# Vertex ids: v_i -> i, u_i -> U0 + i.
# ----------------------------------------------------------------------

U0 = 10_000


def u(i: int) -> int:
    """Vertex id of the paper's u_i."""
    return U0 + i


def fig3_edges(tail: int = 2000) -> list[tuple[int, int]]:
    """Edge list of the Fig. 3 graph with a configurable u-chain length."""
    edges = [(u(0), u(1))]
    edges += [(u(i), u(i + 2)) for i in range(tail - 1)]
    # 2-subcore: 5-cycle v1..v5.
    edges += [(i, i % 5 + 1) for i in range(1, 6)]
    edges.append((5, u(0)))  # v5 - u0
    edges.append((2, 7))  # v2 - v7 (Example 5.1: v2's neighbors are v1,v3,v7)
    # Two 3-subcores: K4 on v6..v9 and K4 on v10..v13.
    for block in ([6, 7, 8, 9], [10, 11, 12, 13]):
        edges += [
            (block[i], block[j])
            for i in range(4)
            for j in range(i + 1, 4)
        ]
    return edges


def random_gnm(n: int, m: int, seed: int) -> DynamicGraph:
    """Deterministic G(n, m) used across integration tests."""
    rng = random.Random(seed)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    return DynamicGraph(pairs[:m], vertices=range(n))

"""Unit tests for the CoreService façade: sessions, transactions,
queries, subscriptions, and checkpointing."""

import pytest

from repro.core.decomposition import core_numbers
from repro.engine import DEFAULT_ENGINE
from repro.engine.batch import Batch
from repro.errors import (
    EngineOptionError,
    SelfLoopError,
    ServiceError,
    TransactionError,
    WorkloadError,
)
from repro.graphs.undirected import DynamicGraph
from repro.service import CommitReceipt, CoreEvent, CoreService
from repro.streaming import SlidingWindowCoreMonitor

TRIANGLE = [(0, 1), (1, 2), (2, 0)]


class TestSessionConstruction:
    def test_open_from_edges(self):
        svc = CoreService.open(TRIANGLE)
        assert svc.cores() == {0: 2, 1: 2, 2: 2}
        assert svc.engine_name == DEFAULT_ENGINE

    def test_open_from_graph_adopts_it(self):
        graph = DynamicGraph(TRIANGLE)
        svc = CoreService.open(graph)
        assert svc.graph is graph

    def test_open_empty(self):
        svc = CoreService.open()
        assert svc.graph.n == 0 and svc.cores() == {}

    @pytest.mark.parametrize(
        "engine", ["order", "order-treap", "trav-2", "naive"]
    )
    def test_open_any_registered_engine(self, engine):
        svc = CoreService.open(TRIANGLE, engine=engine)
        assert svc.engine_name.startswith(engine.split("-")[0])
        assert svc.core(0) == 2

    def test_open_rejects_unknown_engine_option(self):
        with pytest.raises(EngineOptionError, match="sequnce"):
            CoreService.open(TRIANGLE, sequnce="om")

    def test_constructor_adopts_existing_engine(self):
        from repro.core.maintainer import OrderedCoreMaintainer

        engine = OrderedCoreMaintainer(DynamicGraph(TRIANGLE))
        svc = CoreService(engine)
        assert svc.engine is engine


class TestTransactions:
    def test_context_commit(self):
        svc = CoreService.open(TRIANGLE)
        with svc.transaction() as tx:
            tx.insert(0, 3).insert(1, 3)
        assert tx.state == "committed"
        assert tx.receipt.deltas == {3: 2}
        assert svc.core(3) == 2

    def test_receipt_carries_batch_result_and_counters(self):
        svc = CoreService.open(TRIANGLE, engine="order")
        with svc.transaction() as tx:
            tx.insert(0, 3).remove(1, 2)
        receipt = tx.receipt
        assert isinstance(receipt, CommitReceipt)
        assert (receipt.inserts, receipt.removes, receipt.ops) == (1, 1, 2)
        assert receipt.engine == "order"
        assert receipt.seconds == receipt.result.seconds
        assert "mcd_recomputations" in receipt.counters

    def test_exception_rolls_back(self):
        svc = CoreService.open(TRIANGLE)
        with pytest.raises(RuntimeError, match="boom"):
            with svc.transaction() as tx:
                tx.insert(0, 3)
                raise RuntimeError("boom")
        assert tx.state == "rolled back"
        assert svc.graph.m == 3  # nothing reached the engine
        assert svc.last_receipt is None

    def test_explicit_commit_inside_block(self):
        svc = CoreService.open(TRIANGLE)
        with svc.transaction() as tx:
            tx.insert(0, 3)
            receipt = tx.commit()
        assert receipt is tx.receipt
        assert svc.core(3) == 1

    def test_closed_transaction_rejects_everything(self):
        svc = CoreService.open(TRIANGLE)
        tx = svc.transaction()
        tx.insert(0, 3)
        tx.rollback()
        for call in (
            lambda: tx.insert(4, 5),
            lambda: tx.remove(0, 1),
            tx.commit,
            tx.rollback,
            tx.__enter__,
        ):
            with pytest.raises(TransactionError, match="rolled back"):
                call()
        with pytest.raises(TransactionError, match="no receipt"):
            tx.receipt

    def test_bad_op_raises_at_record_time_and_tx_survives(self):
        svc = CoreService.open(TRIANGLE)
        with svc.transaction() as tx:
            with pytest.raises(SelfLoopError):
                tx.insert(5, 5)
            tx.insert(0, 3)
        assert svc.core(3) == 1

    def test_empty_transaction_commits_cleanly(self):
        svc = CoreService.open(TRIANGLE)
        with svc.transaction() as tx:
            pass
        assert tx.receipt.ops == 0
        assert tx.receipt.events == ()

    def test_bulk_helpers(self):
        svc = CoreService.open(TRIANGLE)
        with svc.transaction() as tx:
            tx.insert_many([(0, 3), (1, 3), (2, 3)])
        assert svc.core(3) == 3  # the triangle became a K4
        with svc.transaction() as tx:
            tx.remove_many([(0, 3), (1, 3), (2, 3)])
        assert svc.core(3) == 0

    def test_apply_prebuilt_batch(self):
        svc = CoreService.open(TRIANGLE)
        receipt = svc.apply(Batch.inserts([(0, 3), (1, 3)]))
        assert receipt.deltas == {3: 2}

    def test_invalid_op_aborts_the_whole_commit(self):
        from repro.errors import BatchError

        svc = CoreService.open(TRIANGLE + [(0, 3)])
        seen = []
        svc.subscribe(seen.append)
        # The removal run would demote the triangle before the insert
        # of the already-present (1, 2) could fail — validation must
        # reject the batch before the engine mutates anything.
        with pytest.raises(BatchError, match="already"):
            with svc.transaction() as tx:
                tx.remove(2, 0)
                tx.insert(1, 2)
        assert tx.state == "failed"
        assert svc.graph.m == 4 and svc.cores() == core_numbers(svc.graph)
        assert seen == [] and svc.last_receipt is None
        with pytest.raises(BatchError, match="not in the graph"):
            svc.remove(7, 8)
        assert svc.graph.m == 4

    def test_remove_then_reinsert_history_validates(self):
        svc = CoreService.open(TRIANGLE)
        batch = Batch().remove(0, 1).insert(0, 1).remove(0, 1)
        svc.apply(batch)
        assert svc.graph.m == 2

    def test_one_op_sugar(self):
        svc = CoreService.open(TRIANGLE)
        r1 = svc.insert(0, 3)
        r2 = svc.remove(0, 3)
        assert r1.inserts == 1 and r2.removes == 1
        assert r2.receipt_id == r1.receipt_id + 1
        assert svc.last_receipt is r2

    def test_promotion_demotion_tallies(self):
        svc = CoreService.open(TRIANGLE)
        # Triangle -> K4: vertex 3 climbs 0->3, the others 2->3.
        up = svc.apply(Batch.inserts([(0, 3), (1, 3), (2, 3)]))
        assert (up.promotions, up.demotions) == (6, 0)
        # Strip two of the new edges: 3 falls 3->1, the others 3->2.
        down = svc.apply(Batch.removes([(0, 3), (1, 3)]))
        assert (down.promotions, down.demotions) == (0, 5)


class TestQueries:
    def build(self):
        # Triangle core 2; 3 hangs off at core 1.
        return CoreService.open(TRIANGLE + [(2, 3)])

    def test_core_and_default(self):
        svc = self.build()
        assert svc.core(0) == 2 and svc.core(3) == 1
        with pytest.raises(KeyError):
            svc.core("ghost")
        assert svc.core("ghost", 0) == 0

    def test_cores_is_a_snapshot(self):
        svc = self.build()
        snapshot = svc.cores()
        svc.insert(0, 3)
        assert snapshot[3] == 1  # unchanged by the later commit

    def test_kcore_view_is_lazy_and_live(self):
        svc = self.build()
        view = svc.kcore(2)
        assert set(view) == {0, 1, 2} and len(view) == 3
        assert 0 in view and 3 not in view and "ghost" not in view
        svc.insert(0, 3)  # 3 joins the 2-core; same view object answers
        assert 3 in view and len(view) == 4
        pinned = view.vertices()
        svc.remove(0, 3)
        assert 3 in pinned and 3 not in view

    def test_kcore_subgraph(self):
        svc = self.build()
        sub = svc.kcore(2).subgraph()
        assert set(sub.vertices()) == {0, 1, 2} and sub.m == 3

    def test_degeneracy_top_spectrum(self):
        svc = self.build()
        assert svc.degeneracy() == 2
        assert svc.top(2) == [(0, 2), (1, 2)]
        assert svc.top(0) == []
        assert [c for _, c in svc.top(10)] == [2, 2, 2, 1]
        assert svc.spectrum() == {2: 3, 1: 1}


class TestEventStream:
    def test_events_delivered_with_receipt_ids(self):
        svc = CoreService.open(TRIANGLE)
        seen: list[CoreEvent] = []
        svc.subscribe(seen.append)
        receipt = svc.apply(Batch.inserts([(0, 3), (1, 3)]))
        assert seen == [CoreEvent(3, 0, 2, receipt.receipt_id)]
        assert seen[0].delta == 2 and seen[0].kind == "promotion"
        svc.remove(1, 3)
        assert seen[-1] == CoreEvent(3, 2, 1, receipt.receipt_id + 1)
        assert seen[-1].kind == "demotion"

    def test_events_are_vertex_key_ordered(self):
        svc = CoreService.open()
        seen = []
        svc.subscribe(seen.append)
        svc.apply(Batch.inserts([(9, 5), (5, 2), (2, 9)]))
        assert [e.vertex for e in seen] == [2, 5, 9]
        assert all(e.old_core == 0 and e.new_core == 2 for e in seen)

    def test_min_k_filter(self):
        svc = CoreService.open(TRIANGLE)
        everything, hot = [], []
        svc.subscribe(everything.append)
        svc.subscribe(hot.append, min_k=2)
        svc.apply(Batch.inserts([(3, 4)]))  # 3, 4 enter core 1
        svc.apply(Batch.inserts([(0, 3), (1, 3)]))  # 3 enters core 2
        assert {e.vertex for e in everything} == {3, 4}
        assert [(e.vertex, e.new_core) for e in hot] == [(3, 2)]
        svc.apply(Batch.removes([(0, 3)]))  # 3 falls out of the 2-core
        assert hot[-1].old_core == 2 and hot[-1].new_core == 1

    def test_close_stops_delivery(self):
        svc = CoreService.open(TRIANGLE)
        seen = []
        sub = svc.subscribe(seen.append)
        svc.insert(0, 3)
        sub.close()
        sub.close()  # idempotent
        svc.insert(1, 3)
        assert len(seen) == 1 and not sub.active
        assert svc.subscriber_count == 0

    def test_subscription_context_manager(self):
        svc = CoreService.open(TRIANGLE)
        seen = []
        with svc.subscribe(seen.append):
            svc.insert(0, 3)
        svc.insert(1, 3)
        assert len(seen) == 1

    def test_callback_may_unsubscribe_mid_dispatch(self):
        svc = CoreService.open()
        seen = []

        def once(event):
            seen.append(event)
            sub.close()

        sub = svc.subscribe(once)
        svc.apply(Batch.inserts([(0, 1), (1, 2), (2, 0)]))
        assert len(seen) == 1  # closed itself after the first event

    def test_callback_reads_post_commit_state(self):
        svc = CoreService.open(TRIANGLE)
        observed = []
        svc.subscribe(lambda e: observed.append(svc.core(e.vertex)))
        svc.apply(Batch.inserts([(0, 3), (1, 3)]))
        assert observed == [2]

    def test_callback_exception_propagates_after_commit(self):
        svc = CoreService.open(TRIANGLE)

        def explode(event):
            raise ValueError("subscriber bug")

        svc.subscribe(explode)
        with pytest.raises(ValueError, match="subscriber bug"):
            svc.insert(0, 3)
        assert svc.graph.m == 4  # the commit itself landed

    def test_subscriber_failure_still_reports_committed(self):
        svc = CoreService.open(TRIANGLE)

        def explode(event):
            raise ValueError("subscriber bug")

        svc.subscribe(explode)
        tx = svc.transaction()
        tx.insert(0, 3)
        with pytest.raises(ValueError, match="subscriber bug"):
            tx.commit()
        # The engine accepted the batch: the transaction must say so
        # (a "failed" state here would invite a double-applying retry).
        assert tx.state == "committed"
        assert tx.receipt is svc.last_receipt
        assert svc.graph.m == 4

    def test_receipt_events_available_without_subscribers(self):
        svc = CoreService.open(TRIANGLE)
        receipt = svc.apply(Batch.inserts([(0, 3), (1, 3)]))
        assert receipt.events == (CoreEvent(3, 0, 2, receipt.receipt_id),)
        # Lazily built events are frozen at commit time: later commits
        # must not rewrite an old receipt's story.
        svc.remove(1, 3)
        assert receipt.events[0].new_core == 2


class TestCheckpointing:
    def test_save_load_roundtrip(self, tmp_path):
        svc = CoreService.open(TRIANGLE + [(2, 3), (3, 4)])
        svc.insert(0, 3)
        path = tmp_path / "session.json"
        svc.save(path)
        restored = CoreService.load(path)
        assert restored.cores() == svc.cores()
        assert restored.engine_name == DEFAULT_ENGINE

    def test_restored_service_resumes_with_live_subscriptions(self, tmp_path):
        svc = CoreService.open(TRIANGLE)
        path = tmp_path / "session.json"
        svc.save(path)
        restored = CoreService.load(path)
        seen = []
        restored.subscribe(seen.append)
        restored.apply(Batch.inserts([(0, 3), (1, 3)]))
        assert [(e.vertex, e.new_core) for e in seen] == [(3, 2)]
        assert restored.cores() == core_numbers(restored.graph)

    def test_save_rejects_engines_without_snapshots(self, tmp_path):
        svc = CoreService.open(TRIANGLE, engine="naive")
        with pytest.raises(ServiceError, match="naive"):
            svc.save(tmp_path / "nope.json")


class TestMonitorIntegration:
    def test_monitor_exposes_its_service(self):
        monitor = SlidingWindowCoreMonitor(window=10.0)
        monitor.observe_many(TRIANGLE, t=0.0)
        assert monitor.service.core(0) == 2
        assert monitor.service.last_receipt.inserts == 3

    def test_monitor_adopts_an_open_service(self):
        svc = CoreService.open(engine="naive")
        monitor = SlidingWindowCoreMonitor(window=5.0, service=svc)
        monitor.observe_many(TRIANGLE, t=0.0)
        assert monitor.engine is svc.engine
        assert svc.degeneracy() == 2

    def test_monitor_rejects_a_populated_service(self):
        svc = CoreService.open(TRIANGLE)
        with pytest.raises(WorkloadError, match="window starts empty"):
            SlidingWindowCoreMonitor(window=5.0, service=svc)

    def test_monitor_rejects_service_plus_engine_config(self):
        # Engine configuration alongside an adopted service would be
        # silently ignored; it must raise instead.
        for kwargs in (
            {"engine": "naive"},
            {"seed": 7},
            {"sequence": "treap"},
        ):
            with pytest.raises(WorkloadError, match="not both"):
                SlidingWindowCoreMonitor(
                    window=5.0, service=CoreService.open(), **kwargs
                )

    def test_monitor_stats_are_subscriber_driven(self):
        monitor = SlidingWindowCoreMonitor(window=2.0)
        monitor.observe_many(TRIANGLE, t=0.0)
        # 0, 1, 2 each climb 0 -> 2: six core levels gained in total.
        assert monitor.stats.promotions == 6
        assert monitor.stats.demotions == 0
        monitor.advance_to(10.0)
        assert monitor.stats.demotions == 6
        # An outside subscriber on the same service sees the same stream.
        outside = []
        monitor.service.subscribe(outside.append)
        monitor.observe_many(TRIANGLE, t=11.0)
        assert {e.vertex for e in outside} == {0, 1, 2}


class TestBenchRunnerIntegration:
    def test_run_batches_accepts_services_and_engines(self):
        from repro.bench.runner import build_engine, build_service, run_batches

        batches = [Batch.inserts(TRIANGLE), Batch.removes([(0, 1)])]
        engine = build_engine("order", DynamicGraph())
        service = build_service("order", DynamicGraph())
        raw = run_batches(engine, batches)
        facade = run_batches(service, batches)
        assert [r.ops for r in raw] == [r.ops for r in facade] == [3, 1]
        assert engine.core_numbers() == service.cores()
        assert service.last_receipt.receipt_id == 2

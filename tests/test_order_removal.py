"""Unit tests for OrderRemoval (Algorithm 4)."""

import random

import pytest

from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer
from repro.errors import EdgeNotFoundError
from repro.graphs.undirected import DynamicGraph

from helpers import u


class TestBasicRemovals:
    def test_remove_pendant_edge(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        result = m.remove_edge(2, 3)
        assert result.changed == (3,)
        assert result.kind == "remove"
        assert result.delta == -1
        assert m.core_of(3) == 0

    def test_remove_triangle_edge_demotes_all(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        result = m.remove_edge(0, 1)
        assert set(result.changed) == {0, 1, 2}
        assert all(m.core_of(v) == 1 for v in (0, 1, 2))

    def test_remove_absent_edge_raises(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph)
        with pytest.raises(EdgeNotFoundError):
            m.remove_edge(0, 3)

    def test_remove_between_core_levels(self, fig3_graph):
        # v2 (core 2) - v7 (core 3): neither side changes (v2 still has
        # two 2-core neighbors; v7's K4 is untouched).
        m = OrderedCoreMaintainer(fig3_graph, audit=True)
        result = m.remove_edge(2, 7)
        assert result.changed == ()
        assert m.core_of(2) == 2 and m.core_of(7) == 3

    def test_remove_k4_edge_demotes_whole_subcore(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph, audit=True)
        result = m.remove_edge(6, 7)
        assert set(result.changed) == {6, 7, 8, 9}
        assert all(m.core_of(v) == 2 for v in (6, 7, 8, 9))
        # The other K4 is untouched.
        assert all(m.core_of(v) == 3 for v in (10, 11, 12, 13))

    def test_chain_removal_splits(self):
        m = OrderedCoreMaintainer(DynamicGraph([(0, 1), (1, 2)]), audit=True)
        result = m.remove_edge(0, 1)
        assert result.changed == (0,)
        assert m.core_of(0) == 0
        assert m.core_of(1) == m.core_of(2) == 1

    def test_insert_then_remove_roundtrip(self, fig3_graph):
        m = OrderedCoreMaintainer(fig3_graph, audit=True)
        before = m.core_numbers()
        m.insert_edge(4, u(0))
        m.remove_edge(4, u(0))
        assert m.core_numbers() == before


class TestVertexOperations:
    def test_add_vertex(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        assert m.add_vertex(99) is True
        assert m.add_vertex(99) is False
        assert m.core_of(99) == 0

    def test_remove_vertex_as_edge_sequence(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        results = m.remove_vertex(2)
        assert len(results) == 3  # edges to 0, 1, 3
        assert not m.graph.has_vertex(2)
        assert m.core_of(0) == m.core_of(1) == 1
        assert m.core_of(3) == 0
        m.check()

    def test_remove_then_readd_vertex(self, triangle_graph):
        m = OrderedCoreMaintainer(triangle_graph, audit=True)
        m.remove_vertex(3)
        m.insert_edge(2, 3)
        assert m.core_of(3) == 1


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_removal_streams_match_recomputation(self, seed):
        rng = random.Random(seed)
        n = 25
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        base = pairs[:130]
        m = OrderedCoreMaintainer(
            DynamicGraph(base, vertices=range(n)), audit=True
        )
        graph_copy = DynamicGraph(base, vertices=range(n))
        victims = base[:]
        rng.shuffle(victims)
        for e in victims[:80]:
            m.remove_edge(*e)
            graph_copy.remove_edge(*e)
            assert m.core_numbers() == core_numbers(graph_copy)

    def test_theorem_3_1_for_removals(self, small_random_graph):
        m = OrderedCoreMaintainer(small_random_graph, audit=True)
        rng = random.Random(3)
        edges = list(small_random_graph.edges())
        rng.shuffle(edges)
        for e in edges[:30]:
            snapshot = m.core_numbers()
            result = m.remove_edge(*e)
            for v, new in m.core_numbers().items():
                assert snapshot[v] - new in (0, 1)
            assert all(
                m.core_of(w) == snapshot[w] - 1 for w in result.changed
            )

    def test_changed_vertices_were_at_level_k(self, small_random_graph):
        m = OrderedCoreMaintainer(small_random_graph, audit=True)
        rng = random.Random(4)
        edges = list(small_random_graph.edges())
        rng.shuffle(edges)
        for e in edges[:30]:
            before = m.core_numbers()
            result = m.remove_edge(*e)
            for w in result.changed:
                assert before[w] == result.k

    def test_drain_graph_completely(self, small_random_graph):
        m = OrderedCoreMaintainer(small_random_graph, audit=True)
        for e in list(small_random_graph.edges()):
            m.remove_edge(*e)
        assert all(c == 0 for c in m.core_numbers().values())
        assert m.graph.m == 0

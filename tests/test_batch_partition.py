"""Tests for the batch region partitioner and the region scheduler.

``Batch.partition`` must (a) group ops whose edges touch or are connected
through the current graph, (b) keep disjoint components apart, (c) refine
by core levels when given ``core`` (high-core walls do not glue regions),
and (d) preserve per-edge op order inside a region.  The scheduler tests
then check the independence claim itself: applying the regions in any
order — sequentially or through the opt-in parallel path — ends in the
same cores as applying the original batch.
"""

import itertools
import random

import pytest

from repro.core.decomposition import core_numbers
from repro.engine import Batch, make_engine
from repro.graphs.undirected import DynamicGraph


def two_triangles():
    """Two disconnected triangles."""
    return DynamicGraph([(0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)])


class TestPartition:
    def test_disconnected_components_split(self):
        graph = two_triangles()
        batch = Batch.removes([(0, 1), (10, 11)])
        regions = batch.partition(graph)
        assert len(regions) == 2
        assert sorted(len(r) for r in regions) == [1, 1]
        # Regions come back in first-op order.
        assert regions[0].ops[0].edge == (0, 1)

    def test_ops_connected_through_graph_stay_together(self):
        # The two removed edges share no endpoint but are connected
        # through the path 2-3-10.
        graph = DynamicGraph([(0, 1), (1, 2), (2, 3), (3, 10), (10, 11)])
        batch = Batch.removes([(0, 1), (10, 11)])
        regions = batch.partition(graph)
        assert len(regions) == 1
        assert len(regions[0]) == 2

    def test_batch_edges_bridge_components(self):
        # Inserting an edge between the components fuses the regions.
        graph = two_triangles()
        batch = Batch.removes([(0, 1), (10, 11)]).insert(2, 12)
        regions = batch.partition(graph)
        assert len(regions) == 1

    def test_new_vertices_partition_by_batch_edges_only(self):
        graph = DynamicGraph([(0, 1)])
        batch = Batch.inserts([("a", "b"), ("b", "c"), ("x", "y"), (0, 2)])
        regions = batch.partition(graph)
        assert len(regions) == 3
        sizes = sorted(len(r) for r in regions)
        assert sizes == [1, 1, 2]

    def test_core_refinement_splits_across_high_core_wall(self):
        # Two pendant paths hang off a K5; the removals are level-1
        # updates whose cascades can never climb into the core-4 clique,
        # so with core numbers the wall no longer glues the regions.
        k5 = [(a, b) for a in range(5) for b in range(a + 1, 5)]
        left = [(0, 100), (100, 101)]
        right = [(1, 200), (200, 201)]
        graph = DynamicGraph(k5 + left + right)
        core = core_numbers(graph)
        batch = Batch.removes([(100, 101), (200, 201)])
        assert len(batch.partition(graph)) == 1  # pure connectivity
        regions = batch.partition(graph, core=core)
        assert len(regions) == 2

    def test_core_refinement_keeps_reachable_updates_together(self):
        # Same shape, but removals at the clique's own level must still
        # share a region (the cap admits the clique).
        k5 = [(a, b) for a in range(5) for b in range(a + 1, 5)]
        graph = DynamicGraph(k5 + [(0, 100), (1, 200)])
        core = core_numbers(graph)
        batch = Batch.removes([(0, 1), (2, 3)])
        regions = batch.partition(graph, core=core)
        assert len(regions) == 1

    def test_per_edge_op_order_preserved_within_region(self):
        graph = DynamicGraph([(5, 6)])
        batch = Batch().insert(1, 2).remove(1, 2).insert(1, 2).remove(5, 6)
        regions = batch.partition(graph)
        by_edge = {r.ops[0].edge: r for r in regions}
        assert [op.kind for op in by_edge[(1, 2)]] == [
            "insert", "remove", "insert",
        ]
        assert len(by_edge[(5, 6)]) == 1

    def test_empty_batch(self):
        assert Batch().partition(DynamicGraph([(0, 1)])) == []

    def test_counts_are_cached_and_correct(self):
        batch = Batch.inserts([(1, 2), (2, 3)]).remove(4, 5)
        assert batch.counts() == (2, 1)
        batch.insert(1, 2)  # duplicate of the pending op: dropped
        assert batch.counts() == (2, 1)
        batch.remove(1, 2).insert(1, 2)
        assert batch.counts() == (3, 2)
        assert repr(batch) == "Batch(3 inserts, 2 removes)"


class TestRegionScheduler:
    def mixed_setup(self, seed=0):
        rng = random.Random(seed)
        blocks = []
        edges = []
        for b in range(4):  # four disconnected pockets
            base = b * 20
            verts = range(base, base + 8)
            pairs = [
                (i, j) for i in verts for j in verts if i < j
            ]
            rng.shuffle(pairs)
            block_edges = pairs[:14]
            edges.extend(block_edges)
            blocks.append(block_edges)
        batch = Batch()
        for block_edges in blocks:
            for edge in rng.sample(block_edges, 4):
                batch.remove(*edge)
        return edges, batch

    def test_any_region_order_matches_serial(self):
        edges, batch = self.mixed_setup()
        serial = make_engine("order", DynamicGraph(edges), audit=True)
        serial.apply_batch(batch)
        expected = serial.core_numbers()
        regions = batch.partition(
            DynamicGraph(edges), core=core_numbers(DynamicGraph(edges))
        )
        assert len(regions) == 4
        for permutation in itertools.permutations(range(len(regions))):
            engine = make_engine("order", DynamicGraph(edges), audit=True)
            for index in permutation:
                engine.apply_batch(regions[index])
            assert engine.core_numbers() == expected

    def test_partitioned_schedule_agrees_and_reports_counters(self):
        edges, batch = self.mixed_setup(seed=1)
        plain = make_engine("order", DynamicGraph(edges))
        plain_result = plain.apply_batch(batch)
        assert plain_result.counters["regions"] == 1
        partitioned = make_engine("order", DynamicGraph(edges), partition=True)
        result = partitioned.apply_batch(batch)
        assert partitioned.core_numbers() == plain.core_numbers()
        assert result.counters["regions"] == 4
        assert result.counters["region_max_size"] == 4
        assert result.changed == plain_result.changed
        assert result.visited == plain_result.visited

    @pytest.mark.parametrize("sequence", ["om", "treap"])
    def test_parallel_schedule_agrees(self, sequence):
        edges, batch = self.mixed_setup(seed=2)
        serial = make_engine("order", DynamicGraph(edges), sequence=sequence)
        serial.apply_batch(batch)
        parallel = make_engine(
            "order", DynamicGraph(edges), sequence=sequence,
            partition=True, parallel=3, audit=True,
        )
        result = parallel.apply_batch(batch)
        assert parallel.core_numbers() == serial.core_numbers()
        assert parallel.core_numbers() == core_numbers(parallel.graph)
        parallel.check()
        assert result.counters["regions"] == 4

    def test_parallel_mixed_batch_with_inserts(self):
        edges, batch = self.mixed_setup(seed=3)
        for u, v in [(0, 100), (100, 101), (40, 120)]:
            batch.insert(u, v)
        serial = make_engine("order", DynamicGraph(edges))
        serial.apply_batch(batch)
        parallel = make_engine(
            "order", DynamicGraph(edges), parallel=2, audit=True
        )
        result = parallel.apply_batch(batch)  # parallel implies partition
        assert parallel.core_numbers() == serial.core_numbers()
        assert result.counters["regions"] > 1
        assert result.inserts == 3 and result.removes == 16

    def test_partitioned_insert_results_keep_batch_op_order(self):
        """Kept results must zip with the batch's ops even when regions
        interleave them during application."""
        graph = two_triangles()
        edges = [(0, 3), (10, 13), (1, 3), (11, 13)]  # alternating regions
        engine = make_engine("order", graph, partition=True)
        result = engine.apply_batch(Batch.inserts(edges))
        assert result.counters["regions"] == 2
        # Edges are already in canonical orientation, so kept results
        # must come back in exactly the batch's op order.
        assert [r.edge for r in result.results] == edges

    def test_per_call_override_beats_engine_default(self):
        edges, batch = self.mixed_setup(seed=4)
        engine = make_engine("order", DynamicGraph(edges), partition=True)
        result = engine.apply_batch(batch, partition=False)
        assert result.counters["regions"] == 1
        assert engine.core_numbers() == core_numbers(engine.graph)

"""Unit tests for the order-statistic treap (the paper's A_k)."""

import random

import pytest

from repro.structures.treap import OrderStatisticTreap


@pytest.fixture
def treap():
    return OrderStatisticTreap("abcde", rng=random.Random(1))


class TestConstruction:
    def test_empty(self):
        t = OrderStatisticTreap()
        assert len(t) == 0
        assert not t
        assert list(t) == []

    def test_from_iterable_preserves_order(self, treap):
        assert list(treap) == list("abcde")

    def test_len_and_bool(self, treap):
        assert len(treap) == 5
        assert treap

    def test_contains(self, treap):
        assert "c" in treap
        assert "z" not in treap

    def test_to_list(self, treap):
        assert treap.to_list() == list("abcde")

    def test_duplicate_insert_rejected(self, treap):
        with pytest.raises(ValueError):
            treap.insert_back("a")


class TestRank:
    def test_rank_matches_position(self, treap):
        for i, item in enumerate("abcde"):
            assert treap.rank(item) == i

    def test_rank_missing_raises(self, treap):
        with pytest.raises(KeyError):
            treap.rank("z")

    def test_precedes(self, treap):
        assert treap.precedes("a", "b")
        assert treap.precedes("a", "e")
        assert not treap.precedes("d", "b")
        assert not treap.precedes("c", "c")

    def test_select_inverts_rank(self, treap):
        for i in range(5):
            assert treap.rank(treap.select(i)) == i

    def test_select_out_of_range(self, treap):
        with pytest.raises(IndexError):
            treap.select(5)
        with pytest.raises(IndexError):
            treap.select(-1)


class TestEnds:
    def test_first_last(self, treap):
        assert treap.first() == "a"
        assert treap.last() == "e"

    def test_first_empty_raises(self):
        with pytest.raises(IndexError):
            OrderStatisticTreap().first()

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            OrderStatisticTreap().last()

    def test_successor_predecessor(self, treap):
        assert treap.successor("a") == "b"
        assert treap.successor("e") is None
        assert treap.predecessor("e") == "d"
        assert treap.predecessor("a") is None


class TestInsertionPositions:
    def test_insert_front(self, treap):
        treap.insert_front("x")
        assert list(treap) == list("xabcde")

    def test_insert_back(self, treap):
        treap.insert_back("x")
        assert list(treap) == list("abcdex")

    def test_insert_after_middle(self, treap):
        treap.insert_after("c", "x")
        assert list(treap) == list("abcxde")

    def test_insert_after_last(self, treap):
        treap.insert_after("e", "x")
        assert list(treap) == list("abcdex")

    def test_insert_before_middle(self, treap):
        treap.insert_before("c", "x")
        assert list(treap) == list("abxcde")

    def test_insert_before_first(self, treap):
        treap.insert_before("a", "x")
        assert list(treap) == list("xabcde")

    def test_insert_after_missing_anchor(self, treap):
        with pytest.raises(KeyError):
            treap.insert_after("z", "x")

    def test_extend_front_preserves_given_order(self, treap):
        treap.extend_front(["x", "y", "z"])
        assert list(treap) == list("xyzabcde")

    def test_extend_back(self, treap):
        treap.extend_back(["x", "y"])
        assert list(treap) == list("abcdexy")

    def test_insert_front_into_empty(self):
        t = OrderStatisticTreap()
        t.insert_front("a")
        assert list(t) == ["a"]


class TestRemoval:
    def test_remove_middle(self, treap):
        treap.remove("c")
        assert list(treap) == list("abde")
        assert "c" not in treap

    def test_remove_first_and_last(self, treap):
        treap.remove("a")
        treap.remove("e")
        assert list(treap) == list("bcd")

    def test_remove_only_element(self):
        t = OrderStatisticTreap(["x"])
        t.remove("x")
        assert len(t) == 0
        assert list(t) == []

    def test_remove_missing_raises(self, treap):
        with pytest.raises(KeyError):
            treap.remove("z")

    def test_remove_then_reinsert(self, treap):
        treap.remove("c")
        treap.insert_after("b", "c")
        assert list(treap) == list("abcde")

    def test_clear(self, treap):
        treap.clear()
        assert len(treap) == 0
        treap.insert_back("q")
        assert list(treap) == ["q"]


class TestRandomizedConsistency:
    """The treap must behave exactly like a Python list under a random
    op sequence, and keep its structural invariants."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_against_list_model(self, seed):
        rng = random.Random(seed)
        treap = OrderStatisticTreap(rng=random.Random(seed + 100))
        model: list[int] = []
        counter = 0
        for _ in range(400):
            op = rng.random()
            if op < 0.35 or not model:
                counter += 1
                if model and rng.random() < 0.5:
                    anchor = model[rng.randrange(len(model))]
                    if rng.random() < 0.5:
                        treap.insert_after(anchor, counter)
                        model.insert(model.index(anchor) + 1, counter)
                    else:
                        treap.insert_before(anchor, counter)
                        model.insert(model.index(anchor), counter)
                elif rng.random() < 0.5:
                    treap.insert_front(counter)
                    model.insert(0, counter)
                else:
                    treap.insert_back(counter)
                    model.append(counter)
            elif op < 0.55:
                victim = model.pop(rng.randrange(len(model)))
                treap.remove(victim)
            else:
                probe = model[rng.randrange(len(model))]
                assert treap.rank(probe) == model.index(probe)
        assert list(treap) == model
        treap.check_invariants()

    def test_balanced_depth_statistically(self):
        # 2^14 sequential inserts must still answer ranks; a degenerate
        # linked-list shape would recurse/walk 16k levels and time out.
        t = OrderStatisticTreap(range(16384), rng=random.Random(5))
        assert t.rank(0) == 0
        assert t.rank(16383) == 16383
        assert t.select(8000) == 8000
        t.check_invariants()

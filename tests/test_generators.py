"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graphs import generators
from repro.graphs.undirected import DynamicGraph


def assert_simple(edges):
    """No self-loops, no duplicates (in either direction)."""
    seen = set()
    for u, v in edges:
        assert u != v, f"self loop on {u}"
        key = (u, v) if u < v else (v, u)
        assert key not in seen, f"duplicate edge {key}"
        seen.add(key)


ALL_GENERATORS = [
    ("erdos_renyi", lambda s: generators.erdos_renyi_gnm(100, 250, seed=s)),
    ("barabasi_albert", lambda s: generators.barabasi_albert(150, 4, seed=s)),
    (
        "powerlaw_cluster",
        lambda s: generators.powerlaw_cluster(150, 4, 0.5, seed=s),
    ),
    ("chung_lu", lambda s: generators.chung_lu(200, 5.0, 2.3, seed=s)),
    ("watts_strogatz", lambda s: generators.watts_strogatz(100, 4, 0.1, seed=s)),
    ("copying", lambda s: generators.copying_model(150, 4, 0.6, seed=s)),
    (
        "affiliation",
        lambda s: generators.affiliation_collaboration(150, 120, seed=s),
    ),
    (
        "citation",
        lambda s: generators.layered_citation(150, 3.0, seed=s),
    ),
    ("road", lambda s: generators.road_grid(12, 12, seed=s)),
]


@pytest.mark.parametrize("name,make", ALL_GENERATORS, ids=[g[0] for g in ALL_GENERATORS])
class TestAllGenerators:
    def test_simple_graph(self, name, make):
        assert_simple(make(0))

    def test_deterministic_given_seed(self, name, make):
        assert make(7) == make(7)

    def test_seed_changes_output(self, name, make):
        assert make(1) != make(2)

    def test_nonempty_and_buildable(self, name, make):
        edges = make(3)
        assert len(edges) > 20
        graph = DynamicGraph.from_edges(edges)
        assert graph.n > 10


class TestSpecificShapes:
    def test_gnm_exact_edge_count(self):
        assert len(generators.erdos_renyi_gnm(50, 123, seed=1)) == 123

    def test_gnm_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi_gnm(4, 10, seed=0)

    def test_ba_degree_skew(self):
        edges = generators.barabasi_albert(400, 3, seed=4)
        g = DynamicGraph.from_edges(edges)
        # Preferential attachment: the max degree far exceeds the mean.
        assert g.max_degree() > 4 * g.average_degree()

    def test_ba_requires_enough_vertices(self):
        with pytest.raises(ValueError):
            generators.barabasi_albert(3, 5, seed=0)

    def test_powerlaw_cluster_has_triangles(self):
        edges = generators.powerlaw_cluster(200, 4, 0.9, seed=2)
        g = DynamicGraph.from_edges(edges)
        triangles = 0
        for u, v in g.edges():
            triangles += len(g.adj[u] & g.adj[v])
        assert triangles > 50

    def test_chung_lu_average_degree(self):
        edges = generators.chung_lu(1000, 6.0, 2.3, seed=3)
        g = DynamicGraph.from_edges(edges)
        assert 4.0 < 2 * len(edges) / 1000 < 8.0
        assert g.max_degree() > 3 * g.average_degree()

    def test_chung_lu_exponent_validated(self):
        with pytest.raises(ValueError):
            generators.chung_lu(100, 5.0, exponent=1.5, seed=0)

    def test_watts_strogatz_parameter_validation(self):
        with pytest.raises(ValueError):
            generators.watts_strogatz(10, 3, 0.1, seed=0)  # odd k
        with pytest.raises(ValueError):
            generators.watts_strogatz(4, 6, 0.1, seed=0)  # k >= n

    def test_watts_strogatz_zero_beta_is_lattice(self):
        edges = generators.watts_strogatz(20, 4, 0.0, seed=0)
        g = DynamicGraph.from_edges(edges)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_citation_edges_point_backwards(self):
        edges = generators.layered_citation(100, 2.5, seed=1)
        # Normalized (u < v) and v arrived after u, so max endpoint grows.
        assert all(u < v for u, v in edges)

    def test_road_grid_max_core_is_3(self):
        from repro.core.decomposition import core_numbers

        edges = generators.road_grid(40, 40, seed=5)
        cores = core_numbers(DynamicGraph.from_edges(edges))
        assert max(cores.values()) == 3

    def test_affiliation_clique_structure(self):
        edges = generators.affiliation_collaboration(
            100, 60, max_event_size=4, seed=6
        )
        g = DynamicGraph.from_edges(edges)
        triangles = 0
        for u, v in g.edges():
            triangles += len(g.adj[u] & g.adj[v])
        assert triangles > 10  # papers of size >= 3 are cliques

"""Tests for the batch-native removal run (``order_remove_run``).

The contract: one joint cascade per affected ``K``-level plus incremental
``mcd`` upkeep must leave *exactly* the state the per-edge ``OrderRemoval``
path leaves — same cores, a valid k-order, ``deg+`` and ``mcd`` exact —
while charging only one targeted ``mcd`` pass (the disposed set) per run
instead of a refresh per edge.  The property suite drives random removal
runs against the per-edge path and the from-scratch oracle under both
sequence backends.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_numbers, korder_decomposition
from repro.core.korder import KOrder
from repro.core.maintainer import compute_mcd
from repro.core.removal import order_remove_run
from repro.engine import Batch, make_engine
from repro.errors import EdgeNotFoundError
from repro.graphs.undirected import DynamicGraph

BACKENDS = ("om", "treap")


def build_state(edges, vertices=(), sequence="om"):
    graph = DynamicGraph(edges, vertices=vertices)
    decomposition = korder_decomposition(graph, policy="small")
    korder = KOrder.from_decomposition(
        decomposition, random.Random(0), sequence=sequence
    )
    core = dict(decomposition.core)
    mcd = compute_mcd(graph, core)
    return graph, korder, core, mcd


class TestOrderRemoveRun:
    @pytest.mark.parametrize("sequence", BACKENDS)
    def test_single_edge_run_matches_per_edge_semantics(self, sequence):
        """One-edge runs reproduce the Algorithm 4 outcome exactly."""
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]
        graph, korder, core, mcd = build_state(edges, sequence=sequence)
        run = order_remove_run(graph, korder, core, mcd, [(0, 1)])
        assert run.removed == 1
        assert set(run.changed) == {0, 1, 2}
        assert all(delta == -1 for delta in run.changed.values())
        assert core == core_numbers(graph)
        korder.audit(graph, core)
        assert mcd == compute_mcd(graph, core)

    def test_mcd_is_exact_without_any_caller_refresh(self):
        """The run's whole point: mcd leaves the call already repaired."""
        edges = [(a, b) for a in range(6) for b in range(a + 1, 6)]
        graph, korder, core, mcd = build_state(edges)
        run = order_remove_run(
            graph, korder, core, mcd, [(0, 1), (2, 3), (4, 5)]
        )
        assert mcd == compute_mcd(graph, core)
        # Targeted accounting: exactly one recomputation per demotion.
        assert run.recomputed == sum(-d for d in run.changed.values())

    def test_multi_level_demotion_in_one_run(self):
        """A batch can sink a vertex through several K-levels at once —
        something no single per-edge removal (|delta| <= 1) can do."""
        edges = [(a, b) for a in range(6) for b in range(a + 1, 6)]  # K6
        graph, korder, core, mcd = build_state(edges)
        assert all(c == 5 for c in core.values())
        victims = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        run = order_remove_run(graph, korder, core, mcd, victims)
        assert core == core_numbers(graph)
        assert all(c == 2 for c in core.values())
        assert all(delta == -3 for delta in run.changed.values())
        # The joint cascade walked several levels, highest first.
        assert list(run.levels) == sorted(run.levels, reverse=True)
        assert len(run.levels) >= 2
        korder.audit(graph, core)
        assert mcd == compute_mcd(graph, core)

    def test_no_cascade_run_costs_no_recomputation(self):
        """Slack-absorbing removals are pure decrements: the counter that
        used to grow by ~2 endpoints per edge stays at zero."""
        # Two squares, each with one diagonal: dropping the diagonals
        # leaves plain 4-cycles, still 2-cores — no core changes.
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 0), (0, 2),
            (4, 5), (5, 6), (6, 7), (7, 4), (4, 6),
        ]
        graph, korder, core, mcd = build_state(edges)
        run = order_remove_run(graph, korder, core, mcd, [(0, 2), (4, 6)])
        assert run.changed == {} and run.recomputed == 0
        assert core == core_numbers(graph)
        korder.audit(graph, core)
        assert mcd == compute_mcd(graph, core)

    @pytest.mark.parametrize("sequence", BACKENDS)
    def test_invalid_edge_mid_run_leaves_index_consistent(self, sequence):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        graph, korder, core, mcd = build_state(edges, sequence=sequence)
        with pytest.raises(EdgeNotFoundError):
            order_remove_run(
                graph, korder, core, mcd, [(0, 1), (7, 8), (2, 3)]
            )
        # (0, 1) landed and cascaded; (2, 3) was never reached.
        assert graph.has_edge(2, 3) and not graph.has_edge(0, 1)
        assert core == core_numbers(graph)
        korder.audit(graph, core)
        assert mcd == compute_mcd(graph, core)

    def test_empty_run(self):
        graph, korder, core, mcd = build_state([(0, 1)])
        run = order_remove_run(graph, korder, core, mcd, [])
        assert run.removed == 0 and run.changed == {} and run.levels == ()


class TestRunAgreesWithPerEdgePath:
    """Property: batch-native runs and the per-edge loop are equivalent."""

    @pytest.mark.parametrize("sequence", BACKENDS)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16), data=st.data())
    def test_run_matches_per_edge_and_oracle(self, sequence, seed, data):
        rng = random.Random(seed)
        n = data.draw(st.integers(min_value=4, max_value=24), label="n")
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        m = data.draw(st.integers(min_value=1, max_value=len(pairs)), label="m")
        base = pairs[:m]
        k = data.draw(st.integers(0, min(len(base), 16)), label="removes")
        victims = rng.sample(base, k)

        batched = make_engine(
            "order", DynamicGraph(base, vertices=range(n)),
            seed=seed, audit=True, sequence=sequence,
        )
        per_edge = make_engine(
            "order", DynamicGraph(base, vertices=range(n)),
            seed=seed, sequence=sequence,
        )
        for edge in victims:
            per_edge.remove_edge(*edge)
        batched.apply_batch(Batch.removes(victims))

        assert batched.core_numbers() == per_edge.core_numbers()
        assert batched.core_numbers() == core_numbers(batched.graph)
        batched.check()  # audits the k-order and the maintained mcd
        assert dict(batched.mcd) == dict(per_edge.mcd)
        # The run never does more mcd work than the per-edge refreshes.
        assert batched.mcd_recomputations <= per_edge.mcd_recomputations

    def test_deep_cascade_crossing_levels_agrees(self):
        """Nested cliques wired to a path: stripping the bridge edges
        cascades across three K-levels; both paths must agree."""
        k5 = [(a, b) for a in range(5) for b in range(a + 1, 5)]
        k3 = [(10, 11), (11, 12), (12, 10)]
        bridges = [(0, 10), (1, 11), (2, 12), (12, 20)]
        tail = [(20, 21), (21, 22)]
        base = k5 + k3 + bridges + tail
        victims = [(0, 10), (1, 11), (10, 11), (20, 21), (0, 1), (0, 2)]
        for sequence in BACKENDS:
            batched = make_engine(
                "order", DynamicGraph(base), audit=True, sequence=sequence
            )
            per_edge = make_engine(
                "order", DynamicGraph(base), sequence=sequence
            )
            for edge in victims:
                per_edge.remove_edge(*edge)
            result = batched.apply_batch(Batch.removes(victims))
            assert batched.core_numbers() == per_edge.core_numbers()
            batched.check()
            # Coalesced runs drop per-edge attribution but keep exact
            # aggregate demotions.
            assert result.results is None
            assert result.changed and all(
                d < 0 for d in result.changed.values()
            )

    def test_batch_counter_drops_versus_per_edge_loop(self):
        """Acceptance: per-batch mcd recomputations collapse from
        O(edges) refresh passes to one targeted pass per run."""
        rng = random.Random(3)
        n = 80
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        base = pairs[:800]
        victims = rng.sample(base, 300)
        batched = make_engine("order", DynamicGraph(base, vertices=range(n)))
        per_edge = make_engine("order", DynamicGraph(base, vertices=range(n)))
        for edge in victims:
            per_edge.remove_edge(*edge)
        result = batched.apply_batch(Batch.removes(victims))
        assert batched.core_numbers() == per_edge.core_numbers()
        # Per-edge path recomputes at least both endpoints per edge.
        assert per_edge.mcd_recomputations >= 2 * len(victims)
        # The run only recomputes demoted vertices.
        assert result.counters["mcd_recomputations"] < (
            0.5 * per_edge.mcd_recomputations
        )

"""Fault injection: the harness itself, and the crash-recovery matrix.

The matrix is the tentpole's acceptance test: for EVERY registered crash
point on the durable commit path, arm the point, commit until the
injected fault fires (simulating a process crash at exactly that
instruction), then recover from the log and require (a) the engine's
full invariant audit passes, (b) the recovered cores equal a
from-scratch decomposition of the recovered graph, and (c) the batch
that was in flight is present or absent according to the write-ahead
contract — present iff the crash hit after the log record was written.
"""

import pytest

from repro.core.decomposition import core_numbers
from repro.engine.batch import Batch
from repro.engine.registry import make_engine
from repro.errors import ReproError
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService
from repro.testing import FAULT_POINTS, FaultPlan, InjectedFault
from repro.testing.faults import inject, is_armed

TRIANGLE = [(1, 2), (2, 3), (3, 1)]

#: Write-ahead contract: after a crash at <point> during a commit, is
#: the in-flight batch durable (replayed by recovery)?  Points strictly
#: before the log append lose it; points at or after keep it.
DURABLE_AFTER = {
    "service.before_commit": False,
    "wal.before_append": False,
    "wal.mid_append": False,  # torn record: truncated, hence lost
    "wal.after_append": True,
    "wal.before_fsync": True,  # in-process crash: flushed data survives
    "wal.after_fsync": True,
    "engine.mid_batch": True,  # logged first, applied second
}


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan().crash("wal.no_such_point")

    def test_inert_by_default(self):
        inject("wal.before_append")  # no active plan: no-op
        assert not is_armed("wal.before_append")

    def test_count_armed_fires_once_then_disarms(self):
        with FaultPlan() as plan:
            plan.crash("wal.before_append")
            with pytest.raises(InjectedFault) as err:
                inject("wal.before_append")
            assert err.value.point == "wal.before_append"
            assert err.value.hit == 1
            inject("wal.before_append")  # disarmed after firing
        assert plan.fired == ["wal.before_append"]

    def test_hits_counts_down_to_the_nth_call(self):
        with FaultPlan() as plan:
            plan.crash("engine.mid_batch", hits=3)
            inject("engine.mid_batch")
            inject("engine.mid_batch")
            with pytest.raises(InjectedFault) as err:
                inject("engine.mid_batch")
            assert err.value.hit == 3
        assert plan.hits("engine.mid_batch") == 3

    def test_probability_uses_seeded_rng(self):
        def fire_pattern(seed):
            pattern = []
            with FaultPlan(seed=seed) as plan:
                plan.crash("engine.mid_batch", probability=0.5)
                for _ in range(20):
                    try:
                        inject("engine.mid_batch")
                        pattern.append(False)
                    except InjectedFault:
                        pattern.append(True)
            return pattern

        assert fire_pattern(7) == fire_pattern(7)  # deterministic
        assert any(fire_pattern(7))  # and actually fires

    def test_plans_nest_and_restore(self):
        outer = FaultPlan().crash("wal.before_append")
        with outer:
            with FaultPlan() as inner:
                inner.crash("wal.after_append")
                assert is_armed("wal.after_append")
                assert not is_armed("wal.before_append")
            assert is_armed("wal.before_append")
        assert not is_armed("wal.before_append")

    def test_registry_documents_every_point(self):
        for point, description in FAULT_POINTS.items():
            assert "." in point
            assert description


class CrashMatrix:
    """Shared driver: commit under an armed plan, crash, recover."""

    def crash_commit(self, svc, point, edge):
        with FaultPlan(seed=1).crash(point) as plan:
            with pytest.raises(InjectedFault):
                with svc.transaction() as tx:
                    tx.insert(*edge)
            assert plan.fired == [point]
        # No svc.close(): the "process" died at the crash point.


@pytest.mark.parametrize("point", sorted(DURABLE_AFTER))
class TestCrashRecoveryMatrix(CrashMatrix):
    def test_recovery_after_crash(self, tmp_path, point):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="always")
        with svc.transaction() as tx:
            tx.insert(3, 4)  # one clean commit before the crash
        self.crash_commit(svc, point, (4, 1))

        rec = CoreService.recover(log)
        rec.engine.check()
        assert rec.cores() == core_numbers(rec.engine.graph)
        assert rec.engine.graph.has_edge(3, 4)  # clean commit survived
        durable = DURABLE_AFTER[point]
        assert rec.engine.graph.has_edge(4, 1) == durable, (
            f"crash at {point}: in-flight batch should be "
            f"{'durable' if durable else 'lost'}"
        )
        # The recovered session is live: it takes new commits.
        with rec.transaction() as tx:
            tx.insert(5, 1)
        rec.engine.check()
        rec.close()

    def test_recovery_matches_scratch_decomposition(self, tmp_path, point):
        log = tmp_path / "s.wal"
        svc = CoreService.open(
            [(i, i + 1) for i in range(8)] + [(0, 4), (2, 6)],
            log=log,
            engine="order-simplified",
            fsync="always",
        )
        self.crash_commit(svc, point, (1, 5))
        rec = CoreService.recover(log)
        rec.engine.check()
        assert rec.cores() == core_numbers(rec.engine.graph)
        rec.close()


class TestCrashDuringCompaction(CrashMatrix):
    def test_snapshot_mid_write_leaves_old_snapshot_usable(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="never")
        with svc.transaction() as tx:
            tx.insert(3, 4)
        expected = svc.cores()
        with FaultPlan(seed=1).crash("snapshot.mid_write"):
            with pytest.raises(InjectedFault):
                svc.compact()
        # The crash hit the temp file; the real snapshot is the old one
        # and the un-rotated log still holds the commit.
        rec = CoreService.recover(log)
        assert rec.cores() == expected
        assert rec.recovery.replayed == 1
        rec.engine.check()
        rec.close()

class TestInjectedFaultPropagation:
    def test_fault_is_a_repro_error(self):
        assert issubclass(InjectedFault, ReproError)

    def test_library_never_swallows_faults(self):
        # A fault inside the engine's batch path must surface to the
        # caller — no except clause in the library may eat it.
        engine = make_engine("order", DynamicGraph(TRIANGLE))
        with FaultPlan(seed=1).crash("engine.mid_batch"):
            with pytest.raises(InjectedFault):
                engine.apply_batch(Batch().insert(3, 4))

    def test_sharded_worker_fault_surfaces_from_pool(self):
        graph = DynamicGraph([(1, 2), (2, 3), (10, 11), (11, 12)])
        engine = make_engine("order-sharded", graph, parallel=2)
        try:
            with FaultPlan(seed=1).crash("shard.worker_commit"):
                with pytest.raises(InjectedFault):
                    engine.apply_batch(Batch().insert(3, 1).insert(12, 10))
            # Satellite 2: the mirror graph and shard assignment stayed
            # consistent despite the mid-batch worker death.
            engine.check()
            assert engine.core_numbers() == core_numbers(engine.graph)
        finally:
            engine.close()

    def test_durable_sharded_session_recovers_from_worker_fault(
        self, tmp_path
    ):
        log = tmp_path / "s.wal"
        svc = CoreService.open(engine="order-sharded", log=log, fsync="never")
        with svc.transaction() as tx:
            for u, v in [(1, 2), (2, 3), (10, 11), (11, 12)]:
                tx.insert(u, v)
        with FaultPlan(seed=1).crash("shard.worker_commit"):
            with pytest.raises(InjectedFault):
                with svc.transaction() as tx:
                    tx.insert(3, 1)
                    tx.insert(12, 10)
        # The batch WAS logged (write-ahead): recovery replays it fully,
        # healing the partial application the crash left behind.
        rec = CoreService.recover(log)
        assert rec.engine.graph.has_edge(3, 1)
        assert rec.engine.graph.has_edge(12, 10)
        rec.engine.check()
        assert rec.cores() == core_numbers(rec.engine.graph)
        rec.close()
        svc.close()


class TestRegisterFaultPoint:
    """The extension hook: layers above the WAL register their own
    points (the serving front's ``server.*``/``replica.*`` live there)."""

    def test_registered_point_is_armable(self):
        from repro.testing import register_fault_point

        register_fault_point(
            "testonly.extension_point", "a point registered by this test"
        )
        try:
            with FaultPlan() as plan:
                plan.crash("testonly.extension_point")
                with pytest.raises(InjectedFault):
                    inject("testonly.extension_point")
            assert plan.fired == ["testonly.extension_point"]
        finally:
            FAULT_POINTS.pop("testonly.extension_point", None)

    def test_unknown_point_arming_names_the_catalogue(self):
        with pytest.raises(ValueError, match="registered points:"):
            FaultPlan().crash("testonly.never_registered")

    def test_idempotent_reregistration(self):
        from repro.testing import register_fault_point

        register_fault_point("testonly.idem", "same description")
        try:
            register_fault_point("testonly.idem", "same description")
            with pytest.raises(ValueError, match="already registered"):
                register_fault_point("testonly.idem", "different words")
        finally:
            FAULT_POINTS.pop("testonly.idem", None)

    def test_rejects_malformed_registrations(self):
        from repro.testing import register_fault_point

        with pytest.raises(ValueError, match="namespaced"):
            register_fault_point("nodot", "a description")
        with pytest.raises(ValueError, match="description"):
            register_fault_point("testonly.blank", "")

    def test_serving_front_points_self_register(self):
        import repro.service  # noqa: F401 - registers on import

        for point in (
            "server.drop_conn", "server.slow_write",
            "server.partial_frame", "replica.stale_read",
        ):
            assert point in FAULT_POINTS
            assert "behavioural" in FAULT_POINTS[point]


#: The serving front's points are *behavioural* (caught and converted to
#: network misbehaviour by the server/replica — exercised end-to-end in
#: test_service_server.py), not process-crash points on the durable
#: commit path, so the reachability sweep below excludes them.
BEHAVIOURAL_PREFIXES = ("server.", "replica.")


class TestPointCatalogue:
    def test_every_point_is_reachable(self, tmp_path):
        """Each registered crash point actually fires somewhere on the
        durable commit/compaction path — a point nothing calls is dead
        weight and a hole in the matrix."""
        import repro.service  # noqa: F401 - registers the served points

        crash_points = [
            p for p in FAULT_POINTS
            if not p.startswith(BEHAVIOURAL_PREFIXES)
        ]
        reached = set()
        for point in crash_points:
            log = tmp_path / f"{point}.wal"
            engine = "order-sharded" if point.startswith("shard") else "order"
            svc = CoreService.open(engine=engine, log=log, fsync="always")
            with svc.transaction() as tx:
                for u, v in TRIANGLE:
                    tx.insert(u, v)
            try:
                with FaultPlan(seed=1).crash(point) as plan:
                    try:
                        with svc.transaction() as tx:
                            tx.insert(3, 4)
                        if engine == "order":
                            svc.compact()  # reaches snapshot.mid_write
                    except InjectedFault:
                        pass
                    if plan.fired:
                        reached.add(point)
            finally:
                svc.close()
        assert reached == set(crash_points)

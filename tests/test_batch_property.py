"""Property-based agreement tests for the batch pipeline.

Random interleaved insert/remove batches — including batches that add
brand-new vertices — are applied through ``apply_batch`` on all three
engines; after every batch each engine must agree with a from-scratch
``core_numbers`` recomputation of its own graph (and hence with every
other engine).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from engine_contract import mixed_batch_stream, representative_engines
from repro.core.decomposition import core_numbers
from repro.engine import Batch, make_engine
from repro.graphs.undirected import DynamicGraph

# One engine per distinct maintenance code path, straight from the
# conformance contract — a newly registered engine family joins this
# agreement suite with no edit here.
ENGINES = representative_engines()


def random_batch_stream(seed, n_batches=6, batch_size=25, universe=60):
    """The canonical mixed stream, seeded the way this suite always has
    been (so the fixed-seed cases replay byte-identical histories)."""
    return mixed_batch_stream(
        random.Random(seed), n_batches, batch_size, universe
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_engines_agree_after_each_mixed_batch(seed):
    base, batches = random_batch_stream(seed)
    engines = {
        name: make_engine(
            name,
            DynamicGraph(base),
            seed=seed,
            **({"audit": True} if name.startswith("order") else {}),
        )
        for name in ENGINES
    }
    for batch in batches:
        reference = None
        for name, engine in engines.items():
            engine.apply_batch(batch)
            oracle = core_numbers(engine.graph)
            snapshot = engine.core_numbers()
            assert snapshot == oracle, f"{name} diverged from recompute"
            if reference is None:
                reference = snapshot
            else:
                # Engines may carry isolated vertices the others lack;
                # compare on the union with 0-default.
                keys = reference.keys() | snapshot.keys()
                assert all(
                    reference.get(k, 0) == snapshot.get(k, 0) for k in keys
                ), f"{name} diverged from {ENGINES[0]}"


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    data=st.data(),
)
def test_order_engine_batch_matches_recompute(seed, data):
    """Hypothesis: arbitrary valid mixed batches keep the order index true."""
    rng = random.Random(seed)
    n = data.draw(st.integers(min_value=4, max_value=20), label="n")
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    m = data.draw(st.integers(min_value=0, max_value=len(pairs)), label="m")
    base, spare = pairs[:m], pairs[m:]
    engine = make_engine(
        "order", DynamicGraph(base, vertices=range(n)), seed=seed, audit=True
    )
    batch = Batch()
    for edge in spare[: data.draw(st.integers(0, 12), label="inserts")]:
        batch.insert(*edge)
    for edge in rng.sample(base, min(len(base), data.draw(st.integers(0, 12), label="removes"))):
        batch.remove(*edge)
    engine.apply_batch(batch)
    assert engine.core_numbers() == core_numbers(engine.graph)

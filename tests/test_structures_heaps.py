"""Unit tests for the lazy min-heap (the paper's jump structure B)."""

import pytest

from repro.structures.heaps import LazyMinHeap


@pytest.fixture
def heap():
    h = LazyMinHeap()
    h.push(3, "c")
    h.push(1, "a")
    h.push(2, "b")
    return h


class TestBasics:
    def test_len_counts_live(self, heap):
        assert len(heap) == 3
        heap.discard("b")
        assert len(heap) == 2

    def test_bool(self):
        h = LazyMinHeap()
        assert not h
        h.push(1, "x")
        assert h

    def test_contains(self, heap):
        assert "a" in heap
        heap.discard("a")
        assert "a" not in heap

    def test_key_of(self, heap):
        assert heap.key_of("b") == 2
        with pytest.raises(KeyError):
            heap.key_of("zz")


class TestOrdering:
    def test_peek_returns_min(self, heap):
        assert heap.peek() == (1, "a")

    def test_peek_does_not_remove(self, heap):
        heap.peek()
        assert len(heap) == 3

    def test_pop_in_key_order(self, heap):
        assert [heap.pop() for _ in range(3)] == [(1, "a"), (2, "b"), (3, "c")]
        assert heap.pop() is None

    def test_peek_empty(self):
        assert LazyMinHeap().peek() is None


class TestLazyDiscard:
    def test_discarded_item_skipped(self, heap):
        heap.discard("a")
        assert heap.peek() == (2, "b")

    def test_discard_returns_whether_live(self, heap):
        assert heap.discard("a") is True
        assert heap.discard("a") is False

    def test_discard_then_repush_same_key(self, heap):
        heap.discard("a")
        heap.push(1, "a")
        assert heap.pop() == (1, "a")

    def test_discard_then_repush_different_key(self, heap):
        heap.discard("a")
        heap.push(5, "a")
        assert [heap.pop() for _ in range(3)] == [(2, "b"), (3, "c"), (5, "a")]

    def test_push_same_key_idempotent(self, heap):
        heap.push(1, "a")
        heap.push(1, "a")
        assert heap.pop() == (1, "a")
        assert "a" not in heap

    def test_rekey_live_item(self, heap):
        heap.push(0, "c")  # re-key c from 3 to 0
        assert heap.peek() == (0, "c")
        assert len(heap) == 3

    def test_clear(self, heap):
        heap.clear()
        assert len(heap) == 0
        assert heap.peek() is None


class TestStress:
    def test_interleaved_ops_keep_order(self):
        h = LazyMinHeap()
        for i in range(100):
            h.push(i, i)
        for i in range(0, 100, 2):
            h.discard(i)
        for i in range(0, 100, 4):
            h.push(i, i)  # revive every other discarded item
        seen = []
        while True:
            item = h.pop()
            if item is None:
                break
            seen.append(item[0])
        assert seen == sorted(seen)
        expected = set(range(1, 100, 2)) | set(range(0, 100, 4))
        assert set(seen) == expected

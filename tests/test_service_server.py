"""End-to-end tests of the async serving front (server + client).

Everything runs over real TCP on the loopback with the real protocol —
no mocked transports — exercising the robustness machinery the module
exists for: supervised failover, backpressure, deadlines with
exactly-once retry, degraded-mode reads, replica staleness, and the
behavioural network fault points (``server.*`` / ``replica.*``).

The suite has no pytest-asyncio dependency: each test is a sync
function running one scenario coroutine under ``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.core.decomposition import core_numbers
from repro.graphs.undirected import DynamicGraph
from repro.service import (
    CoreClient,
    CoreServer,
    CoreService,
    DeadlineExceededError,
    RemoteError,
    RetryAfterError,
    ServerLimits,
    SessionDegradedError,
)
from repro.service.wal import scan
from repro.testing.faults import FaultPlan

TRIANGLE = [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 0)]


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 60))


async def wait_for_state(client, state, *, timeout=10.0):
    """Poll ``status`` until the session reports ``state``."""
    async def _poll():
        while True:
            st = await client.status()
            if st["state"] == state:
                return st
            await asyncio.sleep(0.01)
    return await asyncio.wait_for(_poll(), timeout)


def oracle_cores(edges):
    graph = DynamicGraph()
    for u, v in edges:
        graph.add_edge(u, v)
    return core_numbers(graph)


class TestRoundTrip:
    def test_commit_query_ping(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                async with await CoreClient.connect(
                    host, port, session="t"
                ) as client:
                    assert await client.ping()
                    summary = await client.commit(TRIANGLE)
                    assert summary["receipt_id"] == 1
                    assert summary["ops"] == 3
                    assert not summary["replayed"]
                    assert await client.core(0) == 2
                    assert await client.cores() == {0: 2, 1: 2, 2: 2}
                    assert await client.degeneracy() == 2
                    assert await client.kcore(2) == [0, 1, 2]
                    assert await client.top(2) == [(0, 2), (1, 2)]
                    assert await client.spectrum() == {2: 3}
        run(scenario())

    def test_query_reports_source_and_receipt(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                reply = await client.query("cores")
                assert reply["source"] == "primary"
                assert reply["state"] == "healthy"
                assert reply["receipt"] == 1
                await client.close()
        run(scenario())

    def test_sessions_are_isolated(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                a = await CoreClient.connect(host, port, session="a")
                b = await CoreClient.connect(host, port, session="b")
                await a.commit(TRIANGLE)
                await b.commit([("insert", 10, 11)])
                assert await a.cores() == {0: 2, 1: 2, 2: 2}
                assert await b.cores() == {10: 1, 11: 1}
                assert (await a.server_stats())["sessions"] == 2
                await a.close()
                await b.close()
        run(scenario())

    def test_invalid_session_name_rejected(self):
        async def scenario():
            async with CoreServer() as server:
                host, port = await server.start()
                client = await CoreClient.connect(
                    host, port, session="../escape"
                )
                with pytest.raises(RemoteError, match="invalid session"):
                    await client.status()
                await client.close()
        run(scenario())

    def test_unknown_method_and_op(self):
        async def scenario():
            async with CoreServer() as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                with pytest.raises(RemoteError, match="unknown method"):
                    await client._request("frobnicate", {})
                with pytest.raises(RemoteError, match="unknown query op"):
                    await client.query("frobnicate")
                await client.close()
        run(scenario())

    def test_garbage_bytes_drop_the_peer_not_the_server(self):
        async def scenario():
            async with CoreServer() as server:
                host, port = await server.start()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET / HTTP/1.1\r\n\r\n" + b"\n")
                await writer.drain()
                assert await reader.read(100) == b""  # dropped
                writer.close()
                # The server still serves protocol-speaking clients.
                client = await CoreClient.connect(host, port, session="t")
                assert await client.ping()
                await client.close()
        run(scenario())


class TestIdempotency:
    def test_token_replay_returns_same_receipt(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                first = await client.commit(TRIANGLE, token="tok")
                again = await client.commit(TRIANGLE, token="tok")
                assert not first["replayed"]
                assert again["replayed"]
                assert again["receipt_id"] == first["receipt_id"]
                # The batch really applied once: one record in the log.
                assert (await client.status())["commits"] == 1
                await client.close()
        run(scenario())

    def test_tokens_survive_server_restart(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                first = await client.commit(TRIANGLE, token="tok")
                await client.close()
            # A brand-new server over the same log_dir resumes the
            # tenant — including its durable token record.
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                again = await client.commit(TRIANGLE, token="tok")
                assert again["replayed"]
                assert again["receipt_id"] == first["receipt_id"]
                assert await client.cores() == {0: 2, 1: 2, 2: 2}
                await client.close()
        run(scenario())


class TestBackpressure:
    def test_full_queue_sheds_with_backoff_hint(self, tmp_path):
        async def scenario():
            limits = ServerLimits(max_pending=2, max_inflight=64)
            async with CoreServer(log_dir=tmp_path, limits=limits) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                session = server.sessions["t"]
                session.pause()  # writer held: queue fills, nothing drains
                edges = [("insert", 10 + i, 20 + i) for i in range(8)]
                waiters = [
                    asyncio.create_task(
                        client.commit([e], retry=False, deadline=30)
                    )
                    for e in edges
                ]
                await asyncio.sleep(0.3)  # shed replies come back at once
                shed_edges, shed_errors = [], []
                for edge, task in zip(edges, waiters):
                    if task.done():
                        exc = task.exception()
                        assert isinstance(exc, RetryAfterError)
                        shed_errors.append(exc)
                        shed_edges.append(edge)
                assert len(shed_errors) >= 4, (
                    "a held writer with a 2-deep queue must shed"
                )
                assert all(e.retryable for e in shed_errors)
                assert all(
                    e.retry_after and e.retry_after > 0 for e in shed_errors
                )
                session.resume()
                await asyncio.gather(*waiters, return_exceptions=True)
                # Shed commits retried (default retry loop) all land.
                for e in shed_edges:
                    summary = await client.commit([e], deadline=30)
                    assert summary["receipt_id"] > 0
                assert (await client.status())["shed"] >= len(shed_errors)
                await client.close()
        run(scenario())

    def test_global_inflight_cap(self, tmp_path):
        async def scenario():
            limits = ServerLimits(max_pending=64, max_inflight=2)
            async with CoreServer(log_dir=tmp_path, limits=limits) as server:
                host, port = await server.start()
                a = await CoreClient.connect(host, port, session="a")
                b = await CoreClient.connect(host, port, session="b")
                await a.commit(TRIANGLE)
                await b.commit([("insert", 90, 91)])
                for name in ("a", "b"):
                    server.sessions[name].pause()
                waiters = [
                    asyncio.create_task(
                        c.commit(
                            [("insert", 50 + i, 60 + i)],
                            retry=False, deadline=30,
                        )
                    )
                    for i, c in enumerate([a, b, a, b, a, b])
                ]
                await asyncio.sleep(0.3)
                shed = [
                    t.exception() for t in waiters if t.done()
                ]
                assert len(shed) >= 4  # cap of 2 across both sessions
                assert all(isinstance(e, RetryAfterError) for e in shed)
                assert any("max_inflight" in str(e) for e in shed)
                for name in ("a", "b"):
                    server.sessions[name].resume()
                await asyncio.gather(*waiters, return_exceptions=True)
                await a.close()
                await b.close()
        run(scenario())


class TestDeadlines:
    def test_deadline_fires_while_queued(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                server.sessions["t"].pause()
                with pytest.raises(DeadlineExceededError) as info:
                    await client.commit(
                        [("insert", 5, 6)], deadline=0.05, retry=False
                    )
                assert info.value.retryable
                server.sessions["t"].resume()
                await client.close()
        run(scenario())

    def test_expired_commit_still_lands_and_retry_is_exactly_once(
        self, tmp_path
    ):
        """The cancellation-safety contract: a deadline abandons the
        waiter, the single writer still finishes the commit, and the
        token retry resolves to the already-landed receipt."""
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                session = server.sessions["t"]
                session.pause()
                with pytest.raises(DeadlineExceededError):
                    await client.commit(
                        [("insert", 5, 6)], token="tok",
                        deadline=0.05, retry=False,
                    )
                # Retry immediately — the original is still queued, so
                # this exercises the attach-to-in-flight path too.
                session.resume()
                summary = await client.commit(
                    [("insert", 5, 6)], token="tok", deadline=10,
                )
                assert summary["replayed"], (
                    "the deadline-abandoned commit must have applied "
                    "exactly once"
                )
                assert (await client.status())["commits"] == 2
                assert await client.core(5) == 1
                await client.close()
        run(scenario())


class TestFailover:
    def test_crash_recover_healthy_with_report(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                with FaultPlan().crash("engine.mid_batch"):
                    summary = await client.commit(
                        [("insert", 0, 3)], deadline=20
                    )
                # The WAL had the record before the engine died, so the
                # retry is answered from the recovered token table.
                assert summary["replayed"]
                st = await wait_for_state(client, "healthy")
                assert st["crashes"] == 1
                assert st["recoveries"] == 1
                assert st["last_recovery"]["replayed"] >= 1
                assert await client.core(3) == 1
                await client.close()
        run(scenario())

    def test_degraded_reads_during_recovery_window(self, tmp_path):
        async def scenario():
            limits = ServerLimits(recovery_delay=0.4)
            async with CoreServer(log_dir=tmp_path, limits=limits) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                with FaultPlan().crash("engine.mid_batch"):
                    with pytest.raises(RetryAfterError):
                        await client.commit(
                            [("insert", 0, 3)], retry=False
                        )
                st = await wait_for_state(client, "degraded")
                # Reads keep answering from last-good state while the
                # supervisor lingers before re-recovering.
                reply = await client.query("cores")
                assert reply["source"] == "last_good"
                assert dict(
                    (v, c) for v, c in reply["result"]
                ) == {0: 2, 1: 2, 2: 2}
                assert (await client.query("top", n=1))["result"] == [[0, 2]]
                assert (await client.query("kcore", k=2))["result"] == [
                    0, 1, 2,
                ]
                assert (await client.query("degeneracy"))["result"] == 2
                st = await wait_for_state(client, "healthy")
                assert (await client.query("cores"))["source"] == "primary"
                assert (await client.status())["degraded_reads"] >= 4
                await client.close()
        run(scenario())

    def test_unlogged_session_degrades_permanently(self):
        async def scenario():
            async with CoreServer() as server:  # no log_dir
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                with FaultPlan().crash("engine.mid_batch"):
                    with pytest.raises(RetryAfterError):
                        await client.commit(
                            [("insert", 0, 3)], retry=False
                        )
                st = await wait_for_state(client, "degraded")
                assert not st["logged"]
                with pytest.raises(SessionDegradedError) as info:
                    await client.commit([("insert", 7, 8)], retry=False)
                assert not info.value.retryable
                # Reads still answer (read-only survival mode).
                assert (await client.query("cores"))["source"] == "last_good"
                await client.close()
        run(scenario())

    def test_last_good_tracks_committed_state_exactly(self, tmp_path):
        """The incremental last-good map equals a fresh decomposition of
        everything committed before the crash."""
        async def scenario():
            async with CoreServer() as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2),
                         (5, 6)]
                for u, v in edges:
                    await client.commit([("insert", u, v)])
                await client.commit([("remove", 5, 6)])
                with FaultPlan().crash("engine.mid_batch"):
                    with pytest.raises(RetryAfterError):
                        await client.commit(
                            [("insert", 0, 9)], retry=False
                        )
                await wait_for_state(client, "degraded")
                got = dict(
                    (v, c)
                    for v, c in (await client.query("cores"))["result"]
                )
                want = oracle_cores(
                    [(u, v) for u, v in edges if (u, v) != (5, 6)]
                )
                want.update({5: 0, 6: 0})  # removed edge leaves 0-cores
                assert got == want
                await client.close()
        run(scenario())


class TestSubscriptions:
    def test_events_stream_to_client(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                stream = await client.subscribe()
                await client.commit(TRIANGLE)
                batch = await asyncio.wait_for(stream.__anext__(), 10)
                assert batch.kind == "events"
                assert sorted(batch.events) == [
                    (0, 0, 2, 1), (1, 0, 2, 1), (2, 0, 2, 1),
                ]
                assert batch.dropped == 0
                await stream.close()
                await client.close()
        run(scenario())

    def test_min_k_filter(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                stream = await client.subscribe(min_k=2)
                await client.commit([("insert", 8, 9)])  # stays below 2
                await client.commit(TRIANGLE)            # crosses 2
                batch = await asyncio.wait_for(stream.__anext__(), 10)
                assert {e[0] for e in batch.events} == {0, 1, 2}
                assert all(e[3] == 2 for e in batch.events)
                await stream.close()
                await client.close()
        run(scenario())

    def test_reset_frame_after_failover(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                stream = await client.subscribe()
                await client.commit(TRIANGLE)
                first = await asyncio.wait_for(stream.__anext__(), 10)
                assert first.kind == "events"
                with FaultPlan().crash("engine.mid_batch"):
                    await client.commit([("insert", 0, 3)], deadline=20)
                await wait_for_state(client, "healthy")
                kinds = [first.kind]
                # After failover the stream must carry a reset marker;
                # events may follow for post-recovery commits.
                item = await asyncio.wait_for(stream.__anext__(), 10)
                kinds.append(item.kind)
                assert item.kind == "reset"
                assert item.receipt >= 1
                await client.commit([("insert", 3, 4)])
                nxt = await asyncio.wait_for(stream.__anext__(), 10)
                assert nxt.kind == "events"
                assert any(e[0] == 4 for e in nxt.events)
                await stream.close()
                await client.close()
        run(scenario())

    def test_unsubscribe_stops_delivery(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                stream = await client.subscribe()
                await stream.close()
                assert server.sessions["t"].subscribers == {}
                await client.commit(TRIANGLE)
                with pytest.raises(StopAsyncIteration):
                    await asyncio.wait_for(stream.__anext__(), 5)
                await client.close()
        run(scenario())

    def test_slow_subscriber_drops_oldest_never_blocks_commits(
        self, tmp_path
    ):
        async def scenario():
            limits = ServerLimits(subscriber_buffer=2)
            async with CoreServer(log_dir=tmp_path, limits=limits) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                stream = await client.subscribe(buffer=2)
                # Stall the pump so the bounded buffer must shed.
                sub = next(iter(server.sessions["t"].subscribers.values()))
                sub.task.cancel()
                for i in range(12):
                    await client.commit([("insert", 100 + i, 200 + i)])
                assert sub.sub.dropped_events >= 10
                assert (await client.status())["commits"] == 12
                await stream.close()
                await client.close()
        run(scenario())


class TestReplica:
    def test_replica_reads_match_primary(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                await client.commit([("insert", 2, 3), ("insert", 3, 0)])
                reply = await client.query("cores", replica=True)
                assert reply["source"] == "replica"
                assert reply["receipt"] == 2
                assert await client.cores(replica=True) == (
                    await client.cores()
                )
                assert await client.kcore(2, replica=True) == [0, 1, 2, 3]
                assert await client.top(1, replica=True) == [(0, 2)]
                await client.close()
        run(scenario())

    def test_replica_tails_incrementally(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                await client.cores(replica=True)  # builds the replica
                replica = server.sessions["t"].replica
                builds = replica.rebuilds
                for i in range(5):
                    await client.commit([("insert", 10 + i, 11 + i)])
                    await client.cores(replica=True)
                assert replica.receipt == 6
                assert replica.rebuilds == builds  # tailed, not rebuilt
                assert replica.refreshes >= 5
                await client.close()
        run(scenario())

    def test_replica_requires_a_logged_session(self):
        async def scenario():
            async with CoreServer() as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                with pytest.raises(RemoteError, match="no commit log"):
                    await client.cores(replica=True)
                await client.close()
        run(scenario())

    def test_stale_read_fault_serves_old_state(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                await client.cores(replica=True)
                await client.commit([("insert", 0, 3)])
                with FaultPlan().crash("replica.stale_read"):
                    reply = await client.query("cores", replica=True)
                # Knowingly stale: the new vertex is missing.
                assert reply["receipt"] == 1
                assert 3 not in {v for v, _ in reply["result"]}
                replica = server.sessions["t"].replica
                assert replica.stale_serves == 1
                # Next refresh catches up.
                assert await client.core(3, replica=True) == 1
                await client.close()
        run(scenario())


class TestNetworkFaults:
    """End-to-end matrix for the behavioural server.* fault points.

    Each scenario arms one point, drives a commit through the resulting
    network misbehaviour, and asserts the invariant the ISSUE demands:
    the client-visible retry resolves exactly once, the engine stays
    sound, and every acked receipt survives offline recovery.
    """

    def _finish(self, tmp_path, acked):
        # Offline recovery agrees with everything the clients saw acked,
        # and the recovered engine's invariants hold.
        from repro.analysis.validation import validate_maintainer

        log = tmp_path / "t.wal"
        svc = CoreService.recover(log)
        assert validate_maintainer(svc.engine).ok
        logged = {rid for rid, _ in scan(log).records}
        for receipt_id in acked:
            assert receipt_id in logged
        svc.close()

    def test_drop_conn_commit_retries_exactly_once(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                with FaultPlan().crash("server.drop_conn") as plan:
                    summary = await client.commit(TRIANGLE, deadline=20)
                assert plan.fired == ["server.drop_conn"]
                # The ack was dropped with the connection, so the retry
                # was answered from the token record — applied once.
                assert summary["replayed"]
                assert client.reconnects >= 1
                assert (await client.status())["commits"] == 1
                assert await client.cores() == {0: 2, 1: 2, 2: 2}
                return [summary["receipt_id"]]
            return []
        acked = run(scenario())
        self._finish(tmp_path, acked)

    def test_partial_frame_is_discarded_by_the_peer(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                with FaultPlan().crash("server.partial_frame") as plan:
                    summary = await client.commit(TRIANGLE, deadline=20)
                assert plan.fired == ["server.partial_frame"]
                assert summary["replayed"]
                assert (await client.status())["commits"] == 1
                return [summary["receipt_id"]]
        acked = run(scenario())
        self._finish(tmp_path, acked)

    def test_slow_write_is_latency_not_loss(self, tmp_path):
        async def scenario():
            limits = ServerLimits(slow_write_delay=0.2)
            async with CoreServer(log_dir=tmp_path, limits=limits) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                loop = asyncio.get_running_loop()
                start = loop.time()
                with FaultPlan().crash("server.slow_write") as plan:
                    summary = await client.commit(TRIANGLE, deadline=20)
                assert plan.fired == ["server.slow_write"]
                assert loop.time() - start >= 0.2
                assert not summary["replayed"]  # first reply got through
                assert (await client.status())["commits"] == 1
                return [summary["receipt_id"]]
        acked = run(scenario())
        self._finish(tmp_path, acked)

    def test_drop_conn_during_query_leaves_session_clean(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                with FaultPlan().crash("server.drop_conn"):
                    with pytest.raises(Exception):
                        await client.query("cores")
                # Reconnect; nothing was lost or double-applied.
                client2 = await CoreClient.connect(host, port, session="t")
                assert await client2.cores() == {0: 2, 1: 2, 2: 2}
                assert (await client2.status())["commits"] == 1
                await client.close()
                await client2.close()
                return [1]
        acked = run(scenario())
        self._finish(tmp_path, acked)


class TestServerLifecycle:
    def test_restart_resumes_sessions_from_log_dir(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(TRIANGLE)
                await client.close()
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                st = await client.status()
                assert st["receipt"] == 1
                assert st["last_recovery"] is not None
                summary = await client.commit([("insert", 0, 3)])
                assert summary["receipt_id"] == 2
                await client.close()
        run(scenario())

    def test_close_fails_pending_commits(self, tmp_path):
        async def scenario():
            server = CoreServer(log_dir=tmp_path)
            host, port = await server.start()
            client = await CoreClient.connect(host, port, session="t")
            await client.commit(TRIANGLE)
            server.sessions["t"].pause()
            task = asyncio.create_task(
                client.commit([("insert", 5, 6)], retry=False, deadline=30)
            )
            await asyncio.sleep(0.05)
            await server.close()
            with pytest.raises(Exception):
                await task
            await client.close()
        run(scenario())

    def test_concurrent_clients_one_session_serialized(self, tmp_path):
        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                clients = [
                    await CoreClient.connect(host, port, session="t")
                    for _ in range(4)
                ]
                edges = [(100 * (i + 1), 100 * (i + 1) + 1)
                         for i in range(16)]
                await asyncio.gather(*[
                    clients[i % 4].commit([("insert", u, v)], deadline=30)
                    for i, (u, v) in enumerate(edges)
                ])
                st = await clients[0].status()
                assert st["commits"] == 16
                assert st["receipt"] == 16
                cores = await clients[0].cores()
                assert all(cores[u] == 1 and cores[v] == 1
                           for u, v in edges)
                for c in clients:
                    await c.close()
        run(scenario())


def test_wire_frames_are_wal_framed(tmp_path):
    """The protocol really shares the WAL's framing discipline."""
    from repro.service import protocol
    from repro.service.wal import _parse_frame

    frame = protocol.encode_frame({"id": 1, "ok": True, "result": None})
    assert frame.endswith(b"\n")
    assert _parse_frame(frame[:-1]) == {"id": 1, "ok": True, "result": None}
    length, crc, payload = frame[:-1].split(b" ", 2)
    assert int(length) == len(payload)
    json.loads(payload)

"""Stateful property testing: hypothesis drives a maintainer like a fuzzer.

A ``RuleBasedStateMachine`` interleaves edge/vertex operations in any
order hypothesis can dream up, continuously checking the order-based
engine against a naive shadow and auditing the index.  This is the
closest thing to a model checker the test-suite has; shrinking produces
minimal failing op sequences when an invariant breaks.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs.undirected import DynamicGraph

VERTICES = st.integers(0, 9)


class CoreMaintenanceMachine(RuleBasedStateMachine):
    """Random walk over the update API with a naive shadow graph."""

    @initialize()
    def setup(self):
        self.engine = OrderedCoreMaintainer(DynamicGraph(), audit=True)
        self.shadow = DynamicGraph()
        self.ops = 0

    @rule(u=VERTICES, v=VERTICES)
    def insert_edge(self, u, v):
        if u == v or self.shadow.has_edge(u, v):
            return
        self.engine.insert_edge(u, v)
        self.shadow.add_edge(u, v)
        self.ops += 1

    @rule(u=VERTICES, v=VERTICES)
    def remove_edge(self, u, v):
        if u == v or not self.shadow.has_edge(u, v):
            return
        self.engine.remove_edge(u, v)
        self.shadow.remove_edge(u, v)
        self.ops += 1

    @rule(v=VERTICES)
    def add_vertex(self, v):
        self.engine.add_vertex(v)
        self.shadow.add_vertex(v)

    @rule(v=VERTICES)
    def remove_vertex(self, v):
        if not self.shadow.has_vertex(v):
            return
        self.engine.remove_vertex(v)
        self.shadow.remove_vertex(v)
        self.ops += 1

    @invariant()
    def cores_match_shadow(self):
        if not hasattr(self, "engine"):
            return
        assert self.engine.core_numbers() == core_numbers(self.shadow)

    @invariant()
    def graph_matches_shadow(self):
        if not hasattr(self, "engine"):
            return
        graph = self.engine.graph
        assert graph.n == self.shadow.n
        assert graph.m == self.shadow.m


CoreMaintenanceMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestCoreMaintenanceMachine = CoreMaintenanceMachine.TestCase

"""Linearization harness: concurrent clients vs a serial shadow oracle.

Hypothesis drives N async clients against one :class:`CoreServer`, each
working a *disjoint vertex pocket* and interleaving commits, queries and
injected crash-restarts (``engine.mid_batch`` fires mid-run, so the WAL
may or may not hold the poisoned commit).  Clients retry every commit
with its idempotency token until acked.  Afterwards the write-ahead log
is the arbiter:

* every acked commit appears in the log **exactly once** (no token
  committed twice — the exactly-once contract under retries, crashes and
  failovers);
* an offline :meth:`CoreService.recover` equals a *serial* replay of the
  log into a fresh graph (the shadow oracle), equals a from-scratch
  ``core_numbers`` decomposition;
* each client's pocket ends with exactly the core numbers of the edges
  it got acked — concurrency with other tenants' pockets never leaks in.
"""

import asyncio
import tempfile
from collections import Counter
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_numbers
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreClient, CoreServer, CoreService, ServerLimits
from repro.service.wal import batch_from_ops, scan
from repro.testing.faults import FaultPlan

POCKET = 1000  # vertex id stride separating client pockets


def pocket_edges(client_index, n):
    """``n`` distinct edges inside client ``client_index``'s pocket."""
    base = POCKET * (client_index + 1)
    edges = []
    for i in range(n):
        # A path with chords: connected enough to move core numbers.
        u = base + i
        v = base + i + 1 if i % 3 else base + (i // 3)
        if u == v:
            v = u + 1
        edges.append((u, v))
    return edges


async def run_client(client, index, plan_ops, acked, crash_plan):
    """One tenant's life: commit each op (retrying on anything), query."""
    edges = pocket_edges(index, len(plan_ops))
    mine = []
    for op, (u, v) in zip(plan_ops, edges):
        if op == "crash" and crash_plan is not None:
            crash_plan.crash("engine.mid_batch")
        summary = await client.commit([("insert", u, v)], deadline=30)
        acked.append((summary["receipt_id"], u, v))
        mine.append((u, v))
        if op == "query":
            reply = await client.query("cores")
            got = {
                vert: c
                for vert, c in reply["result"]
                if POCKET * (index + 1) <= vert < POCKET * (index + 2)
            }
            want = oracle(mine)
            # Degraded windows can only show *my own already-acked*
            # history, so the pocket oracle holds on every source.
            assert got == want, (reply["source"], got, want)
    return mine


def oracle(edges):
    graph = DynamicGraph()
    for u, v in edges:
        graph.add_edge(u, v)
    return core_numbers(graph)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    plans=st.lists(
        st.lists(
            st.sampled_from(["commit", "commit", "query", "crash"]),
            min_size=2,
            max_size=6,
        ),
        min_size=2,
        max_size=4,
    ),
)
def test_concurrent_clients_linearize_against_the_log(plans):
    async def scenario(tmp):
        limits = ServerLimits(default_deadline=30.0)
        acked: list = []
        async with CoreServer(log_dir=tmp, limits=limits) as server:
            host, port = await server.start()
            clients = [
                await CoreClient.connect(host, port, session=f"s{i}")
                for i in range(len(plans))
            ]
            # One shared crash plan: any armed point fires on whichever
            # session's writer reaches it first — chaos by design; the
            # invariants below must hold regardless.
            with FaultPlan() as crash_plan:
                pockets = await asyncio.gather(*[
                    run_client(c, i, plan, acked, crash_plan)
                    for i, (c, plan) in enumerate(zip(clients, plans))
                ])
            for client in clients:
                await client.close()
        return acked, pockets

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        acked, pockets = asyncio.run(
            asyncio.wait_for(scenario(tmp), 120)
        )

        # The log is the arbiter, one session at a time.
        all_edges = []
        for i in range(len(plans)):
            log = tmp / f"s{i}.wal"
            info = scan(log)
            logged = [rid for rid, _ in info.records]
            assert len(logged) == len(set(logged)), (
                "a receipt id was logged twice"
            )
            tokens = Counter(info.tokens.values())
            assert all(n == 1 for n in tokens.values()), (
                f"a token committed twice: {tokens}"
            )
            acked_here = [
                rid for rid, u, v in acked if POCKET * (i + 1) <= u
                < POCKET * (i + 2)
            ]
            for rid in acked_here:
                assert rid in logged, (
                    f"acked receipt {rid} missing from {log.name}"
                )
            assert len(acked_here) == len(set(acked_here)) == len(logged), (
                "every logged commit must be exactly one acked commit"
            )

            # Serial shadow replay == offline recovery == decomposition.
            shadow = DynamicGraph()
            for _, ops in info.records:
                batch = batch_from_ops(ops)
                for op in batch:
                    if op.kind == "insert":
                        shadow.add_edge(*op.edge)
                    else:
                        shadow.remove_edge(*op.edge)
            recovered = CoreService.recover(log)
            assert recovered.cores() == core_numbers(shadow)
            assert recovered.cores() == oracle(pockets[i])
            recovered.close()
            all_edges.extend(pockets[i])

        # Pockets are disjoint: the union decomposes independently.
        union = oracle(all_edges)
        for i, mine in enumerate(pockets):
            for vert, c in oracle(mine).items():
                assert union[vert] == c


def test_server_restart_mid_workload(tmp_path):
    """A full server bounce (not just a session crash) loses nothing."""
    async def phase(tmp, first):
        async with CoreServer(log_dir=tmp) as server:
            host, port = await server.start()
            client = await CoreClient.connect(host, port, session="t")
            edges = pocket_edges(0, 12)
            half = edges[:6] if first else edges[6:]
            for u, v in half:
                await client.commit([("insert", u, v)], deadline=30)
            cores = await client.cores()
            await client.close()
            return cores

    asyncio.run(phase(tmp_path, True))
    cores = asyncio.run(phase(tmp_path, False))
    assert cores == oracle(pocket_edges(0, 12))

    recovered = CoreService.recover(tmp_path / "t.wal")
    assert recovered.cores() == cores
    recovered.close()

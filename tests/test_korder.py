"""Unit tests for the maintained k-order index."""

import random

import pytest

from repro.core.decomposition import core_numbers, korder_decomposition
from repro.core.korder import KOrder
from repro.errors import InvariantViolationError
from repro.graphs.undirected import DynamicGraph


@pytest.fixture
def korder_and_graph(triangle_graph):
    d = korder_decomposition(triangle_graph, policy="small")
    return KOrder.from_decomposition(d, random.Random(0)), triangle_graph, d


class TestConstruction:
    def test_from_decomposition_order(self, korder_and_graph):
        ko, graph, d = korder_and_graph
        assert ko.order() == d.order
        assert len(ko) == graph.n

    def test_blocks_match_cores(self, korder_and_graph):
        ko, graph, d = korder_and_graph
        for v in graph.vertices():
            assert ko.k_of(v) == d.core[v]

    def test_deg_plus_copied(self, korder_and_graph):
        ko, _, d = korder_and_graph
        assert ko.deg_plus == d.deg_plus

    def test_block_sizes(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        assert ko.block_sizes() == {1: 1, 2: 3}

    def test_contains(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        assert 0 in ko
        assert 99 not in ko


class TestOrderQueries:
    def test_precedes_cross_block(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        # vertex 3 (core 1) precedes every triangle vertex (core 2)
        for v in (0, 1, 2):
            assert ko.precedes(3, v)
            assert not ko.precedes(v, 3)

    def test_precedes_within_block_consistent_with_order(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        ordered = ko.order()
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                assert ko.precedes(a, b)
                assert not ko.precedes(b, a)

    def test_rank_in_block(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        block2 = list(ko.iter_block(2))
        for i, v in enumerate(block2):
            assert ko.rank_in_block(v) == i

    def test_iter_missing_block_empty(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        assert list(ko.iter_block(7)) == []


class TestUpdates:
    def test_append_to_new_block(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        ko.append(5, "new")
        assert ko.k_of("new") == 5
        assert list(ko.iter_block(5)) == ["new"]
        assert ko.order()[-1] == "new"

    def test_prepend_chain_preserves_relative_order(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        old_block2 = list(ko.iter_block(2))
        ko.remove(3)
        ko.prepend_chain(2, [3])
        assert list(ko.iter_block(2)) == [3] + old_block2

    def test_remove_drops_empty_block(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        ko.remove(3)
        assert 1 not in ko.block_sizes()

    def test_forget_drops_deg_plus(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        ko.forget(3)
        assert 3 not in ko.deg_plus

    def test_move_after_repositions(self):
        ko = KOrder(random.Random(1))
        for v in "abcd":
            ko.append(2, v)
        ko.move_after("c", "a")
        assert list(ko.iter_block(2)) == ["b", "c", "a", "d"]

    def test_move_after_cross_block_rejected(self, korder_and_graph):
        ko, _, _ = korder_and_graph
        with pytest.raises(InvariantViolationError):
            ko.move_after(0, 3)  # 0 in O_2, 3 in O_1


class TestAudit:
    def test_clean_index_passes(self, korder_and_graph):
        ko, graph, d = korder_and_graph
        ko.audit(graph, d.core)

    def test_missing_vertex_detected(self, korder_and_graph):
        ko, graph, d = korder_and_graph
        ko.remove(3)
        with pytest.raises(InvariantViolationError):
            ko.audit(graph, d.core)

    def test_wrong_block_detected(self, korder_and_graph):
        ko, graph, d = korder_and_graph
        ko.remove(3)
        ko.append(2, 3)  # vertex 3 has core 1, not 2
        with pytest.raises(InvariantViolationError):
            ko.audit(graph, d.core)

    def test_stale_deg_plus_detected(self, korder_and_graph):
        ko, graph, d = korder_and_graph
        ko.deg_plus[0] += 1
        with pytest.raises(InvariantViolationError):
            ko.audit(graph, d.core)

    def test_lemma_5_1_violation_detected(self):
        # Path a-b-c with b forced first: deg+(b) = 2 > core 1.
        g = DynamicGraph([("a", "b"), ("b", "c")])
        core = core_numbers(g)
        ko = KOrder(random.Random(2))
        for v in ("b", "a", "c"):
            ko.append(1, v)
        ko.deg_plus.update({"b": 2, "a": 1, "c": 0})
        with pytest.raises(InvariantViolationError):
            ko.audit(g, core)

"""Tests for the engine layer: registry, Batch semantics, apply_batch.

Covers the acceptance criteria of the engine-layer refactor:

* ``make_engine`` resolves all three engine families by name;
* ``apply_batch`` on a mixed 500-insert/500-remove workload agrees with
  the naive from-scratch oracle on every engine;
* the order engine's batched path performs measurably fewer ``mcd``
  recomputations than the same workload replayed per edge.
"""

import random

import pytest

from repro.core.maintainer import OrderedCoreMaintainer, compute_mcd
from repro.core.decomposition import core_numbers
from repro.engine import (
    Batch,
    BatchResult,
    CoreMaintainer,
    available_engines,
    engine_options,
    make_engine,
    normalize_edge,
    register_engine,
)
from repro.errors import BatchError, EngineOptionError, SelfLoopError
from repro.graphs.undirected import DynamicGraph
from repro.naive.maintainer import NaiveCoreMaintainer
from repro.traversal.maintainer import TraversalCoreMaintainer

from helpers import random_gnm


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Ad-hoc registrations in this module must not leak into the
    global registry: the conformance battery asserts registry coverage,
    so leaked names would fail it (and pollute every other suite)."""
    from repro.engine import registry

    snapshot = dict(registry._REGISTRY)
    yield
    registry._REGISTRY.clear()
    registry._REGISTRY.update(snapshot)


def mixed_workload(n=120, base_m=2000, inserts=500, removes=500, seed=7):
    """A base graph plus an interleaved 50/50 insert/remove plan."""
    rng = random.Random(seed)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    base = pairs[:base_m]
    new_edges = pairs[base_m : base_m + inserts]
    victims = rng.sample(base, removes)
    plan = []
    vi = ni = 0
    for step in range(inserts + removes):
        if step % 2 == 0 and ni < inserts:
            plan.append(("insert", new_edges[ni]))
            ni += 1
        elif vi < removes:
            plan.append(("remove", victims[vi]))
            vi += 1
        else:
            plan.append(("insert", new_edges[ni]))
            ni += 1
    graph = lambda: DynamicGraph(base, vertices=range(n))  # noqa: E731
    return graph, plan


class TestRegistry:
    def test_resolves_all_three_engine_families(self):
        graph = DynamicGraph([(0, 1), (1, 2), (2, 0)])
        assert isinstance(
            make_engine("order", graph.copy()), OrderedCoreMaintainer
        )
        assert isinstance(
            make_engine("trav-2", graph.copy()), TraversalCoreMaintainer
        )
        assert isinstance(
            make_engine("naive", graph.copy()), NaiveCoreMaintainer
        )

    def test_order_policies_and_trav_hops(self):
        graph = DynamicGraph([(0, 1)])
        assert make_engine("order-large", graph.copy()).name == "order"
        assert make_engine("trav-3", graph.copy()).h == 3
        # Any hop count works, not just the pre-registered ones.
        assert make_engine("trav-7", graph.copy()).h == 7

    def test_common_opts_accepted_by_every_engine(self):
        graph = DynamicGraph([(0, 1), (1, 2), (2, 0)])
        for name in ("order", "trav-2", "naive"):
            engine = make_engine(name, graph.copy(), seed=3)
            assert isinstance(engine, CoreMaintainer)

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("quantum", DynamicGraph())

    def test_available_engines_lists_builtins(self):
        names = available_engines()
        assert {"order", "naive", "trav-2"} <= set(names)

    def test_register_engine_rejects_duplicates_and_accepts_new(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("order", lambda g: None)
        register_engine(
            "naive-alias",
            lambda graph, seed=None: NaiveCoreMaintainer(graph),
            overwrite=True,
        )
        assert isinstance(
            make_engine("naive-alias", DynamicGraph()), NaiveCoreMaintainer
        )

    def test_core_base_shim_is_gone(self):
        # The deprecated repro.core.base re-export shim had one release
        # of warning time (PR 4) and is now removed for good.
        with pytest.raises(ModuleNotFoundError):
            import repro.core.base  # noqa: F401

    def test_sequence_backend_selection(self):
        graph = DynamicGraph([(0, 1), (1, 2), (2, 0)])
        assert make_engine("order", graph.copy()).sequence == "om"
        assert make_engine(
            "order", graph.copy(), sequence="treap"
        ).sequence == "treap"
        assert make_engine("order-om", graph.copy()).sequence == "om"
        assert make_engine("order-treap", graph.copy()).sequence == "treap"
        with pytest.raises(ValueError, match="sequence backend"):
            make_engine("order", graph.copy(), sequence="skiplist")


class TestEngineOptionValidation:
    """Unknown options must fail loudly, naming engine and keyword."""

    #: Every registered family plus the dynamic trav-<h> path, with an
    #: option the factory genuinely accepts (proving validation does not
    #: over-reject).
    FAMILIES = [
        ("order", {"policy": "large"}),
        ("order-small", {"audit": True}),
        ("order-large", {"seed": 3}),
        ("order-random", {"seed": 3}),
        ("order-om", {"partition": True}),
        ("order-treap", {"parallel": 2}),
        ("order-sharded", {"parallel": 2, "reshard": "batch"}),
        ("order-sharded", {"engine": "order-simplified"}),
        ("order-sharded-simplified", {"parallel": 2, "reshard": "batch"}),
        ("order-simplified", {"policy": "large"}),
        ("order-simplified", {"partition": True, "parallel": 2}),
        ("order-simplified-treap", {"audit": True}),
        ("naive", {"seed": 1}),
        ("trav", {"audit": True}),
        ("trav-2", {"seed": 1}),
        ("trav-7", {"audit": True}),  # dynamic trav-<h>, not registered
    ]

    @pytest.mark.parametrize("name,good", FAMILIES)
    def test_every_family_rejects_a_stray_option(self, name, good):
        graph = DynamicGraph([(0, 1), (1, 2), (2, 0)])
        engine = make_engine(name, graph.copy(), **good)
        assert isinstance(engine, CoreMaintainer)
        with pytest.raises(EngineOptionError) as info:
            make_engine(name, graph.copy(), turbo=True, **good)
        message = str(info.value)
        assert name in message and "turbo" in message
        assert info.value.stray == ("turbo",)

    def test_typoed_known_option_names_the_typo(self):
        with pytest.raises(EngineOptionError, match="sequnce"):
            make_engine("order", DynamicGraph(), sequnce="om")

    def test_error_lists_accepted_options(self):
        with pytest.raises(EngineOptionError) as info:
            make_engine("naive", DynamicGraph(), sequence="om")
        assert set(info.value.accepted) == {"seed", "audit"}

    def test_trav_name_derived_h_is_not_an_option(self):
        # h comes from the engine *name*; passing it as an option must
        # fail instead of silently fighting the name.
        with pytest.raises(EngineOptionError, match="'h'"):
            make_engine("trav-3", DynamicGraph(), h=5)

    def test_sharded_simplified_alias_pins_the_sub_engine(self):
        # The alias name *is* the sub-engine selection; engine= on it
        # must fail instead of silently fighting the name.
        with pytest.raises(EngineOptionError, match="'engine'"):
            make_engine(
                "order-sharded-simplified", DynamicGraph(), engine="order"
            )

    def test_var_keyword_factories_validate_themselves(self):
        calls = []

        def factory(graph, **opts):
            calls.append(opts)
            return NaiveCoreMaintainer(graph)

        register_engine("anything-goes", factory, overwrite=True)
        make_engine("anything-goes", DynamicGraph(), custom=1, seed=2)
        assert calls == [{"custom": 1, "seed": 2}]

    def test_engine_options_introspection(self):
        assert engine_options("naive") == ("audit", "seed")
        assert "sequence" in engine_options("order")
        assert engine_options("trav-5") == ("audit", "seed")
        with pytest.raises(ValueError, match="unknown engine"):
            engine_options("quantum")


class TestBatch:
    def test_normalizes_and_dedupes(self):
        batch = Batch([("insert", (2, 1)), ("insert", (1, 2))])
        assert len(batch) == 1
        assert batch.ops[0].edge == (1, 2)

    def test_opposite_kind_sequences_are_kept(self):
        batch = Batch.inserts([(1, 2)]).remove(1, 2).insert(1, 2)
        assert [op.kind for op in batch] == ["insert", "remove", "insert"]

    def test_rejects_bad_kind_and_self_loop(self):
        with pytest.raises(BatchError):
            Batch([("upsert", (1, 2))])
        with pytest.raises(SelfLoopError):
            Batch.inserts([(3, 3)])

    def test_counts_and_edges(self):
        batch = Batch.inserts([(1, 2), (2, 3)]).remove(4, 5)
        assert batch.counts() == (2, 1)
        assert batch.edges("remove") == [(4, 5)]

    def test_conflict_free_batch_reorders_into_two_runs(self):
        batch = (
            Batch().insert(1, 2).remove(3, 4).insert(5, 6).remove(7, 8)
        )
        runs = batch.runs()
        assert [kind for kind, _ in runs] == ["remove", "insert"]
        assert runs[0][1] == [(3, 4), (7, 8)]
        assert runs[1][1] == [(1, 2), (5, 6)]

    def test_conflicting_batch_keeps_natural_order(self):
        batch = Batch().insert(1, 2).remove(1, 2).insert(3, 4)
        assert batch.conflicting_edges() == {(1, 2)}
        runs = batch.runs()
        assert [kind for kind, _ in runs] == ["insert", "remove", "insert"]

    def test_normalize_edge_prefers_vertex_order_over_repr(self):
        # repr ordering would put 10 before 2 ("10" < "2"); vertex
        # ordering must win for comparable vertices.
        assert normalize_edge(10, 2) == (2, 10)
        assert normalize_edge(2, 10) == (2, 10)

    def test_round_trips_through_own_ops(self):
        original = Batch().insert(1, 2).remove(3, 4).insert(1, 2)
        rebuilt = Batch(original.ops)
        assert rebuilt.ops == original.ops

    def test_normalize_edge_mixed_types_is_stable(self):
        # int and str don't compare; the stable (type, repr) key decides,
        # identically for both argument orders.
        assert normalize_edge(1, "a") == normalize_edge("a", 1)
        with pytest.raises(SelfLoopError):
            normalize_edge("x", "x")


class TestApplyBatchAgreement:
    """Acceptance: mixed 500/500 workload, all engines vs the oracle."""

    @pytest.fixture(scope="class")
    def workload(self):
        return mixed_workload()

    @pytest.fixture(scope="class")
    def oracle(self, workload):
        graph_factory, plan = workload
        graph = graph_factory()
        for kind, (a, b) in plan:
            (graph.add_edge if kind == "insert" else graph.remove_edge)(a, b)
        return core_numbers(graph)

    @pytest.mark.parametrize(
        "name", ["order", "order-simplified", "trav-2", "naive"]
    )
    def test_batched_replay_matches_recompute_oracle(
        self, name, workload, oracle
    ):
        graph_factory, plan = workload
        engine = make_engine(name, graph_factory(), seed=1)
        result = engine.apply_batch(Batch(plan))
        assert result.inserts == 500 and result.removes == 500
        assert engine.core_numbers() == oracle
        # Net changes in the result must equal the oracle's view too.
        base_core = core_numbers(graph_factory())
        expected = {
            v: oracle.get(v, 0) - base_core.get(v, 0)
            for v in oracle.keys() | base_core.keys()
            if oracle.get(v, 0) != base_core.get(v, 0)
        }
        assert result.changed == expected

    def test_order_batched_path_repairs_mcd_and_korder(self, workload):
        graph_factory, plan = workload
        engine = make_engine("order", graph_factory(), seed=1, audit=True)
        engine.apply_batch(Batch(plan))
        engine.check()
        assert dict(engine.mcd) == compute_mcd(engine.graph, engine.core)

    def test_order_batch_does_fewer_mcd_recomputations(self, workload):
        graph_factory, plan = workload
        per_edge = make_engine("order", graph_factory(), seed=1)
        for kind, (a, b) in plan:
            op = per_edge.insert_edge if kind == "insert" else per_edge.remove_edge
            op(a, b)
        batched = make_engine("order", graph_factory(), seed=1)
        batched.apply_batch(Batch(plan))
        assert batched.core_numbers() == per_edge.core_numbers()
        # Removal repair cannot be deferred (the cascade consumes mcd),
        # so the amortization comes from the insertion run; on this
        # workload that still halves the total repair work.
        assert batched.mcd_recomputations < 0.6 * per_edge.mcd_recomputations, (
            f"batched path should amortize mcd repair: "
            f"{batched.mcd_recomputations} vs {per_edge.mcd_recomputations}"
        )

    def test_insert_run_amortization_is_sharp(self, workload):
        """An insert-only batch pays ~|V| repairs instead of ~2 per edge."""
        graph_factory, plan = workload
        inserts = [("insert", e) for k, e in plan if k == "insert"]
        per_edge = make_engine("order", graph_factory(), seed=1)
        for _, (a, b) in inserts:
            per_edge.insert_edge(a, b)
        batched = make_engine("order", graph_factory(), seed=1)
        batched.apply_batch(Batch(inserts))
        assert batched.core_numbers() == per_edge.core_numbers()
        assert batched.mcd_recomputations <= batched.graph.n
        assert per_edge.mcd_recomputations >= 2 * len(inserts)

    def test_naive_batch_recomputes_once(self, workload):
        graph_factory, plan = workload
        engine = make_engine("naive", graph_factory())
        result = engine.apply_batch(Batch(plan))
        assert engine.recomputations == 1
        assert result.results is None
        assert result.visited == engine.graph.n

    def test_batch_registers_new_vertices(self):
        engine = make_engine("order", DynamicGraph([(0, 1)]), audit=True)
        result = engine.apply_batch(
            Batch.inserts([("a", "b"), ("b", "c"), ("c", "a"), (1, "a")])
        )
        assert engine.core_of("a") == 2
        assert result.inserts == 4

    def test_bulk_wrapper_still_returns_per_edge_results(self):
        engine = OrderedCoreMaintainer(DynamicGraph(), audit=True)
        results = engine.insert_edges_bulk([(0, 1), (1, 2), (2, 0)])
        assert [r.kind for r in results] == ["insert"] * 3
        assert engine.core_of(0) == 2

    def test_empty_batch_is_a_noop(self):
        engine = make_engine("order", DynamicGraph([(0, 1)]))
        result = engine.apply_batch(Batch())
        assert result.ops == 0 and result.changed == {}

    def test_order_index_stays_consistent_when_an_op_raises(self):
        from repro.errors import EdgeExistsError

        engine = make_engine("order", DynamicGraph([(0, 1), (1, 2), (2, 0)]))
        # (0, 1) already exists: the third op raises after two landed.
        with pytest.raises(EdgeExistsError):
            engine.apply_batch(Batch([
                ("insert", (0, 3)), ("insert", (3, 1)), ("insert", (0, 1)),
            ]))
        engine.check()  # mcd and k-order must survive the failed batch
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_naive_core_stays_consistent_when_an_op_raises(self):
        from repro.errors import EdgeExistsError

        engine = make_engine("naive", DynamicGraph([(0, 1), (1, 2), (2, 0)]))
        with pytest.raises(EdgeExistsError):
            engine.apply_batch(Batch([
                ("insert", (0, 3)), ("insert", (0, 1)),
            ]))
        # The landed mutation is reflected; core matches the graph.
        assert engine.core_numbers() == core_numbers(engine.graph)
        assert engine.core_of(3) == 1


class TestBatchResult:
    def test_aggregates(self):
        engine = make_engine("order", random_gnm(20, 40, seed=4))
        edges = [e for e in random_gnm(20, 60, seed=5).edges()
                 if not engine.graph.has_edge(*e)][:10]
        result = engine.apply_batch(Batch.inserts(edges))
        assert result.ops == len(edges) == result.inserts
        assert result.seconds >= 0.0
        assert result.visited == sum(r.visited for r in result.results)
        assert result.total_changed == len(result.changed)
        assert isinstance(result, BatchResult)

    @pytest.mark.parametrize("sequence", ["om", "treap"])
    def test_counters_are_per_batch_deltas(self, sequence):
        engine = make_engine(
            "order", random_gnm(20, 40, seed=4), sequence=sequence
        )
        edges = [e for e in random_gnm(20, 70, seed=5).edges()
                 if not engine.graph.has_edge(*e)]
        first = engine.apply_batch(Batch.inserts(edges[:8]))
        second = engine.apply_batch(Batch.removes(edges[:8]))
        # Counters the backend's machinery never touched are omitted,
        # not zero-filled: the OM backend walks no treap ranks, the
        # treap backend assigns no labels.
        absent = "rank_walk_steps" if sequence == "om" else "relabels"
        for result in (first, second):
            expected = {
                "order_queries", "mcd_recomputations",
                "regions", "region_max_size",
            }
            assert expected <= set(result.counters)
            assert absent not in result.counters
            assert all(v >= 0 for v in result.counters.values())
            # Partitioning is off by default: one region spanning the batch.
            assert result.counters["regions"] == 1
            assert result.counters["region_max_size"] == result.ops
        # Deltas, not cumulative totals: both batches did comparable
        # work, so neither batch's counters can contain the sum.
        totals = engine._batch_counters()
        assert totals["order_queries"] == (
            first.counters["order_queries"] + second.counters["order_queries"]
        )

    def test_counters_on_other_engines(self):
        graph = random_gnm(15, 30, seed=6)
        edges = [e for e in random_gnm(15, 45, seed=7).edges()
                 if not graph.has_edge(*e)][:5]
        naive = make_engine("naive", graph.copy())
        result = naive.apply_batch(Batch.inserts(edges))
        assert result.counters == {"recomputations": 1}
        trav = make_engine("trav-2", graph.copy())
        assert trav.apply_batch(Batch.inserts(edges)).counters == {}

"""The cross-engine conformance contract: one source of engine lists.

Every multi-engine harness in the suite parametrizes from this module
instead of keeping its own ``ENGINES`` / ``BACKENDS`` tuple, so a newly
registered engine name is picked up by *every* harness automatically —
the drift where a new variant silently missed half the batteries is
structurally impossible.  ``tests/test_engine_contract.py`` runs the
conformance battery proper over :func:`contract_engines` (all names)
and asserts registry coverage, so an engine cannot opt out either.

Lists
-----
:func:`contract_engines`
    Every name in :mod:`repro.engine.registry` — what the conformance
    battery itself runs.
:func:`representative_engines`
    One name per *distinct maintenance code path*: policy/backend
    aliases that only change the initial decomposition or re-run the
    base construction (``-small``/``-large``/``-random``/``-om``, bare
    ``trav``, ``trav-<h>`` beyond the representative hop count) are
    folded away, while genuinely different code (treap backend, the
    sharded wrappers, each sub-engine family) stays.  Heavier
    hypothesis harnesses run over this list.
:func:`order_family_engines`
    The order-family subset of the representatives — engines that carry
    the full index (k-order + degrees) and the batch/service contracts
    the service-level suites exercise.
:func:`sharded_engines`
    The sharded wrappers (one per sub-engine family).

``SEQUENCE_BACKENDS`` is re-exported from :mod:`repro.core.korder` so
backend-parametrized tests track the real backend list too.
"""

from __future__ import annotations

import re

from repro.core.korder import SEQUENCE_BACKENDS  # noqa: F401  (re-export)
from repro.engine.registry import available_engines

#: The one ``trav-<h>`` hop count the representative list keeps (the
#: pattern accepts any ``h >= 2``; they share every code path).
TRAV_REPRESENTATIVE = "trav-2"

#: Alias suffixes that do not change the maintenance code: the three
#: Section VI generation policies only alter the *initial*
#: decomposition, and ``-om`` pins what is already the default backend.
_REDUNDANT_SUFFIXES = ("small", "large", "random", "om")

_TRAV_PATTERN = re.compile(r"^trav-(\d+)$")


def contract_engines() -> tuple[str, ...]:
    """Every registered engine name — the full conformance battery."""
    return available_engines()


def representative_engines() -> tuple[str, ...]:
    """One engine name per distinct maintenance code path."""
    names = set(available_engines())
    reps = []
    for name in sorted(names):
        if name == "trav":  # alias of trav-2
            continue
        if _TRAV_PATTERN.match(name):
            if name == TRAV_REPRESENTATIVE:
                reps.append(name)
            continue
        base, _, suffix = name.rpartition("-")
        if base in names and suffix in _REDUNDANT_SUFFIXES:
            continue
        reps.append(name)
    return tuple(reps)


def order_family_engines() -> tuple[str, ...]:
    """Representative engines of the order family (full-index engines)."""
    return tuple(
        name for name in representative_engines()
        if name.startswith("order")
    )


def sharded_engines() -> tuple[str, ...]:
    """The sharded wrapper engines, one per sub-engine family."""
    return tuple(
        name for name in representative_engines()
        if name.startswith("order-sharded")
    )


def mixed_batch_stream(rng, n_batches, batch_size, universe):
    """A base edge list plus valid mixed batches over a growing universe.

    The canonical mixed-workload generator shared by the agreement and
    service-event suites.  Removals always target a currently-present
    edge and inserts a currently-absent one (tracked against the
    evolving edge set), so every batch is valid in op order; later
    batches routinely touch vertices no engine has seen yet.
    """
    from repro.engine.batch import Batch

    base_vertices = max(4, universe // 2)
    present: set = set()
    base = []
    for _ in range(base_vertices * 2):
        a, b = rng.sample(range(base_vertices), 2)
        edge = (min(a, b), max(a, b))
        if edge not in present:
            present.add(edge)
            base.append(edge)
    batches = []
    for index in range(n_batches):
        reachable = base_vertices + (
            (universe - base_vertices) * (index + 1) // n_batches
        )
        ops = []
        pending = set(present)
        for _ in range(batch_size):
            if pending and rng.random() < 0.45:
                edge = rng.choice(sorted(pending))
                ops.append(("remove", edge))
                pending.discard(edge)
            else:
                for _ in range(50):
                    a, b = rng.sample(range(reachable), 2)
                    edge = (min(a, b), max(a, b))
                    if edge not in pending:
                        break
                else:
                    continue
                ops.append(("insert", edge))
                pending.add(edge)
        present = pending
        batches.append(Batch(ops))
    return base, batches

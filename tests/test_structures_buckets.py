"""Unit tests for IndexedSet and DegreeBuckets (the peeling substrate)."""

import random

import pytest

from repro.structures.buckets import DegreeBuckets, IndexedSet


class TestIndexedSet:
    def test_add_and_contains(self):
        s = IndexedSet([1, 2])
        assert 1 in s and 2 in s and 3 not in s
        assert len(s) == 2

    def test_add_duplicate_returns_false(self):
        s = IndexedSet()
        assert s.add(1) is True
        assert s.add(1) is False
        assert len(s) == 1

    def test_discard_middle(self):
        s = IndexedSet([1, 2, 3, 4])
        assert s.discard(2) is True
        assert 2 not in s
        assert set(s) == {1, 3, 4}

    def test_discard_tail(self):
        s = IndexedSet([1, 2, 3])
        s.discard(3)
        assert set(s) == {1, 2}

    def test_discard_absent(self):
        s = IndexedSet([1])
        assert s.discard(9) is False

    def test_pop_any_empties(self):
        s = IndexedSet([1, 2, 3])
        popped = {s.pop_any() for _ in range(3)}
        assert popped == {1, 2, 3}
        with pytest.raises(KeyError):
            s.pop_any()

    def test_choose_uniformity(self):
        s = IndexedSet(range(4))
        rng = random.Random(0)
        counts = {i: 0 for i in range(4)}
        for _ in range(4000):
            counts[s.choose(rng)] += 1
        assert all(800 < c < 1200 for c in counts.values()), counts

    def test_choose_empty_raises(self):
        with pytest.raises(KeyError):
            IndexedSet().choose(random.Random(0))

    def test_pop_random_removes(self):
        s = IndexedSet(range(10))
        rng = random.Random(1)
        seen = {s.pop_random(rng) for _ in range(10)}
        assert seen == set(range(10))
        assert len(s) == 0

    def test_iteration_after_churn(self):
        s = IndexedSet()
        for i in range(20):
            s.add(i)
        for i in range(0, 20, 3):
            s.discard(i)
        assert set(s) == {i for i in range(20) if i % 3 != 0}


class TestDegreeBuckets:
    def test_pop_min_order(self):
        b = DegreeBuckets({"a": 2, "b": 0, "c": 1})
        assert b.pop_min() == ("b", 0)
        assert b.pop_min() == ("c", 1)
        assert b.pop_min() == ("a", 2)
        with pytest.raises(KeyError):
            b.pop_min()

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            DegreeBuckets({"a": -1})

    def test_decrease_moves_bucket(self):
        b = DegreeBuckets({"a": 3, "b": 1})
        assert b.decrease("a") == 2
        assert b.degree_of("a") == 2
        assert b.pop_min() == ("b", 1)
        assert b.pop_min() == ("a", 2)

    def test_decrease_below_zero_rejected(self):
        b = DegreeBuckets({"a": 0})
        with pytest.raises(ValueError):
            b.decrease("a")

    def test_decrease_resets_min_pointer(self):
        b = DegreeBuckets({"a": 5, "b": 5})
        first, _ = b.pop_min()  # advances the pointer to 5
        survivor = "b" if first == "a" else "a"
        b.decrease(survivor)
        b.decrease(survivor)
        assert b.pop_min() == (survivor, 3)

    def test_remove(self):
        b = DegreeBuckets({"a": 2, "b": 3})
        assert b.remove("a") == 2
        assert "a" not in b
        assert len(b) == 1

    def test_min_degree(self):
        b = DegreeBuckets({"a": 4, "b": 2})
        assert b.min_degree() == 2
        b.remove("b")
        assert b.min_degree() == 4
        b.remove("a")
        assert b.min_degree() is None

    def test_pop_max_below(self):
        b = DegreeBuckets({"a": 0, "b": 2, "c": 4})
        assert b.pop_max_below(4) == ("b", 2)
        assert b.pop_max_below(4) == ("a", 0)
        assert b.pop_max_below(4) is None  # only c (degree 4) remains
        assert b.pop_max_below(5) == ("c", 4)

    def test_pop_random_below_respects_bound(self):
        rng = random.Random(2)
        b = DegreeBuckets({i: i % 5 for i in range(50)})
        while True:
            item = b.pop_random_below(3, rng)
            if item is None:
                break
            assert item[1] < 3
        # Everything with degree >= 3 must remain.
        assert len(b) == len([i for i in range(50) if i % 5 >= 3])

    def test_pop_random_below_none_when_empty_range(self):
        b = DegreeBuckets({"a": 7})
        assert b.pop_random_below(3, random.Random(0)) is None

    def test_full_peel_matches_sorted_degrees(self):
        degrees = {i: (i * 7) % 11 for i in range(60)}
        b = DegreeBuckets(degrees)
        peeled = []
        while b:
            peeled.append(b.pop_min()[1])
        assert peeled == sorted(degrees.values())

"""The cross-engine conformance battery.

Auto-discovered over :mod:`repro.engine.registry`: every registered
engine name runs the same contract — batch and per-edge application
agree with a full recompute, snapshots either round-trip or refuse
loudly, counters are omitted (never zero-filled) when their machinery
did not run, and ``check()`` holds after hypothesis-generated mixed
workloads.  A new engine registered anywhere in the package is pulled
into the battery with no test edit; :class:`TestRegistryCoverage` pins
that property itself.

The run-path invariants at the bottom pin the batch-native contract the
order family shares: a run-scheduled batch lands the *same* net core
deltas as the per-edge fallback path, and over a pool of homogeneous
(single-run) batches the coalesced machinery charges less in aggregate
than per-edge application — the amortization claim, as a test.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from engine_contract import (
    SEQUENCE_BACKENDS,
    TRAV_REPRESENTATIVE,
    contract_engines,
    mixed_batch_stream,
    order_family_engines,
    representative_engines,
    sharded_engines,
)
from repro.core.decomposition import core_numbers
from repro.engine import Batch, make_engine
from repro.engine.base import CoreMaintainer
from repro.engine.registry import available_engines, is_engine_name
from repro.errors import ServiceError
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService

ALL_ENGINES = contract_engines()

#: Engines whose batch path is run-scheduled (coalesced insertion runs,
#: joint removal cascades) — the run-path invariant tests below compare
#: them against the per-edge fallback inherited from the base class.
RUN_NATIVE = ("order", "order-treap", "order-simplified", "order-simplified-treap")

#: The chargeable work counter per run-native family: the default engine
#: counts mcd repairs, the simplified engine counts candidate visits.
CHARGEABLE = {
    "order": "mcd_recomputations",
    "order-treap": "mcd_recomputations",
    "order-simplified": "candidate_visits",
    "order-simplified-treap": "candidate_visits",
}


def _apply_per_edge(engine, batch):
    for op in batch:
        if op.kind == "insert":
            engine.insert_edge(*op.edge)
        else:
            engine.remove_edge(*op.edge)


def _random_graph(rng, n, m):
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    return pairs[:m], pairs[m:]


class TestRegistryCoverage:
    """The battery cannot drift from the registry: these tests fail the
    moment an engine name exists that the contract lists do not cover."""

    def test_battery_covers_every_registered_name(self):
        assert set(ALL_ENGINES) == set(available_engines())
        assert len(ALL_ENGINES) >= 20

    def test_every_covered_name_resolves(self):
        for name in ALL_ENGINES:
            assert is_engine_name(name), name

    def test_every_name_has_a_representative(self):
        reps = representative_engines()
        assert set(reps) <= set(ALL_ENGINES)
        assert TRAV_REPRESENTATIVE in reps
        for name in ALL_ENGINES:
            covered = (
                name in reps
                or name.startswith("trav")
                or any(name.startswith(rep + "-") for rep in reps)
            )
            assert covered, f"{name} folds into no representative"

    def test_family_lists_are_consistent(self):
        assert set(sharded_engines()) == {
            "order-sharded", "order-sharded-simplified",
        }
        assert set(sharded_engines()) <= set(order_family_engines())
        assert set(order_family_engines()) <= set(representative_engines())
        assert SEQUENCE_BACKENDS == ("om", "treap")

    def test_run_native_lists_are_registered(self):
        assert set(RUN_NATIVE) <= set(ALL_ENGINES)
        assert set(CHARGEABLE) == set(RUN_NATIVE)


@pytest.mark.parametrize("name", ALL_ENGINES)
class TestConformance:
    """The contract proper, over every registered name."""

    def test_batch_and_per_edge_agree_with_recompute(self, name):
        base, batches = mixed_batch_stream(random.Random(17), 3, 14, 26)
        batched = make_engine(name, DynamicGraph(base), seed=0)
        per_edge = make_engine(name, DynamicGraph(base), seed=0)
        for batch in batches:
            batched.apply_batch(batch)
            _apply_per_edge(per_edge, batch)
            oracle = core_numbers(batched.graph)
            assert batched.core_numbers() == oracle
            assert per_edge.core_numbers() == oracle

    def test_snapshot_round_trips_or_refuses_loudly(self, name, tmp_path):
        base, batches = mixed_batch_stream(random.Random(5), 2, 12, 22)
        service = CoreService.open(base, engine=name, seed=0)
        service.apply(batches[0])
        path = tmp_path / "snap.json"
        try:
            service.save(path)
        except ServiceError as err:
            # Engines without a serializable index must refuse with a
            # message naming the gap — never write a partial snapshot.
            assert "snapshot" in str(err)
            assert not path.exists()
            return
        restored = CoreService.load(path)
        assert restored.cores() == service.cores()
        # The restored session is live, not a frozen readback.
        service.apply(batches[1])
        restored.apply(batches[1])
        assert restored.cores() == service.cores()
        assert restored.cores() == core_numbers(restored.graph)

    def test_counters_omitted_not_zero_filled(self, name):
        base, batches = mixed_batch_stream(random.Random(23), 3, 14, 26)
        engine = make_engine(name, DynamicGraph(base), seed=0)
        for batch in batches:
            result = engine.apply_batch(batch)
            for key, value in result.counters.items():
                assert isinstance(value, int) and value >= 0, (key, value)
            # A counter whose cumulative total never moved means the
            # machinery never ran: it must be absent from the report,
            # so ``counters.get(key, 0)`` and ``counters[key]`` only
            # diverge when 0 would be a lie.
            for key, total in engine._batch_counters().items():
                if total == 0:
                    assert key not in result.counters, key


@pytest.mark.parametrize("name", representative_engines())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_check_holds_after_mixed_workloads(name, seed):
    """Hypothesis: after every mixed batch the engine's own ``check()``
    (where it has one) and a full recompute both validate the index."""
    rng = random.Random(seed)
    base, batches = mixed_batch_stream(rng, 2, 12, 20)
    engine = make_engine(name, DynamicGraph(base), seed=seed)
    for batch in batches:
        engine.apply_batch(batch)
        if hasattr(engine, "check"):
            engine.check()
        assert engine.core_numbers() == core_numbers(engine.graph)


@pytest.mark.parametrize("name", RUN_NATIVE)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_run_path_matches_per_edge_path(name, seed):
    """Any batch: the run-scheduled path and the per-edge fallback land
    identical net ``changed`` deltas and identical final cores."""
    rng = random.Random(seed)
    base, batches = mixed_batch_stream(rng, 2, 14, 24)
    run_engine = make_engine(name, DynamicGraph(base), seed=0)
    edge_engine = make_engine(name, DynamicGraph(base), seed=0)
    for batch in batches:
        run_result = run_engine.apply_batch(batch)
        edge_result = CoreMaintainer.apply_batch(edge_engine, batch)
        assert run_result.changed == edge_result.changed
        assert run_engine.core_numbers() == edge_engine.core_numbers()
    assert run_engine.core_numbers() == core_numbers(run_engine.graph)


@pytest.mark.parametrize("name", RUN_NATIVE)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_run_path_agrees_on_homogeneous_batches(name, data):
    """Homogeneous batches (one insertion run or one removal run) land
    the same net deltas and the same final cores on the run path as on
    per-edge application — the single-run special case of the net-delta
    guarantee, exercised at the sizes the amortization aggregate below
    measures."""
    seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
    rng = random.Random(seed)
    n = data.draw(st.integers(min_value=8, max_value=24), label="n")
    m = rng.randrange(n, n * 3)
    base, spare = _random_graph(rng, n, m)
    if data.draw(st.booleans(), label="removal_run"):
        count = min(len(base), data.draw(st.integers(2, 14), label="k"))
        batch = Batch.removes(rng.sample(base, count))
    else:
        count = min(len(spare), data.draw(st.integers(2, 14), label="k"))
        batch = Batch.inserts(spare[:count])
    run_engine = make_engine(name, DynamicGraph(base), seed=0)
    edge_engine = make_engine(name, DynamicGraph(base), seed=0)
    run_result = run_engine.apply_batch(batch)
    edge_result = CoreMaintainer.apply_batch(edge_engine, batch)
    assert run_result.changed == edge_result.changed
    assert run_engine.core_numbers() == edge_engine.core_numbers()
    assert run_engine.core_numbers() == core_numbers(run_engine.graph)


#: Fixed seed pool for the amortization aggregate: large enough that the
#: ~2x aggregate margin dwarfs the rare per-batch fluctuations, small
#: enough to run in well under a second.
_AMORTIZE_SEEDS = range(40)


@pytest.mark.parametrize("name", RUN_NATIVE)
@pytest.mark.parametrize("run_kind", ["remove", "insert"])
def test_run_path_amortizes_homogeneous_batches(name, run_kind):
    """The amortization claim, pinned as a deterministic aggregate: over
    a fixed pool of homogeneous batches, the coalesced run path visits
    no more vertices in total than per-edge application and charges no
    more in total to the family's chargeable counter.

    Deliberately an *aggregate*, not a per-batch bound: a joint removal
    cascade scans each affected level's candidates against the
    batch-start graph, so on rare small batches (~0.2% of random draws)
    it can visit a handful more vertices than per-edge application,
    whose later removals see an already-shrunk graph.  The aggregate
    margin is ~2x on removal runs (and on the default engine's repair
    counter for insertion runs), so this pins the claim that matters
    without flaking on those fluctuations.  Mixed batches are excluded
    on purpose: interleaved runs change intermediate graph states, so
    traversal sizes legitimately differ in both directions there (the
    net-delta equality above is the mixed-batch guarantee).
    """
    key = CHARGEABLE[name]
    run_visited = edge_visited = run_charged = edge_charged = 0
    for seed in _AMORTIZE_SEEDS:
        rng = random.Random(seed)
        n = rng.randrange(8, 25)
        m = rng.randrange(n, n * 3)
        base, spare = _random_graph(rng, n, m)
        count = rng.randrange(2, 15)
        if run_kind == "remove":
            batch = Batch.removes(rng.sample(base, min(len(base), count)))
        else:
            batch = Batch.inserts(spare[: min(len(spare), count)])
        run_engine = make_engine(name, DynamicGraph(base), seed=0)
        edge_engine = make_engine(name, DynamicGraph(base), seed=0)
        run_result = run_engine.apply_batch(batch)
        edge_result = CoreMaintainer.apply_batch(edge_engine, batch)
        assert run_result.changed == edge_result.changed
        run_visited += run_result.visited
        edge_visited += edge_result.visited
        run_charged += run_result.counters.get(key, 0)
        edge_charged += edge_result.counters.get(key, 0)
    assert run_visited <= edge_visited
    assert run_charged <= edge_charged
    if run_kind == "remove":
        # The removal-run amortization is the headline win: the joint
        # cascade roughly halves both totals on this pool.  Guard the
        # margin loosely so a regression to per-edge-shaped work fails.
        assert run_visited < edge_visited
        assert run_charged < edge_charged

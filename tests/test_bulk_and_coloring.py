"""Tests for bulk insertion, the degeneracy order, and greedy coloring."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications.coloring import (
    chromatic_upper_bound,
    greedy_coloring,
    greedy_coloring_in_order,
    verify_coloring,
)
from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs.undirected import DynamicGraph
from repro.streaming import SlidingWindowCoreMonitor



class TestBulkInsert:
    def test_matches_sequential_engine(self):
        rng = random.Random(1)
        n = 30
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        base, batch = pairs[:60], pairs[60:220]
        bulk = OrderedCoreMaintainer(DynamicGraph(base, vertices=range(n)))
        seq = OrderedCoreMaintainer(DynamicGraph(base, vertices=range(n)))
        bulk_results = bulk.insert_edges_bulk(batch)
        seq_results = [seq.insert_edge(*e) for e in batch]
        assert bulk.core_numbers() == seq.core_numbers()
        assert dict(bulk.mcd) == dict(seq.mcd)
        for a, b in zip(bulk_results, seq_results):
            assert set(a.changed) == set(b.changed)
            assert a.visited == b.visited

    def test_bulk_then_removals_work(self, triangle_graph):
        engine = OrderedCoreMaintainer(triangle_graph, audit=True)
        engine.insert_edges_bulk([(3, 0), (3, 4), (4, 0)])
        engine.remove_edge(3, 0)
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_bulk_registers_new_vertices(self):
        engine = OrderedCoreMaintainer(DynamicGraph(), audit=True)
        engine.insert_edges_bulk([("a", "b"), ("b", "c"), ("c", "a")])
        assert engine.core_of("a") == 2

    def test_bulk_audit_mode(self, small_random_graph):
        edges = list(small_random_graph.edges())
        for e in edges[:20]:
            small_random_graph.remove_edge(*e)
        engine = OrderedCoreMaintainer(small_random_graph, audit=True)
        engine.insert_edges_bulk(edges[:20])
        engine.check()


class TestDegeneracyOrderAndColoring:
    def test_reverse_korder_is_degeneracy_order(self, small_random_graph):
        engine = OrderedCoreMaintainer(small_random_graph)
        order = engine.degeneracy_order()
        position = {v: i for i, v in enumerate(order)}
        d = engine.degeneracy()
        for v in small_random_graph.vertices():
            later = sum(
                1
                for w in small_random_graph.adj[v]
                if position[w] > position[v]
            )
            assert later <= d

    def test_coloring_proper_and_bounded(self, small_random_graph):
        engine = OrderedCoreMaintainer(small_random_graph)
        colors = greedy_coloring(engine)
        assert verify_coloring(small_random_graph, colors)
        assert max(colors.values()) + 1 <= chromatic_upper_bound(engine)

    def test_coloring_stays_valid_under_updates(self, small_random_graph):
        engine = OrderedCoreMaintainer(small_random_graph)
        rng = random.Random(2)
        vertices = sorted(small_random_graph.vertices())
        for _ in range(30):
            a, b = rng.sample(vertices, 2)
            if engine.graph.has_edge(a, b):
                engine.remove_edge(a, b)
            else:
                engine.insert_edge(a, b)
        colors = greedy_coloring(engine)
        assert verify_coloring(engine.graph, colors)
        assert max(colors.values()) < chromatic_upper_bound(engine)

    def test_clique_needs_exactly_size_colors(self):
        k = 5
        clique = [(i, j) for i in range(k) for j in range(i + 1, k)]
        engine = OrderedCoreMaintainer(DynamicGraph(clique))
        colors = greedy_coloring(engine)
        assert len(set(colors.values())) == k

    def test_bipartite_uses_two_colors_or_fewer_than_bound(self):
        bipartite = [(i, 10 + j) for i in range(4) for j in range(4)]
        engine = OrderedCoreMaintainer(DynamicGraph(bipartite))
        colors = greedy_coloring(engine)
        assert verify_coloring(engine.graph, colors)
        # Degeneracy of K_{4,4} is 4; bound certifies <= 5.
        assert max(colors.values()) + 1 <= 5

    def test_incomplete_coloring_rejected(self, triangle_graph):
        assert not verify_coloring(triangle_graph, {0: 0, 1: 1})
        assert not verify_coloring(triangle_graph, {0: 0, 1: 0, 2: 1, 3: 2})

    def test_coloring_in_arbitrary_order_still_proper(self, small_random_graph):
        order = sorted(small_random_graph.vertices())
        colors = greedy_coloring_in_order(small_random_graph, order)
        assert verify_coloring(small_random_graph, colors)


class TestStreamingProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(0, 30))
            .filter(lambda e: e[0] != e[1]),
            max_size=25,
        )
    )
    @settings(
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_window_always_matches_live_edge_set(self, raw_events):
        """At every instant, the monitor's cores equal a fresh
        decomposition of exactly the non-expired edges."""
        events = sorted(raw_events, key=lambda e: e[2])
        window = 7.0
        monitor = SlidingWindowCoreMonitor(window=window)
        expiry: dict = {}
        for u, v, t in events:
            monitor.observe(u, v, float(t))
            edge = (min(u, v), max(u, v))
            expiry[edge] = t + window
            live = sorted(e for e, exp in expiry.items() if exp > t)
            truth = core_numbers(DynamicGraph(live))
            for vertex, k in truth.items():
                assert monitor.core_of(vertex) == k

"""Unit tests for the dynamic undirected graph."""

import pytest

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graphs.undirected import DynamicGraph


class TestConstruction:
    def test_empty(self):
        g = DynamicGraph()
        assert g.n == 0 and g.m == 0
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = DynamicGraph.from_edges([(1, 2), (2, 3)])
        assert g.n == 3 and g.m == 2

    def test_isolated_vertices(self):
        g = DynamicGraph(vertices=[1, 2, 3])
        assert g.n == 3 and g.m == 0
        assert g.degree(2) == 0

    def test_copy_is_independent(self):
        g = DynamicGraph([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.m == 1 and clone.m == 2
        assert not g.has_vertex(3)

    def test_repr_mentions_sizes(self):
        assert "n=2" in repr(DynamicGraph([(1, 2)]))


class TestMembership:
    def test_has_vertex_and_contains(self):
        g = DynamicGraph([(1, 2)])
        assert g.has_vertex(1) and 1 in g
        assert not g.has_vertex(9) and 9 not in g

    def test_has_edge_symmetric(self):
        g = DynamicGraph([(1, 2)])
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert not g.has_edge(1, 3)

    def test_degree(self):
        g = DynamicGraph([(1, 2), (1, 3)])
        assert g.degree(1) == 2 and g.degree(3) == 1

    def test_degree_missing_vertex(self):
        with pytest.raises(VertexNotFoundError):
            DynamicGraph().degree(7)

    def test_neighbors(self):
        g = DynamicGraph([(1, 2), (1, 3)])
        assert set(g.neighbors(1)) == {2, 3}

    def test_neighbors_missing_vertex(self):
        with pytest.raises(VertexNotFoundError):
            list(DynamicGraph().neighbors(7))

    def test_edges_reported_once(self):
        edges = [(1, 2), (2, 3), (3, 1)]
        g = DynamicGraph(edges)
        seen = {tuple(sorted(e)) for e in g.edges()}
        assert seen == {(1, 2), (2, 3), (1, 3)}
        assert len(list(g.edges())) == 3


class TestMutation:
    def test_add_edge_creates_vertices(self):
        g = DynamicGraph()
        g.add_edge("x", "y")
        assert g.n == 2 and g.m == 1

    def test_add_duplicate_edge_raises(self):
        g = DynamicGraph([(1, 2)])
        with pytest.raises(EdgeExistsError):
            g.add_edge(2, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(SelfLoopError):
            DynamicGraph().add_edge(1, 1)

    def test_remove_edge(self):
        g = DynamicGraph([(1, 2), (2, 3)])
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.m == 1
        assert g.has_vertex(1)  # vertices survive edge removal

    def test_remove_missing_edge_raises(self):
        g = DynamicGraph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_add_vertex_idempotent(self):
        g = DynamicGraph()
        assert g.add_vertex(5) is True
        assert g.add_vertex(5) is False

    def test_remove_vertex_returns_edges(self):
        g = DynamicGraph([(1, 2), (1, 3), (2, 3)])
        removed = g.remove_vertex(1)
        assert {tuple(sorted(e)) for e in removed} == {(1, 2), (1, 3)}
        assert g.n == 2 and g.m == 1

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            DynamicGraph().remove_vertex(1)

    def test_edge_count_through_churn(self):
        g = DynamicGraph()
        for i in range(10):
            g.add_edge(i, i + 1)
        for i in range(0, 10, 2):
            g.remove_edge(i, i + 1)
        assert g.m == 5


class TestDerived:
    def test_subgraph_induced(self):
        g = DynamicGraph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.subgraph([1, 2, 3])
        assert sub.n == 3 and sub.m == 2
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_ignores_unknown_vertices(self):
        g = DynamicGraph([(1, 2)])
        sub = g.subgraph([1, 2, 99])
        assert sub.n == 2

    def test_average_and_max_degree(self):
        g = DynamicGraph([(1, 2), (1, 3), (1, 4)])
        assert g.max_degree() == 3
        assert g.average_degree() == pytest.approx(6 / 4)
        assert DynamicGraph().average_degree() == 0.0

    def test_connected_component(self):
        g = DynamicGraph([(1, 2), (2, 3), (10, 11)])
        assert g.connected_component(1) == {1, 2, 3}
        assert g.connected_component(10) == {10, 11}

    def test_connected_component_missing(self):
        with pytest.raises(VertexNotFoundError):
            DynamicGraph().connected_component(1)

    def test_degree_histogram(self):
        g = DynamicGraph([(1, 2), (1, 3)])
        assert g.degree_histogram() == {2: 1, 1: 2}

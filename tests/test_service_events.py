"""Property suite: the CoreEvent stream is exactly the oracle's story.

Random mixed batch streams (including batches that introduce brand-new
vertices) commit through a ``CoreService`` session; after every commit,
the events delivered to a subscriber must match a from-scratch
``core_numbers`` recomputation of the graph before vs after the commit —
per-vertex old/new core agreement, no duplicate events, no missed
events — on both k-order sequence backends and against the naive
engine's own oracle schedule.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from engine_contract import mixed_batch_stream, order_family_engines
from repro.core.decomposition import core_numbers
from repro.engine.batch import Batch
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService

#: Every representative order-family engine (full index + service
#: contracts), straight from the conformance contract: OM-list and
#: treap backends, the sharded wrappers over both sub-engine families,
#: and the Guo–Sekerinski no-mcd variant — all must tell the subscriber
#: the same story.
BACKENDS = order_family_engines()


def expected_story(before, after):
    """The oracle's events for one commit: vertex -> (old, new)."""
    return {
        v: (before.get(v, 0), after.get(v, 0))
        for v in before.keys() | after.keys()
        if before.get(v, 0) != after.get(v, 0)
    }


def replay_and_check(engine_name, seed, n_batches, batch_size, universe):
    rng = random.Random(seed)
    base, batches = mixed_batch_stream(rng, n_batches, batch_size, universe)
    svc = CoreService.open(
        DynamicGraph(base), engine=engine_name, seed=seed
    )
    captured = []
    svc.subscribe(captured.append)
    all_events = []
    for batch in batches:
        before = core_numbers(svc.graph)
        captured.clear()
        receipt = svc.apply(batch)
        after = core_numbers(svc.graph)
        story = expected_story(before, after)

        vertices = [e.vertex for e in captured]
        assert len(set(vertices)) == len(vertices), (
            f"{engine_name}: duplicate events in one commit"
        )
        told = {e.vertex: (e.old_core, e.new_core) for e in captured}
        assert told == story, (
            f"{engine_name}: event stream diverged from the oracle "
            f"(missing {story.keys() - told.keys()}, "
            f"spurious {told.keys() - story.keys()})"
        )
        assert all(e.receipt_id == receipt.receipt_id for e in captured)
        assert tuple(captured) == receipt.events
        all_events.append(list(captured))
    return all_events


@pytest.mark.parametrize("engine_name", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_event_stream_matches_oracle_fixed_streams(engine_name, seed):
    replay_and_check(
        engine_name, seed, n_batches=6, batch_size=25, universe=60
    )


@pytest.mark.parametrize("engine_name", BACKENDS)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_batches=st.integers(min_value=1, max_value=5),
    batch_size=st.integers(min_value=1, max_value=30),
    universe=st.integers(min_value=8, max_value=48),
)
def test_event_stream_matches_oracle_property(
    engine_name, seed, n_batches, batch_size, universe
):
    """Hypothesis: arbitrary valid mixed streams tell the exact story."""
    replay_and_check(engine_name, seed, n_batches, batch_size, universe)


def test_backends_emit_identical_event_sequences():
    """Every order-family engine must agree event-for-event, not just
    core-for-core: events are vertex-sorted per commit, so the schedule
    (backend, sharding, run coalescing) must not leak into the story."""
    streams = [
        replay_and_check(name, 7, n_batches=5, batch_size=20, universe=40)
        for name in BACKENDS
    ]
    for name, stream in zip(BACKENDS[1:], streams[1:]):
        assert stream == streams[0], (
            f"{name} told a different story than {BACKENDS[0]}"
        )


def test_naive_engine_tells_the_same_story():
    """The event layer is engine-agnostic: the oracle engine agrees."""
    order = replay_and_check(
        "order", 11, n_batches=4, batch_size=15, universe=30
    )
    naive = replay_and_check(
        "naive", 11, n_batches=4, batch_size=15, universe=30
    )
    assert order == naive


# ---------------------------------------------------------------------------
# Bounded (pull-mode) subscriptions
# ---------------------------------------------------------------------------


class TestBoundedSubscriptions:
    """max_pending + overflow policies, validated against the oracle."""

    def test_pull_mode_drains_the_full_story(self):
        """A bounded pull subscription with room sees exactly what an
        unbounded callback subscription sees — the event-oracle suite's
        contract carries over."""
        rng = random.Random(3)
        base, batches = mixed_batch_stream(rng, 4, 15, 30)
        svc = CoreService.open(DynamicGraph(base), engine="order", seed=3)
        captured = []
        svc.subscribe(captured.append)
        pulled = svc.subscribe(max_pending=10_000, overflow="drop_oldest")
        for batch in batches:
            captured.clear()
            svc.apply(batch)
            got = pulled.take()
            assert list(got) == captured
            assert pulled.pending == 0
        assert pulled.dropped_events == 0
        svc.close()

    def test_drop_oldest_keeps_newest_and_counts(self):
        svc = CoreService.open(engine="order")
        sub = svc.subscribe(max_pending=3, overflow="drop_oldest")
        for i in range(8):
            svc.insert(100 + i, 200 + i)  # two events per commit
        assert sub.pending == 3
        assert sub.dropped_events == 16 - 3
        newest = sub.take()
        # The survivors are the *latest* events, in delivery order.
        assert [e.receipt_id for e in newest] == [7, 8, 8]
        svc.close()

    def test_error_policy_raises_and_commit_survives(self):
        from repro.errors import SubscriptionOverflowError

        svc = CoreService.open(engine="order")
        sub = svc.subscribe(max_pending=2, overflow="error")
        with pytest.raises(SubscriptionOverflowError):
            for i in range(4):
                svc.insert(i * 2, i * 2 + 1)
        # The overflow surfaced mid-commit, but the commit itself landed
        # (events fan out after apply) and the session keeps working.
        sub.close()
        svc.insert(50, 51)
        assert svc.core(50) == 1
        svc.close()

    def test_block_policy_calls_back_inline(self):
        """block on a callback subscription: the buffer self-drains by
        invoking the callback when full, so nothing is ever lost."""
        seen = []
        svc = CoreService.open(engine="order")
        sub = svc.subscribe(seen.append, max_pending=2, overflow="block")
        for i in range(6):
            svc.insert(300 + i, 400 + i)
        sub.drain()  # the final commits' events are still buffered
        assert len(seen) == 12  # every event delivered, none dropped
        assert sub.dropped_events == 0
        svc.close()

    def test_pull_mode_requires_bound_and_policy(self):
        from repro.errors import ServiceError

        svc = CoreService.open(engine="order")
        with pytest.raises(ServiceError, match="max_pending"):
            svc.subscribe()  # pull-mode needs an explicit bound
        with pytest.raises(ServiceError, match="block"):
            svc.subscribe(max_pending=4)  # and a non-blocking policy
        with pytest.raises(ServiceError, match="overflow"):
            svc.subscribe(max_pending=4, overflow="bogus")
        with pytest.raises(ServiceError, match="max_pending"):
            svc.subscribe(max_pending=0, overflow="drop_oldest")
        svc.close()

    def test_take_limits_and_close_keeps_buffered(self):
        svc = CoreService.open(engine="order")
        sub = svc.subscribe(max_pending=100, overflow="drop_oldest")
        svc.insert(1, 2)
        svc.insert(3, 4)
        first = sub.take(1)
        assert len(first) == 1
        sub.close()
        # Closing stops new deliveries but buffered events stay readable.
        rest = sub.take()
        assert len(rest) == 3
        svc.insert(5, 6)
        assert list(sub.take()) == []
        svc.close()

    def test_min_k_filter_composes_with_bounds(self):
        svc = CoreService.open(engine="order")
        sub = svc.subscribe(min_k=2, max_pending=50, overflow="drop_oldest")
        svc.insert(0, 1)            # cores stay below 2: filtered out
        assert sub.pending == 0
        svc.apply(Batch.inserts([(1, 2), (2, 0)]))  # triangle: crosses 2
        events = sub.take()
        assert {e.vertex for e in events} == {0, 1, 2}
        assert all(e.new_core == 2 for e in events)
        svc.close()

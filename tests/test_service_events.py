"""Property suite: the CoreEvent stream is exactly the oracle's story.

Random mixed batch streams (including batches that introduce brand-new
vertices) commit through a ``CoreService`` session; after every commit,
the events delivered to a subscriber must match a from-scratch
``core_numbers`` recomputation of the graph before vs after the commit —
per-vertex old/new core agreement, no duplicate events, no missed
events — on both k-order sequence backends and against the naive
engine's own oracle schedule.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_numbers
from repro.engine.batch import Batch
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService

#: "order" is the OM-list-backed engine (the default); "order-treap"
#: runs the same algorithm over the treap backend; "order-sharded"
#: commits through per-component sub-engines; "order-simplified" is the
#: Guo–Sekerinski no-mcd variant — all must tell the subscriber the
#: same story.
BACKENDS = ("order", "order-treap", "order-sharded", "order-simplified")


def mixed_batch_stream(rng, n_batches, batch_size, universe):
    """A base edge list plus valid mixed batches over a growing universe.

    Removals always target a currently-present edge and inserts a
    currently-absent one (tracked against the evolving edge set), so
    every batch is valid in op order; later batches routinely touch
    vertices no engine has seen yet.
    """
    base_vertices = max(4, universe // 2)
    present: set = set()
    base = []
    for _ in range(base_vertices * 2):
        a, b = rng.sample(range(base_vertices), 2)
        edge = (min(a, b), max(a, b))
        if edge not in present:
            present.add(edge)
            base.append(edge)
    batches = []
    for index in range(n_batches):
        reachable = base_vertices + (
            (universe - base_vertices) * (index + 1) // n_batches
        )
        ops = []
        pending = set(present)
        for _ in range(batch_size):
            if pending and rng.random() < 0.45:
                edge = rng.choice(sorted(pending))
                ops.append(("remove", edge))
                pending.discard(edge)
            else:
                for _ in range(50):
                    a, b = rng.sample(range(reachable), 2)
                    edge = (min(a, b), max(a, b))
                    if edge not in pending:
                        break
                else:
                    continue
                ops.append(("insert", edge))
                pending.add(edge)
        present = pending
        batches.append(Batch(ops))
    return base, batches


def expected_story(before, after):
    """The oracle's events for one commit: vertex -> (old, new)."""
    return {
        v: (before.get(v, 0), after.get(v, 0))
        for v in before.keys() | after.keys()
        if before.get(v, 0) != after.get(v, 0)
    }


def replay_and_check(engine_name, seed, n_batches, batch_size, universe):
    rng = random.Random(seed)
    base, batches = mixed_batch_stream(rng, n_batches, batch_size, universe)
    svc = CoreService.open(
        DynamicGraph(base), engine=engine_name, seed=seed
    )
    captured = []
    svc.subscribe(captured.append)
    all_events = []
    for batch in batches:
        before = core_numbers(svc.graph)
        captured.clear()
        receipt = svc.apply(batch)
        after = core_numbers(svc.graph)
        story = expected_story(before, after)

        vertices = [e.vertex for e in captured]
        assert len(set(vertices)) == len(vertices), (
            f"{engine_name}: duplicate events in one commit"
        )
        told = {e.vertex: (e.old_core, e.new_core) for e in captured}
        assert told == story, (
            f"{engine_name}: event stream diverged from the oracle "
            f"(missing {story.keys() - told.keys()}, "
            f"spurious {told.keys() - story.keys()})"
        )
        assert all(e.receipt_id == receipt.receipt_id for e in captured)
        assert tuple(captured) == receipt.events
        all_events.append(list(captured))
    return all_events


@pytest.mark.parametrize("engine_name", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_event_stream_matches_oracle_fixed_streams(engine_name, seed):
    replay_and_check(
        engine_name, seed, n_batches=6, batch_size=25, universe=60
    )


@pytest.mark.parametrize("engine_name", BACKENDS)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_batches=st.integers(min_value=1, max_value=5),
    batch_size=st.integers(min_value=1, max_value=30),
    universe=st.integers(min_value=8, max_value=48),
)
def test_event_stream_matches_oracle_property(
    engine_name, seed, n_batches, batch_size, universe
):
    """Hypothesis: arbitrary valid mixed streams tell the exact story."""
    replay_and_check(engine_name, seed, n_batches, batch_size, universe)


def test_backends_emit_identical_event_sequences():
    """om and treap must agree event-for-event, not just core-for-core."""
    streams = [
        replay_and_check(name, 7, n_batches=5, batch_size=20, universe=40)
        for name in BACKENDS
    ]
    assert streams[0] == streams[1]


def test_naive_engine_tells_the_same_story():
    """The event layer is engine-agnostic: the oracle engine agrees."""
    order = replay_and_check(
        "order", 11, n_batches=4, batch_size=15, universe=30
    )
    naive = replay_and_check(
        "naive", 11, n_batches=4, batch_size=15, universe=30
    )
    assert order == naive

"""Write-ahead commit log: framing, scanning, recovery, compaction.

Covers the WAL in three layers: the framed file format itself (torn
tails truncate, mid-file corruption refuses), the ``WriteAheadLog``
object lifecycle (create/attach/append/rotate/close, fsync policies),
and the ``CoreService`` durable-session integration — open with a log,
crash (simulated by dropping the service without ``close``), recover,
verify the recovered cores against a from-scratch decomposition.
"""

import json

import pytest

from repro.core.decomposition import core_numbers
from repro.engine.batch import Batch
from repro.errors import LogCorruptionError, ServiceError
from repro.service import CoreService, WriteAheadLog, log_stat
from repro.service.wal import (
    WAL_VERSION,
    _frame,
    batch_from_ops,
    batch_to_ops,
    scan,
)

TRIANGLE = [(1, 2), (2, 3), (3, 1)]


def make_log(path, **kwargs):
    kwargs.setdefault("engine", "order")
    kwargs.setdefault("seed", 0)
    return WriteAheadLog.create(path, **kwargs)


class TestFraming:
    def test_roundtrip_batch_ops(self):
        batch = Batch().insert(1, 2).remove(3, 4).insert("a", "b")
        ops = batch_to_ops(batch)
        assert ops == [["insert", 1, 2], ["remove", 3, 4],
                       ["insert", "a", "b"]]
        rebuilt = batch_from_ops(json.loads(json.dumps(ops)))
        assert batch_to_ops(rebuilt) == ops

    def test_scan_empty_log_has_header_only(self, tmp_path):
        log = tmp_path / "s.wal"
        make_log(log).close()
        info = scan(log)
        assert info.header["kind"] == "header"
        assert info.header["version"] == WAL_VERSION
        assert info.records == []
        assert info.torn_bytes == 0
        assert info.last_receipt == 0

    def test_scan_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            scan(tmp_path / "nope.wal")

    def test_scan_no_header_raises(self, tmp_path):
        log = tmp_path / "s.wal"
        log.write_bytes(_frame(b'{"kind": "commit", "receipt": 1}'))
        with pytest.raises(LogCorruptionError, match="no valid header"):
            scan(log)

    def test_scan_version_skew_raises(self, tmp_path):
        log = tmp_path / "s.wal"
        payload = json.dumps({"kind": "header", "version": 99}).encode()
        log.write_bytes(_frame(payload))
        with pytest.raises(
            LogCorruptionError,
            match=r"'version' is 99; this build reads version 1",
        ):
            scan(log)

    def test_torn_tail_detected_not_raised(self, tmp_path):
        log = tmp_path / "s.wal"
        wal = make_log(log, fsync="never")
        wal.append(1, Batch().insert(1, 2))
        wal.close()
        clean = log.read_bytes()
        log.write_bytes(clean + b"17 deadbeef {garbage")
        info = scan(log)
        assert len(info.records) == 1
        assert info.torn_bytes == len(b"17 deadbeef {garbage")

    def test_mid_file_corruption_raises(self, tmp_path):
        log = tmp_path / "s.wal"
        wal = make_log(log, fsync="never")
        wal.append(1, Batch().insert(1, 2))
        wal.append(2, Batch().insert(2, 3))
        wal.close()
        lines = log.read_bytes().splitlines(keepends=True)
        # Flip a byte inside the FIRST commit record's payload.
        corrupted = bytearray(lines[1])
        corrupted[-5] ^= 0xFF
        log.write_bytes(lines[0] + bytes(corrupted) + lines[2])
        with pytest.raises(
            LogCorruptionError, match="refusing to drop committed history"
        ):
            scan(log)

    def test_non_increasing_receipts_raise(self, tmp_path):
        log = tmp_path / "s.wal"
        wal = make_log(log, fsync="never")
        wal.append(5, Batch().insert(1, 2))
        wal.close()
        record = json.dumps(
            {"kind": "commit", "receipt": 5, "ops": [["insert", 2, 3]]}
        ).encode()
        with open(log, "ab") as fh:
            fh.write(_frame(record))
        with pytest.raises(
            LogCorruptionError, match="receipt ids not increasing"
        ):
            scan(log)


class TestWriteAheadLog:
    def test_create_refuses_existing_file(self, tmp_path):
        log = tmp_path / "s.wal"
        make_log(log).close()
        with pytest.raises(
            ServiceError, match="already exists; recover from it"
        ):
            make_log(log)

    def test_append_requires_increasing_receipts(self, tmp_path):
        wal = make_log(tmp_path / "s.wal", fsync="never")
        wal.append(1, Batch().insert(1, 2))
        with pytest.raises(ServiceError, match="must increase"):
            wal.append(1, Batch().insert(2, 3))
        wal.close()

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="unknown fsync policy"):
            make_log(tmp_path / "s.wal", fsync="sometimes")

    @pytest.mark.parametrize("fsync", ["always", "interval", "never"])
    def test_fsync_policies_all_produce_readable_logs(self, tmp_path, fsync):
        log = tmp_path / f"{fsync}.wal"
        wal = make_log(log, fsync=fsync, fsync_every=2)
        for receipt in range(1, 6):
            wal.append(receipt, Batch().insert(receipt, receipt + 1))
        wal.close()
        info = scan(log)
        assert [r for r, _ in info.records] == [1, 2, 3, 4, 5]

    def test_attach_truncates_torn_tail_physically(self, tmp_path):
        log = tmp_path / "s.wal"
        wal = make_log(log, fsync="never")
        wal.append(1, Batch().insert(1, 2))
        wal.close()
        clean_size = log.stat().st_size
        with open(log, "ab") as fh:
            fh.write(b"99 0bad0bad torn")
        wal = WriteAheadLog.attach(log, fsync="never")
        assert log.stat().st_size == clean_size
        assert wal.last_receipt == 1
        wal.append(2, Batch().insert(2, 3))
        wal.close()
        assert [r for r, _ in scan(log).records] == [1, 2]

    def test_rotate_truncates_to_header(self, tmp_path):
        log = tmp_path / "s.wal"
        wal = make_log(log, fsync="never")
        wal.append(1, Batch().insert(1, 2))
        wal.append(2, Batch().insert(2, 3))
        wal.rotate(2)
        info = scan(log)
        assert info.records == []
        assert info.header["base_receipt"] == 2
        assert info.last_receipt == 2
        # Appending continues past the rotated base.
        wal.append(3, Batch().insert(3, 4))
        wal.close()
        assert [r for r, _ in scan(log).records] == [3]

    def test_close_idempotent_append_after_close_raises(self, tmp_path):
        wal = make_log(tmp_path / "s.wal")
        wal.close()
        wal.close()
        assert wal.closed
        with pytest.raises(ServiceError, match="is closed"):
            wal.append(1, Batch().insert(1, 2))

    def test_log_stat_fields(self, tmp_path):
        log = tmp_path / "s.wal"
        wal = make_log(log, fsync="never", seed=7)
        wal.append(1, Batch().insert(1, 2))
        wal.close()
        stat = log_stat(log)
        assert stat["engine"] == "order"
        assert stat["seed"] == 7
        assert stat["version"] == WAL_VERSION
        assert stat["records"] == 1
        assert stat["last_receipt"] == 1
        assert stat["torn_bytes"] == 0
        assert stat["bytes"] == log.stat().st_size


class TestDurableSession:
    def commit(self, svc, *edges, remove=False):
        with svc.transaction() as tx:
            for u, v in edges:
                (tx.remove if remove else tx.insert)(u, v)
        return svc.last_receipt

    def test_open_with_log_then_recover(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="never")
        self.commit(svc, (3, 4), (4, 1))
        self.commit(svc, (1, 2), remove=True)
        expected = svc.cores()
        # No close: the process "crashed".
        rec = CoreService.recover(log)
        assert rec.cores() == expected
        assert rec.cores() == core_numbers(rec.engine.graph)
        rec.engine.check()
        assert rec.recovery.replayed == 2
        assert rec.recovery.from_snapshot  # non-empty open snapshots
        rec.close()

    def test_open_empty_graph_recovers_without_snapshot(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(log=log, fsync="never")
        self.commit(svc, (1, 2), (2, 3), (3, 1))
        expected = svc.cores()
        rec = CoreService.recover(log)
        assert rec.cores() == expected
        assert not rec.recovery.from_snapshot
        rec.close()

    def test_open_refuses_existing_log(self, tmp_path):
        log = tmp_path / "s.wal"
        CoreService.open(TRIANGLE, log=log).close()
        with pytest.raises(ServiceError, match="already exists"):
            CoreService.open(TRIANGLE, log=log)

    def test_open_nonsnapshot_engine_nonempty_graph_cleans_up(self, tmp_path):
        log = tmp_path / "s.wal"
        with pytest.raises(ServiceError, match="no snapshot support"):
            CoreService.open(TRIANGLE, engine="naive", log=log)
        assert not log.exists()

    def test_nonsnapshot_engine_empty_graph_is_durable(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(engine="naive", log=log, fsync="never")
        self.commit(svc, (1, 2), (2, 3), (3, 1))
        expected = svc.cores()
        rec = CoreService.recover(log)
        assert rec.engine.name == "naive"
        assert rec.cores() == expected
        rec.close()

    def test_recovery_is_idempotent(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="never")
        self.commit(svc, (3, 4), (4, 1))
        once = CoreService.recover(log)
        cores_once = once.cores()
        once.close()
        twice = CoreService.recover(log)
        assert twice.cores() == cores_once
        twice.close()

    def test_recovered_receipts_continue(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="never")
        first = self.commit(svc, (3, 4))
        rec = CoreService.recover(log)
        second = self.commit(rec, (4, 1))
        assert second.receipt_id == first.receipt_id + 1
        rec.close()
        assert [r for r, _ in scan(log).records] == [
            first.receipt_id, second.receipt_id,
        ]

    def test_compact_truncates_and_recovers(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="never")
        self.commit(svc, (3, 4), (4, 1))
        self.commit(svc, (4, 2))
        snap = svc.compact()
        assert snap.exists()
        assert log_stat(log)["records"] == 0
        expected = svc.cores()
        self.commit(svc, (5, 1))  # post-compaction commit still logs
        expected_after = svc.cores()
        svc.close()
        rec = CoreService.recover(log)
        assert rec.recovery.replayed == 1
        assert rec.recovery.from_snapshot
        assert rec.cores() == expected_after
        assert expected != expected_after  # the tail commit mattered
        rec.close()

    def test_recover_skips_records_snapshot_covers(self, tmp_path):
        # Simulate a crash BETWEEN snapshot rename and log rotation by
        # writing the snapshot through save()-style compaction, then
        # restoring the pre-rotation log bytes.
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="never")
        self.commit(svc, (3, 4))
        self.commit(svc, (4, 1))
        svc._wal.sync()
        pre_rotation = log.read_bytes()
        svc.compact()
        svc.close()
        log.write_bytes(pre_rotation)  # rotation "never happened"
        rec = CoreService.recover(log)
        assert rec.recovery.skipped == 2
        assert rec.recovery.replayed == 0
        assert rec.cores() == core_numbers(rec.engine.graph)
        rec.close()

    def test_compact_without_log_raises(self):
        svc = CoreService.open(TRIANGLE)
        with pytest.raises(ServiceError, match="no commit log to compact"):
            svc.compact()

    def test_missing_snapshot_with_base_receipt_raises(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log)
        svc.close()
        (tmp_path / "s.wal.snapshot").unlink()
        with pytest.raises(LogCorruptionError, match="is missing"):
            CoreService.recover(log)

    def test_unreplayable_record_raises(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(log=log, fsync="never")
        self.commit(svc, (1, 2))
        svc.close()
        record = json.dumps(
            {"kind": "commit", "receipt": 2, "ops": [["remove", 8, 9]]}
        ).encode()
        with open(log, "ab") as fh:
            fh.write(_frame(record))
        with pytest.raises(
            LogCorruptionError, match="does not apply to the recovered state"
        ):
            CoreService.recover(log)

    def test_close_idempotent_and_commit_after_close(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log)
        svc.close()
        svc.close()
        assert svc.closed
        assert svc.cores()  # reads still answer
        with pytest.raises(ServiceError, match="service is closed"):
            with svc.transaction() as tx:
                tx.insert(9, 10)
        with pytest.raises(ServiceError, match="service is closed"):
            svc.compact()

    def test_context_manager_closes(self, tmp_path):
        log = tmp_path / "s.wal"
        with CoreService.open(TRIANGLE, log=log) as svc:
            self.commit(svc, (3, 4))
        assert svc.closed

    def test_string_vertices_roundtrip(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(log=log, fsync="never")
        self.commit(svc, ("a", "b"), ("b", "c"), ("c", "a"))
        expected = svc.cores()
        rec = CoreService.recover(log)
        assert rec.cores() == expected
        rec.close()

    def test_failed_commit_does_not_log(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(TRIANGLE, log=log, fsync="never")
        with pytest.raises(Exception):
            with svc.transaction() as tx:
                tx.remove(1, 9)  # edge does not exist: validation fails
        assert log_stat(log)["records"] == 0
        self.commit(svc, (3, 4))
        assert log_stat(log)["records"] == 1
        svc.close()


class TestTokensAndTailing:
    """PR-8 additions: idempotency tokens in records, incremental tail
    reads, and the cheap header probe the replica's rotation check uses."""

    def test_append_records_token_and_scan_collects_it(self, tmp_path):
        log = tmp_path / "s.wal"
        wal = make_log(log)
        wal.append(1, Batch().insert(1, 2), token="client-a-1")
        wal.append(2, Batch().insert(2, 3))  # tokenless commits stay legal
        wal.append(3, Batch().insert(3, 1), token="client-b-9")
        wal.close()
        info = scan(log)
        assert info.tokens == {1: "client-a-1", 3: "client-b-9"}
        assert [rid for rid, _ in info.records] == [1, 2, 3]

    def test_tokens_survive_recovery_roundtrip(self, tmp_path):
        log = tmp_path / "s.wal"
        svc = CoreService.open(log=log)
        svc.apply(Batch().insert(1, 2), token="tok-1")
        svc.apply(Batch().insert(2, 3), token="tok-2")
        del svc  # crash: no close
        rec = CoreService.recover(log)
        assert scan(log).tokens == {1: "tok-1", 2: "tok-2"}
        # New commits after recovery keep appending tokens.
        rec.apply(Batch().insert(3, 1), token="tok-3")
        assert scan(log).tokens[3] == "tok-3"
        rec.close()

    def test_read_header_matches_scan(self, tmp_path):
        from repro.service.wal import read_header

        log = tmp_path / "s.wal"
        make_log(log, engine="order-treap", seed=7).close()
        assert read_header(log) == scan(log).header

    def test_read_header_rejects_garbage(self, tmp_path):
        from repro.service.wal import read_header

        log = tmp_path / "s.wal"
        log.write_bytes(b"not a frame at all\n")
        with pytest.raises(LogCorruptionError):
            read_header(log)

    def test_tail_reads_only_new_frames(self, tmp_path):
        from repro.service.wal import tail

        log = tmp_path / "s.wal"
        wal = make_log(log)
        wal.append(1, Batch().insert(1, 2))
        chunk = tail(log, 0)
        assert [rid for rid, _ in chunk.records] == [1]
        assert not chunk.rotated
        offset = chunk.offset
        wal.append(2, Batch().insert(2, 3))
        wal.append(3, Batch().insert(3, 1))
        chunk2 = tail(log, offset)
        assert [rid for rid, _ in chunk2.records] == [2, 3]
        assert chunk2.tokens == {}
        # Nothing new: empty chunk, same offset.
        chunk3 = tail(log, chunk2.offset)
        assert chunk3.records == []
        assert chunk3.offset == chunk2.offset
        wal.close()

    def test_tail_tolerates_a_writer_mid_append(self, tmp_path):
        """A partial trailing frame is left for the next poll — the
        replica polls while the primary is mid-write."""
        from repro.service.wal import tail

        log = tmp_path / "s.wal"
        wal = make_log(log)
        wal.append(1, Batch().insert(1, 2))
        base = tail(log, 0).offset
        full = _frame(json.dumps(
            {"kind": "commit", "receipt": 2, "ops": [["insert", 2, 3]]}
        ).encode())
        with open(log, "ab") as fh:
            fh.write(full[: len(full) // 2])
        chunk = tail(log, base)
        assert chunk.records == []  # partial frame: wait, don't guess
        assert chunk.offset == base
        with open(log, "ab") as fh:
            fh.write(full[len(full) // 2:])
        chunk2 = tail(log, base)
        assert [rid for rid, _ in chunk2.records] == [2]
        wal.close()

    def test_tail_detects_rotation_by_shrink(self, tmp_path):
        from repro.service.wal import tail

        log = tmp_path / "s.wal"
        wal = make_log(log)
        for i in range(5):
            wal.append(i + 1, Batch().insert(i, i + 100))
        offset = tail(log, 0).offset
        wal.close()
        # Simulate a compaction rotating the log under the tailer: the
        # file is replaced by a fresh, shorter one.
        log.unlink()
        make_log(log, base_receipt=5).close()
        assert tail(log, offset).rotated

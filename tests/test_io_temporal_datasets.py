"""Unit tests for edge-list IO, temporal streams and the dataset registry."""

import gzip

import pytest

from repro.errors import DatasetError, WorkloadError
from repro.graphs import io as gio
from repro.graphs.datasets import (
    DATASETS,
    dataset_names,
    load_dataset,
)
from repro.graphs.temporal import TemporalEdgeStream


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "g.txt"
        edges = [(1, 2), (2, 3), (3, 4)]
        assert gio.write_edge_list(path, edges) == 3
        assert gio.read_edge_list(path) == edges

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "g.txt"
        gio.write_edge_list(path, [(1, 2)], header="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")
        assert gio.read_edge_list(path) == [(1, 2)]

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# snap comment\n% konect comment\n\n1\t2\n3 4\n")
        assert gio.read_edge_list(path) == [(1, 2), (3, 4)]

    def test_duplicates_and_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n2 1\n3 3\n1 2\n")
        assert gio.read_edge_list(path) == [(1, 2)]

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        gio.write_edge_list(path, [(5, 6)])
        with gzip.open(path, "rt") as handle:
            assert "5\t6" in handle.read()
        assert gio.read_edge_list(path) == [(5, 6)]

    def test_graph_roundtrip(self, tmp_path):
        path = tmp_path / "g.txt"
        from repro.graphs.undirected import DynamicGraph

        g = DynamicGraph([(1, 2), (2, 3)])
        gio.write_graph(path, g)
        g2 = gio.read_graph(path)
        assert g2.m == 2 and g2.has_edge(1, 2)

    def test_temporal_read_sorts_by_time(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1 2 1 300\n3 4 1 100\n5 6 1 200\n")
        stream = gio.read_temporal_edge_list(path)
        assert stream.edges() == [(3, 4), (5, 6), (1, 2)]

    def test_temporal_read_without_time_column(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1 2\n3 4\n")
        stream = gio.read_temporal_edge_list(path)
        assert stream.edges() == [(1, 2), (3, 4)]


class TestTemporalEdgeStream:
    def test_from_edges_uses_positions_as_time(self):
        s = TemporalEdgeStream.from_edges([(1, 2), (3, 4)])
        assert s[0] == (1, 2, 0.0)
        assert s[1] == (3, 4, 1.0)
        assert len(s) == 2

    def test_unsorted_input_gets_sorted(self):
        s = TemporalEdgeStream([(1, 2, 5.0), (3, 4, 1.0)])
        assert s.edges() == [(3, 4), (1, 2)]

    def test_latest(self):
        s = TemporalEdgeStream.from_edges([(1, 2), (3, 4), (5, 6)])
        assert s.latest(2) == [(3, 4), (5, 6)]
        assert s.latest(0) == []

    def test_latest_too_many_raises(self):
        s = TemporalEdgeStream.from_edges([(1, 2)])
        with pytest.raises(WorkloadError):
            s.latest(5)

    def test_split_at(self):
        s = TemporalEdgeStream.from_edges([(1, 2), (3, 4), (5, 6)])
        history, future = s.split_at(1)
        assert history == [(1, 2)]
        assert future == [(3, 4), (5, 6)]

    def test_split_out_of_range(self):
        with pytest.raises(WorkloadError):
            TemporalEdgeStream([]).split_at(1)

    def test_time_range(self):
        assert TemporalEdgeStream([]).time_range() is None
        s = TemporalEdgeStream([(1, 2, 3.0), (4, 5, 9.0)])
        assert s.time_range() == (3.0, 9.0)

    def test_graph_before_keeps_future_vertices(self):
        s = TemporalEdgeStream.from_edges([(1, 2), (3, 4)])
        g = s.graph_before(1)
        assert g.m == 1
        assert g.has_vertex(3) and g.has_vertex(4)

    def test_graph_materializes_all(self):
        s = TemporalEdgeStream.from_edges([(1, 2), (3, 4)])
        assert s.graph().m == 2


class TestTicks:
    def test_identical_timestamps_form_one_tick(self):
        s = TemporalEdgeStream(
            [(1, 2, 0.0), (3, 4, 0.0), (5, 6, 1.0), (7, 8, 1.0), (9, 10, 5.0)]
        )
        assert list(s.ticks()) == [
            (0.0, [(1, 2), (3, 4)]),
            (1.0, [(5, 6), (7, 8)]),
            (5.0, [(9, 10)]),
        ]

    def test_every_buckets_dense_index_timestamps(self):
        s = TemporalEdgeStream.from_edges(
            [(i, i + 1) for i in range(10)]
        )  # timestamps 0..9
        ticks = list(s.ticks(every=4.0))
        assert [t for t, _ in ticks] == [3.0, 7.0, 9.0]
        assert [len(edges) for _, edges in ticks] == [4, 4, 2]
        # Nothing dropped, order preserved.
        assert [e for _, es in ticks for e in es] == s.edges()

    def test_tick_timestamps_strictly_increase(self):
        s = TemporalEdgeStream.from_edges([(i, i + 1) for i in range(30)])
        stamps = [t for t, _ in s.ticks(every=7.0)]
        assert stamps == sorted(set(stamps))

    def test_empty_stream_and_bad_width(self):
        assert list(TemporalEdgeStream([]).ticks()) == []
        with pytest.raises(WorkloadError, match="tick width"):
            list(TemporalEdgeStream([(1, 2, 0.0)]).ticks(every=0))

    def test_ticks_feed_observe_many_one_commit_per_tick(self):
        from repro.streaming import SlidingWindowCoreMonitor

        edges = [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)]
        s = TemporalEdgeStream.from_edges(edges)
        monitor = SlidingWindowCoreMonitor(window=100.0)
        ticks = list(s.ticks(every=3.0))
        for t, group in ticks:
            monitor.observe_many(group, t)
        # One insert commit per tick — same-tick arrivals land together.
        assert monitor.service.last_receipt.receipt_id == len(ticks) == 2
        assert monitor.stats.arrivals == len(edges)
        assert monitor.core_of(3) == 3


class TestDatasets:
    def test_registry_has_the_11_paper_datasets(self):
        assert len(DATASETS) == 11
        assert set(dataset_names()) == {
            "facebook", "youtube", "dblp", "patents", "orkut",
            "livejournal", "gowalla", "ca", "pokec", "berkstan", "google",
        }

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_deterministic(self):
        a = load_dataset("gowalla", scale=0.25, seed=5)
        b = load_dataset("gowalla", scale=0.25, seed=5)
        assert a.edges == b.edges

    def test_scale_grows_graph(self):
        small = load_dataset("google", scale=0.2, seed=1)
        large = load_dataset("google", scale=0.5, seed=1)
        assert large.graph().n > small.graph().n

    def test_temporal_flags(self):
        assert DATASETS["facebook"].temporal
        assert DATASETS["dblp"].temporal
        assert not DATASETS["patents"].temporal

    @pytest.mark.parametrize("name", dataset_names())
    def test_every_dataset_loads_small(self, name):
        data = load_dataset(name, scale=0.12, seed=9)
        graph = data.graph()
        assert graph.n > 10 and graph.m > 10
        paper = data.spec.paper
        # The stand-in's average degree should be in the ballpark of the
        # published one (same order of magnitude; shape is what matters).
        assert graph.average_degree() > paper.avg_deg / 4
        assert graph.average_degree() < paper.avg_deg * 4

    def test_stream_matches_edges(self):
        data = load_dataset("facebook", scale=0.15, seed=2)
        assert data.stream().edges() == data.edges

"""Shared fixtures: the paper's running-example graphs and random graphs.

The plain helper functions (``u``, ``fig3_edges``, ``random_gnm``) live in
``tests/helpers.py`` — import them from there, never from ``conftest``
(see helpers.py for why).
"""

from __future__ import annotations

import pytest

from repro.graphs.undirected import DynamicGraph

from helpers import fig3_edges, random_gnm


@pytest.fixture
def fig3_graph() -> DynamicGraph:
    """The Fig. 3 graph with a short (50-vertex) u-chain for unit tests."""
    return DynamicGraph(fig3_edges(tail=50))


@pytest.fixture
def fig3_graph_full() -> DynamicGraph:
    """The Fig. 3 graph at the paper's full 2001-vertex chain length."""
    return DynamicGraph(fig3_edges(tail=2000))


@pytest.fixture
def triangle_graph() -> DynamicGraph:
    """A triangle plus a pendant vertex — the smallest interesting case."""
    return DynamicGraph([(0, 1), (1, 2), (2, 0), (2, 3)])


@pytest.fixture(params=[0, 1, 2])
def small_random_graph(request) -> DynamicGraph:
    """Three deterministic 30-vertex random graphs."""
    return random_gnm(30, 70 + 15 * request.param, seed=request.param)

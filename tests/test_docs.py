"""Documentation guarantees: doctests can't rot, links can't dangle.

Two halves:

* the public façade's docstring examples (``CoreService``,
  ``Transaction``, ``Batch``, ``make_engine``, the sharded engine) run
  as doctests — the same modules CI also runs under
  ``pytest --doctest-modules``;
* every relative markdown link in README.md, ROADMAP.md and docs/ must
  point at a file that exists, and README must link the documentation
  suite.
"""

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: The public-façade modules whose examples are part of the contract.
FACADE_MODULES = (
    "repro.engine.batch",
    "repro.engine.registry",
    "repro.engine.sharded",
    "repro.service.session",
    "repro.service.transactions",
)

#: Markdown files whose links are checked.
DOCUMENTS = (
    "README.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/ALGORITHMS.md",
    "docs/BENCHMARKS.md",
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


@pytest.mark.parametrize("module_name", FACADE_MODULES)
def test_facade_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module_name}: {result.failed} doctest(s) failed"
    assert result.attempted > 0, f"{module_name} has no doctest examples"


@pytest.mark.parametrize("document", DOCUMENTS)
def test_markdown_links_resolve(document):
    path = REPO / document
    assert path.is_file(), f"{document} is missing"
    dangling = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            dangling.append(target)
    assert not dangling, f"{document} has dangling links: {dangling}"


def test_readme_links_the_docs_suite():
    readme = (REPO / "README.md").read_text()
    for target in (
        "docs/ARCHITECTURE.md",
        "docs/ALGORITHMS.md",
        "docs/BENCHMARKS.md",
    ):
        assert target in readme, f"README does not link {target}"

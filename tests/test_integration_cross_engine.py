"""Integration tests: all engines agree on realistic mixed workloads.

The strongest correctness statement the library can make: on every
generator family, under long interleaved insert/remove streams, the
order-based engine, the traversal engine (several hop counts) and naive
recomputation produce identical core numbers at every step — with the
order engine's internal audits enabled.
"""

import random

import pytest

from repro.core.decomposition import core_numbers
from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs import generators
from repro.graphs.datasets import load_dataset
from repro.graphs.undirected import DynamicGraph
from repro.naive.maintainer import NaiveCoreMaintainer
from repro.traversal.maintainer import TraversalCoreMaintainer

FAMILIES = {
    "social": lambda: generators.powerlaw_cluster(80, 4, 0.5, seed=1),
    "web": lambda: generators.copying_model(80, 4, 0.6, seed=2),
    "road": lambda: generators.road_grid(9, 9, seed=3),
    "collab": lambda: generators.affiliation_collaboration(70, 50, seed=4),
    "citation": lambda: generators.layered_citation(80, 2.5, seed=5),
    "uniform": lambda: generators.erdos_renyi_gnm(70, 160, seed=6),
}


def mixed_stream(edges, steps, seed):
    """Deterministic interleaved insert/remove op stream over an edge pool."""
    rng = random.Random(seed)
    vertices = sorted({u for u, _ in edges} | {v for _, v in edges})
    split = int(len(edges) * 0.7)
    present = set(edges[:split])
    absent = list(edges[split:])
    ops = []
    for _ in range(steps):
        do_insert = rng.random() < 0.55
        if do_insert:
            if absent and rng.random() < 0.7:
                e = absent.pop(rng.randrange(len(absent)))
            else:
                a, b = rng.sample(vertices, 2)
                e = (a, b) if a < b else (b, a)
                if e in present:
                    continue
            ops.append(("insert", e))
            present.add(e)
        elif present:
            e = rng.choice(sorted(present))
            present.discard(e)
            absent.append(e)
            ops.append(("remove", e))
    return edges[:split], ops


@pytest.mark.parametrize("family", sorted(FAMILIES), ids=sorted(FAMILIES))
def test_engines_agree_on_family(family):
    edges = FAMILIES[family]()
    base, ops = mixed_stream(edges, steps=120, seed=42)
    vertices = {u for u, _ in edges} | {v for _, v in edges}

    def graph():
        return DynamicGraph(base, vertices=vertices)

    engines = [
        OrderedCoreMaintainer(graph(), audit=True),  # OM-list backend
        OrderedCoreMaintainer(graph(), audit=True, sequence="treap"),
        TraversalCoreMaintainer(graph(), h=2, audit=True),
        TraversalCoreMaintainer(graph(), h=4),
        NaiveCoreMaintainer(graph()),
    ]
    for step, (kind, e) in enumerate(ops):
        reference = None
        for engine in engines:
            op = engine.insert_edge if kind == "insert" else engine.remove_edge
            op(*e)
            cores = engine.core_numbers()
            if reference is None:
                reference = cores
            else:
                assert cores == reference, (
                    f"{engine.name} diverged at step {step} ({kind} {e})"
                )


def test_engines_agree_on_dataset_workload():
    """End-to-end: replay a real (stand-in) dataset workload."""
    from repro.bench.workloads import make_workload

    data = load_dataset("dblp", scale=0.12, seed=8)
    workload = make_workload(data, 80, seed=8)
    order = OrderedCoreMaintainer(workload.base_graph(), audit=True)
    trav = TraversalCoreMaintainer(workload.base_graph(), h=3)
    for e in workload.update_edges:
        order.insert_edge(*e)
        trav.insert_edge(*e)
        assert order.core_numbers() == trav.core_numbers()
    for e in reversed(workload.update_edges):
        order.remove_edge(*e)
        trav.remove_edge(*e)
    final = core_numbers(workload.base_graph())
    assert order.core_numbers() == final
    assert trav.core_numbers() == final


@pytest.mark.parametrize("policy", ["small", "large", "random"])
def test_all_korder_policies_maintainable(policy):
    """The maintained order stays valid regardless of the generation
    heuristic (the heuristic only affects performance, never safety)."""
    edges = generators.powerlaw_cluster(60, 3, 0.4, seed=9)
    base, ops = mixed_stream(edges, steps=80, seed=9)
    vertices = {u for u, _ in edges} | {v for _, v in edges}
    engine = OrderedCoreMaintainer(
        DynamicGraph(base, vertices=vertices),
        policy=policy,
        seed=1,
        audit=True,
    )
    shadow = DynamicGraph(base, vertices=vertices)
    for kind, e in ops:
        if kind == "insert":
            engine.insert_edge(*e)
            shadow.add_edge(*e)
        else:
            engine.remove_edge(*e)
            shadow.remove_edge(*e)
    assert engine.core_numbers() == core_numbers(shadow)


def test_vertex_churn_through_engines():
    """Vertex insertion/removal simulated as edge sequences (Section I)."""
    base = generators.erdos_renyi_gnm(40, 80, seed=10)
    vertices = {u for u, _ in base} | {v for _, v in base}
    order = OrderedCoreMaintainer(
        DynamicGraph(base, vertices=vertices), audit=True
    )
    naive = NaiveCoreMaintainer(DynamicGraph(base, vertices=vertices))
    rng = random.Random(10)
    alive = sorted(vertices)
    next_vertex = 1000
    for _ in range(25):
        if rng.random() < 0.5 and len(alive) > 5:
            victim = alive.pop(rng.randrange(len(alive)))
            order.remove_vertex(victim)
            naive.remove_vertex(victim)
        else:
            order.add_vertex(next_vertex)
            naive.add_vertex(next_vertex)
            for peer in rng.sample(alive, min(3, len(alive))):
                order.insert_edge(next_vertex, peer)
                naive.insert_edge(next_vertex, peer)
            alive.append(next_vertex)
            next_vertex += 1
        assert order.core_numbers() == naive.core_numbers()


def test_long_stream_order_stability():
    """After thousands of updates the maintained order is still a valid
    k-order (the paper's stability concern, Fig. 12)."""
    edges = generators.barabasi_albert(120, 3, seed=11)
    split = len(edges) // 2
    engine = OrderedCoreMaintainer(
        DynamicGraph(
            edges[:split],
            vertices={u for u, _ in edges} | {v for _, v in edges},
        ),
        seed=0,
    )
    rng = random.Random(11)
    present = list(edges[:split])
    pending = list(edges[split:])
    for _ in range(1200):
        if pending and rng.random() < 0.6:
            e = pending.pop()
            engine.insert_edge(*e)
            present.append(e)
        else:
            e = present.pop(rng.randrange(len(present)))
            engine.remove_edge(*e)
            pending.append(e)
    engine.check()  # full audit: Lemma 5.1 + deg+ + mcd consistency
    assert engine.core_numbers() == core_numbers(engine.graph)

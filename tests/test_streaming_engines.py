"""Sliding-window monitor: engine selection and edge-identity hardening."""

import pytest

from repro.core.decomposition import core_numbers
from repro.naive.maintainer import NaiveCoreMaintainer
from repro.streaming import SlidingWindowCoreMonitor, _norm
from repro.traversal.maintainer import TraversalCoreMaintainer


class TestEngineSelection:
    @pytest.mark.parametrize("engine", ["order", "trav-2", "naive"])
    def test_all_engines_drive_the_window(self, engine):
        monitor = SlidingWindowCoreMonitor(window=3.0, engine=engine)
        stream = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (0, 4)]
        for t, (a, b) in enumerate(stream):
            monitor.observe(a, b, float(t))
        assert monitor.engine.core_numbers() == core_numbers(
            monitor.engine.graph
        )
        monitor.drain()
        assert monitor.live_edges() == 0
        assert monitor.stats.arrivals == len(stream)

    def test_engine_classes(self):
        assert isinstance(
            SlidingWindowCoreMonitor(window=1, engine="naive").engine,
            NaiveCoreMaintainer,
        )
        trav = SlidingWindowCoreMonitor(window=1, engine="trav-3").engine
        assert isinstance(trav, TraversalCoreMaintainer) and trav.h == 3

    def test_engines_agree_over_one_stream(self):
        stream = [(i % 7, (i * 3 + 1) % 7) for i in range(25)]
        stream = [(a, b) for a, b in stream if a != b]
        cores = {}
        for engine in ("order", "naive"):
            monitor = SlidingWindowCoreMonitor(window=6.0, engine=engine)
            for t, (a, b) in enumerate(stream):
                monitor.observe(a, b, float(t))
            cores[engine] = {
                v: monitor.core_of(v) for v in monitor.engine.graph.vertices()
            }
        assert cores["order"] == cores["naive"]

    def test_observe_many_batches_one_tick(self):
        monitor = SlidingWindowCoreMonitor(window=10.0, engine="naive")
        monitor.observe_many([(0, 1), (1, 2), (2, 0), (1, 2)], t=0.0)
        # Three distinct edges inserted with ONE recomputation; the
        # duplicate in the same tick counts as a refresh.
        assert monitor.engine.recomputations == 1
        assert monitor.stats.arrivals == 3
        assert monitor.stats.refreshes == 1
        assert monitor.core_of(0) == 2

    def test_invalid_pair_does_not_corrupt_the_monitor(self):
        from repro.errors import SelfLoopError

        monitor = SlidingWindowCoreMonitor(window=2.0)
        with pytest.raises(SelfLoopError):
            monitor.observe_many([(0, 1), (2, 2)], t=0.0)
        # Nothing was committed: no half-registered edges waiting to
        # expire against an engine that never saw them.
        assert monitor.live_edges() == 0
        monitor.observe(0, 1, 0.5)
        assert monitor.advance_to(10.0) == 1

    def test_expiry_is_batched(self):
        monitor = SlidingWindowCoreMonitor(window=1.0, engine="naive")
        monitor.observe_many([(0, 1), (1, 2), (2, 0)], t=0.0)
        before = monitor.engine.recomputations
        assert monitor.advance_to(5.0) == 3  # all expire in one batch
        assert monitor.engine.recomputations == before + 1
        assert monitor.stats.expiries == 3


class TestNormHardening:
    def test_comparable_vertices_use_their_own_order(self):
        # repr ordering would yield (10, 2) since "10" < "2".
        assert _norm(10, 2) == (2, 10)
        assert _norm(2, 10) == (2, 10)

    def test_mixed_type_vertices_are_stable(self):
        assert _norm(1, "b") == _norm("b", 1)
        assert _norm((1, 2), "x") == _norm("x", (1, 2))

    def test_mixed_type_stream_keeps_one_edge_identity(self):
        monitor = SlidingWindowCoreMonitor(window=10.0)
        monitor.observe(1, "b", 0.0)
        monitor.observe("b", 1, 1.0)  # same tie, other orientation
        assert monitor.live_edges() == 1
        assert monitor.stats.arrivals == 1
        assert monitor.stats.refreshes == 1
        monitor.drain()
        assert monitor.live_edges() == 0

    def test_incomparable_same_type_vertices(self):
        # Sets don't define a total order; the (type, repr) key decides.
        u, v = frozenset({1}), frozenset({2})
        assert _norm(u, v) == _norm(v, u)

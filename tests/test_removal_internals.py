"""White-box tests of OrderRemoval's internals (Algorithm 4)."""

import random

import pytest

from repro.core.decomposition import core_numbers, korder_decomposition
from repro.core.korder import KOrder
from repro.core.maintainer import OrderedCoreMaintainer, compute_mcd
from repro.core.removal import order_remove
from repro.graphs.undirected import DynamicGraph


def build_state(edges, vertices=()):
    graph = DynamicGraph(edges, vertices=vertices)
    decomposition = korder_decomposition(graph, policy="small")
    korder = KOrder.from_decomposition(decomposition, random.Random(0))
    core = dict(decomposition.core)
    mcd = compute_mcd(graph, core)
    return graph, korder, core, mcd


class TestDisposalMechanics:
    def test_disposed_appended_to_tail_of_lower_block(self):
        """V* lands at the *end* of O_{K-1}, after its original members."""
        # Pendant path (core 1) + triangle (core 2); removing a triangle
        # edge demotes the triangle into O_1 behind the path vertices.
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]
        graph, korder, core, mcd = build_state(edges)
        o1_before = list(korder.iter_block(1))
        v_star, k, _ = order_remove(graph, korder, core, mcd, 0, 1)
        assert set(v_star) == {0, 1, 2}
        o1_after = list(korder.iter_block(1))
        assert o1_after[: len(o1_before)] == o1_before
        assert set(o1_after[len(o1_before) :]) == {0, 1, 2}
        korder.audit(graph, core)

    def test_disposal_in_cascade_order(self):
        """Vertices enter O_{K-1} in the order the cascade disposed them,
        which keeps deg+ consistent (Theorem 5.3)."""
        # A 4-cycle: removing one edge demotes all four, one by one.
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        graph, korder, core, mcd = build_state(edges)
        v_star, k, _ = order_remove(graph, korder, core, mcd, 0, 1)
        assert set(v_star) == {0, 1, 2, 3}
        assert k == 2
        assert list(korder.iter_block(1)) == v_star
        korder.audit(graph, core)

    def test_no_cascade_when_slack_exists(self):
        """mcd slack absorbs the removal: V* empty, order repaired."""
        # Square plus a diagonal: dropping the diagonal leaves a plain
        # 4-cycle, still a 2-core — no core number changes.
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        graph, korder, core, mcd = build_state(edges)
        assert all(c == 2 for c in core.values())
        v_star, k, visited = order_remove(graph, korder, core, mcd, 0, 2)
        assert v_star == []
        assert all(c == 2 for c in core.values())
        korder.audit(graph, core)

    def test_removal_to_empty_graph(self):
        graph, korder, core, mcd = build_state([(0, 1)])
        v_star, k, _ = order_remove(graph, korder, core, mcd, 0, 1)
        assert set(v_star) == {0, 1}
        assert core == {0: 0, 1: 0}
        assert list(korder.iter_block(0)) == v_star
        korder.audit(graph, core)

    def test_cross_level_removal_only_touches_lower(self):
        """Removing an edge between O_1 and O_3 never enters O_3."""
        k4 = [(10, 11), (10, 12), (10, 13), (11, 12), (11, 13), (12, 13)]
        graph, korder, core, mcd = build_state(k4 + [(10, 0), (0, 1)])
        o3_before = list(korder.iter_block(3))
        v_star, k, _ = order_remove(graph, korder, core, mcd, 10, 0)
        assert k == 1
        assert list(korder.iter_block(3)) == o3_before
        assert core[10] == 3
        korder.audit(graph, core)


class TestDegPlusRepair:
    def test_removed_edge_decrements_earlier_endpoint(self):
        """The departing edge leaves deg+ of whichever endpoint came
        first, even when no core changes."""
        k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        extra = [(0, 4), (1, 4), (2, 4), (3, 4)]
        graph, korder, core, mcd = build_state(k4 + extra)
        total_before = sum(korder.deg_plus.values())
        order_remove(graph, korder, core, mcd, 2, 3)
        # Exactly one deg+ unit disappears with the edge.
        assert sum(korder.deg_plus.values()) == total_before - 1
        korder.audit(graph, core)

    @pytest.mark.parametrize("seed", range(3))
    def test_repeated_removals_keep_full_consistency(self, seed):
        rng = random.Random(seed)
        n = 20
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        base = pairs[:80]
        graph, korder, core, mcd = build_state(base, vertices=range(n))
        victims = base[:]
        rng.shuffle(victims)
        for e in victims[:50]:
            order_remove(graph, korder, core, mcd, *e)
            # The algorithm leaves the final mcd refresh to the
            # maintainer; emulate it so the next call sees clean bounds.
            mcd.clear()
            mcd.update(compute_mcd(graph, core))
            korder.audit(graph, core)
            assert core == core_numbers(graph)


class TestMaintainerRemovalBehaviour:
    def test_invalid_removal_leaves_index_untouched(self):
        """A removal of an absent edge must fail before any index
        mutation: deg+ used to be decremented ahead of the graph's
        validation, leaving the k-order corrupted."""
        from repro.errors import EdgeNotFoundError

        engine = OrderedCoreMaintainer(
            DynamicGraph([(1, 2), (2, 3), (3, 4), (1, 3)])
        )
        with pytest.raises(EdgeNotFoundError):
            engine.remove_edge(1, 4)  # both vertices exist, edge absent
        engine.check()
        assert engine.core_numbers() == core_numbers(engine.graph)

    def test_visited_counts_touched_bounds(self, triangle_graph):
        engine = OrderedCoreMaintainer(triangle_graph)
        result = engine.remove_edge(0, 1)
        # The cascade materialized a bound for at least the two endpoints.
        assert result.visited >= 2

    def test_interleaving_heavy_churn(self):
        """Insert/remove the same dense pocket repeatedly; the index must
        not drift (this hammers block creation/deletion)."""
        engine = OrderedCoreMaintainer(DynamicGraph([(0, 1)]), audit=True)
        clique = [(a, b) for a in range(5) for b in range(a + 1, 5)]
        for _ in range(6):
            for e in clique:
                if not engine.graph.has_edge(*e):
                    engine.insert_edge(*e)
            assert engine.degeneracy() == 4
            for e in clique:
                if engine.graph.has_edge(*e) and e != (0, 1):
                    engine.remove_edge(*e)
            assert engine.degeneracy() == 1

"""Stateful property testing of the durability path.

Hypothesis drives a durable :class:`CoreService` session like a chaos
monkey: random commits, crashes injected at random registered fault
points (abandoning the live session exactly as a dead process would),
and recoveries — interleaved in any order it can dream up.  A naive
shadow graph tracks what the write-ahead contract says must be durable:
a commit that returned a receipt is in the shadow; a commit killed
before its log append never happened; a commit killed after the append
is REPLAYED into the shadow at the next recovery (write-ahead means the
log, not the engine, is the source of truth).  After every recovery the
recovered cores must equal a from-scratch decomposition of the shadow.

Commits come in two shapes: single-op transactions and multi-edge
transactions whose removals coalesce into one batch-native removal run
(the joint-cascade path), so WAL replay of run-scheduled batches is
crash-tested too.  Parametrized over both order-family engines and both
sequence backends, so the replay path is proven engine- and
backend-independent.
"""

import tempfile

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.decomposition import core_numbers
from repro.graphs.undirected import DynamicGraph
from repro.service import CoreService
from repro.testing import FaultPlan, InjectedFault

VERTICES = st.integers(0, 7)

#: Crash points on the single-engine durable commit path, tagged with
#: whether a commit killed there survives recovery (see test_faults).
CRASH_POINTS = [
    ("service.before_commit", False),
    ("wal.before_append", False),
    ("wal.mid_append", False),
    ("wal.after_append", True),
    ("wal.before_fsync", True),
    ("engine.mid_batch", True),
]


class DurableSessionMachine(RuleBasedStateMachine):
    """Random walk over commit / crash / recover / compact."""

    engine = "order"
    opts: dict = {}

    @initialize()
    def setup(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.log = f"{self.tmp.name}/session.wal"
        self.svc = CoreService.open(
            log=self.log, fsync="always", engine=self.engine, **self.opts
        )
        self.shadow = DynamicGraph()
        # Ops logged (hence durable) but possibly not yet in `shadow`
        # because the crash killed the session after the append.
        self.pending = None

    def teardown(self):
        if self.svc is not None:
            self.svc.close()
        self.tmp.cleanup()

    def _op(self, u, v):
        """One valid random op against the shadow, or None."""
        if u == v:
            return None
        if self.shadow.has_edge(u, v):
            return ("remove", u, v)
        return ("insert", u, v)

    def _run_ops(self, pairs):
        """A multi-edge op list: all removals first, then all inserts,
        each valid in order — so the commit lands as one multi-edge
        removal *run* (the joint-cascade path) plus one insertion run,
        exactly the batch-native machinery WAL replay must reproduce."""
        removes, inserts, seen = [], [], set()
        for u, v in pairs:
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in seen:
                continue
            seen.add(edge)
            if self.shadow.has_edge(u, v):
                removes.append(("remove", u, v))
            else:
                inserts.append(("insert", u, v))
        return removes + inserts

    def _commit_ops(self, ops):
        with self.svc.transaction() as tx:
            for kind, u, v in ops:
                (tx.insert if kind == "insert" else tx.remove)(u, v)

    def _commit_op(self, op):
        self._commit_ops([op])

    def _apply_to_shadow(self, op):
        kind, u, v = op
        if kind == "insert":
            self.shadow.add_edge(u, v)
        else:
            self.shadow.remove_edge(u, v)

    @precondition(lambda self: self.svc is not None)
    @rule(u=VERTICES, v=VERTICES)
    def commit(self, u, v):
        op = self._op(u, v)
        if op is None:
            return
        self._commit_op(op)
        self._apply_to_shadow(op)

    @precondition(lambda self: self.svc is not None)
    @rule(
        u=VERTICES,
        v=VERTICES,
        crash=st.sampled_from(CRASH_POINTS),
    )
    def crash_mid_commit(self, u, v, crash):
        point, durable = crash
        op = self._op(u, v)
        if op is None:
            return
        with FaultPlan(seed=1).crash(point) as plan:
            try:
                self._commit_op(op)
            except InjectedFault:
                pass
        if not plan.fired:
            # Point not on this engine's path for this op: the commit
            # simply succeeded.
            self._apply_to_shadow(op)
            return
        # The "process" died: abandon the session without close().
        self.svc = None
        self.pending = [op] if durable else None

    @precondition(lambda self: self.svc is not None)
    @rule(pairs=st.lists(st.tuples(VERTICES, VERTICES), min_size=2, max_size=8))
    def commit_removal_run(self, pairs):
        """A multi-edge transaction whose removals coalesce into one
        batch-native run (one joint cascade per affected level)."""
        ops = self._run_ops(pairs)
        if not ops:
            return
        self._commit_ops(ops)
        for op in ops:
            self._apply_to_shadow(op)

    @precondition(lambda self: self.svc is not None)
    @rule(
        pairs=st.lists(st.tuples(VERTICES, VERTICES), min_size=2, max_size=8),
        crash=st.sampled_from(CRASH_POINTS),
    )
    def crash_mid_removal_run(self, pairs, crash):
        """Crash a multi-edge removal-run commit: if the WAL append
        landed, recovery must replay the whole run through the
        batch-native path and agree with the shadow."""
        point, durable = crash
        ops = self._run_ops(pairs)
        if not ops:
            return
        with FaultPlan(seed=1).crash(point) as plan:
            try:
                self._commit_ops(ops)
            except InjectedFault:
                pass
        if not plan.fired:
            for op in ops:
                self._apply_to_shadow(op)
            return
        self.svc = None
        self.pending = ops if durable else None

    @precondition(lambda self: self.svc is None)
    @rule()
    def recover(self):
        self.svc = CoreService.recover(self.log, fsync="always")
        if self.pending is not None:
            for op in self.pending:
                self._apply_to_shadow(op)
            self.pending = None
        self.check_agreement()

    @precondition(lambda self: self.svc is not None)
    @rule()
    def compact(self):
        self.svc.compact()
        self.check_agreement()

    @precondition(lambda self: self.svc is not None)
    @rule()
    def check_agreement(self):
        assert self.svc.cores() == core_numbers(self.shadow)
        self.svc.engine.check()


class OrderOmMachine(DurableSessionMachine):
    engine = "order"
    opts = {"sequence": "om"}


class OrderTreapMachine(DurableSessionMachine):
    engine = "order"
    opts = {"sequence": "treap"}


class SimplifiedOmMachine(DurableSessionMachine):
    engine = "order-simplified"
    opts = {"sequence": "om"}


class SimplifiedTreapMachine(DurableSessionMachine):
    engine = "order-simplified"
    opts = {"sequence": "treap"}


_SETTINGS = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)

TestOrderOm = OrderOmMachine.TestCase
TestOrderOm.settings = _SETTINGS
TestOrderTreap = OrderTreapMachine.TestCase
TestOrderTreap.settings = _SETTINGS
TestSimplifiedOm = SimplifiedOmMachine.TestCase
TestSimplifiedOm.settings = _SETTINGS
TestSimplifiedTreap = SimplifiedTreapMachine.TestCase
TestSimplifiedTreap.settings = _SETTINGS

"""Unit tests for the recompute-from-scratch oracle engine."""

from repro.naive.maintainer import NaiveCoreMaintainer
from repro.graphs.undirected import DynamicGraph


class TestNaive:
    def test_insert(self, triangle_graph):
        m = NaiveCoreMaintainer(triangle_graph)
        result = m.insert_edge(3, 0)
        assert result.changed == (3,)
        assert result.k == 1
        assert m.core_of(3) == 2

    def test_remove(self, triangle_graph):
        m = NaiveCoreMaintainer(triangle_graph)
        result = m.remove_edge(0, 1)
        assert set(result.changed) == {0, 1, 2}

    def test_insert_creates_vertices(self):
        m = NaiveCoreMaintainer(DynamicGraph())
        m.insert_edge("a", "b")
        assert m.core_of("a") == 1

    def test_visited_is_whole_graph(self, triangle_graph):
        m = NaiveCoreMaintainer(triangle_graph)
        result = m.insert_edge(3, 0)
        assert result.visited == triangle_graph.n

    def test_add_vertex(self, triangle_graph):
        m = NaiveCoreMaintainer(triangle_graph)
        assert m.add_vertex(9) is True
        assert m.add_vertex(9) is False
        assert m.core_of(9) == 0

    def test_remove_vertex(self, triangle_graph):
        m = NaiveCoreMaintainer(triangle_graph)
        m.remove_vertex(2)
        assert 2 not in m.core_numbers()
        assert m.core_of(0) == 1

    def test_shared_interface_helpers(self, triangle_graph):
        m = NaiveCoreMaintainer(triangle_graph)
        assert m.k_core(2) == {0, 1, 2}
        assert m.k_shell(1) == {3}
        assert m.degeneracy() == 2
        assert m.core_numbers() == {0: 2, 1: 2, 2: 2, 3: 1}

    def test_bulk_helpers(self):
        m = NaiveCoreMaintainer(DynamicGraph())
        m.insert_edges([(0, 1), (1, 2), (2, 0)])
        assert m.degeneracy() == 2
        m.remove_edges([(0, 1)])
        assert m.degeneracy() == 1

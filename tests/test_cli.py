"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--datasets", "nope"])

    def test_parses_hops(self):
        args = build_parser().parse_args(["table2", "--hops", "2,4"])
        assert args.hops == (2, 4)


class TestCommands:
    def test_table1(self, capsys):
        code, out = run_cli(
            capsys, "table1", "--datasets", "ca", "--scale", "0.15"
        )
        assert code == 0
        assert "ca" in out and "paper" in out

    def test_list_alias(self, capsys):
        code, out = run_cli(
            capsys, "list", "--datasets", "ca,google", "--scale", "0.12"
        )
        assert code == 0
        assert "google" in out

    def test_fig2(self, capsys):
        code, out = run_cli(
            capsys, "fig2", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15",
        )
        assert code == 0
        assert "|V*|" in out

    def test_fig9(self, capsys):
        code, out = run_cli(
            capsys, "fig9", "--datasets", "ca", "--updates", "15",
            "--scale", "0.15",
        )
        assert code == 0
        assert "small" in out.lower()

    def test_fig10(self, capsys):
        code, out = run_cli(
            capsys, "fig10", "--datasets", "ca", "--updates", "15",
            "--scale", "0.15",
        )
        assert code == 0
        assert "core CDF" in out and "K CDF" in out

    def test_table2_with_hops(self, capsys):
        code, out = run_cli(
            capsys, "table2", "--datasets", "ca", "--updates", "15",
            "--hops", "2", "--scale", "0.15",
        )
        assert code == 0
        assert "speedup" in out

    def test_fig12_group_options(self, capsys):
        code, out = run_cli(
            capsys, "fig12", "--datasets", "ca", "--groups", "2",
            "--group-size", "5", "--scale", "0.15",
        )
        assert code == 0
        assert "group" in out

    def test_ablation(self, capsys):
        code, out = run_cli(
            capsys, "ablation", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15",
        )
        assert code == 0
        assert "scan steps" in out

    def test_validate(self, capsys):
        code, out = run_cli(
            capsys, "validate", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15",
        )
        assert code == 0
        assert "ca: ok" in out

    def test_validate_with_engine_flag(self, capsys):
        code, out = run_cli(
            capsys, "validate", "--datasets", "ca", "--updates", "10",
            "--scale", "0.15", "--engine", "trav-2",
        )
        assert code == 0
        assert "ca: ok" in out

    def test_batch(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--datasets", "ca", "--updates", "30",
            "--scale", "0.15", "--batch-size", "10", "--mix", "0.3",
        )
        assert code == 0
        assert "speedup" in out and "naive" in out and "mcd/batch" in out

    def test_batch_with_extra_engine(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15", "--engine", "order-large",
        )
        assert code == 0
        assert "order-large" in out

    def test_batch_with_region_scheduler_flags(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15", "--batch-size", "10",
            "--partition", "--parallel", "2",
        )
        assert code == 0
        assert "speedup" in out and "order" in out


class TestDurabilityCommands:
    def make_log(self, tmp_path):
        from repro.service import CoreService

        log = tmp_path / "session.wal"
        svc = CoreService.open([(1, 2), (2, 3), (3, 1)], log=log)
        with svc.transaction() as tx:
            tx.insert(3, 4)
        svc.close()
        return log

    def test_log_stat(self, capsys, tmp_path):
        log = self.make_log(tmp_path)
        code, out = run_cli(capsys, "log-stat", "--log", str(log))
        assert code == 0
        assert "engine: order" in out
        assert "records: 1" in out
        assert "torn_bytes: 0" in out

    def test_recover(self, capsys, tmp_path):
        log = self.make_log(tmp_path)
        code, out = run_cli(capsys, "recover", "--log", str(log))
        assert code == 0
        assert "replayed: 1" in out
        assert "4 vertices, 4 edges" in out

    def test_recover_compact(self, capsys, tmp_path):
        log = self.make_log(tmp_path)
        code, out = run_cli(
            capsys, "recover", "--log", str(log), "--compact"
        )
        assert code == 0
        assert "compacted: snapshot at" in out
        code, out = run_cli(capsys, "log-stat", "--log", str(log))
        assert "records: 0" in out

    def test_log_flag_required(self, capsys, tmp_path):
        for cmd in ("recover", "log-stat"):
            code = main([cmd])
            err = capsys.readouterr().err
            assert code == 2
            assert "--log PATH is required" in err

    def test_missing_log_file_fails_cleanly(self, capsys, tmp_path):
        for cmd in ("recover", "log-stat"):
            code = main([cmd, "--log", str(tmp_path / "nope.wal")])
            err = capsys.readouterr().err
            assert code == 1
            assert "nope.wal" in err

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.engine import DEFAULT_ENGINE


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--datasets", "nope"])

    def test_parses_hops(self):
        args = build_parser().parse_args(["table2", "--hops", "2,4"])
        assert args.hops == (2, 4)


class TestCommands:
    def test_table1(self, capsys):
        code, out = run_cli(
            capsys, "table1", "--datasets", "ca", "--scale", "0.15"
        )
        assert code == 0
        assert "ca" in out and "paper" in out

    def test_list_alias(self, capsys):
        code, out = run_cli(
            capsys, "list", "--datasets", "ca,google", "--scale", "0.12"
        )
        assert code == 0
        assert "google" in out

    def test_fig2(self, capsys):
        code, out = run_cli(
            capsys, "fig2", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15",
        )
        assert code == 0
        assert "|V*|" in out

    def test_fig9(self, capsys):
        code, out = run_cli(
            capsys, "fig9", "--datasets", "ca", "--updates", "15",
            "--scale", "0.15",
        )
        assert code == 0
        assert "small" in out.lower()

    def test_fig10(self, capsys):
        code, out = run_cli(
            capsys, "fig10", "--datasets", "ca", "--updates", "15",
            "--scale", "0.15",
        )
        assert code == 0
        assert "core CDF" in out and "K CDF" in out

    def test_table2_with_hops(self, capsys):
        code, out = run_cli(
            capsys, "table2", "--datasets", "ca", "--updates", "15",
            "--hops", "2", "--scale", "0.15",
        )
        assert code == 0
        assert "speedup" in out

    def test_fig12_group_options(self, capsys):
        code, out = run_cli(
            capsys, "fig12", "--datasets", "ca", "--groups", "2",
            "--group-size", "5", "--scale", "0.15",
        )
        assert code == 0
        assert "group" in out

    def test_ablation(self, capsys):
        code, out = run_cli(
            capsys, "ablation", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15",
        )
        assert code == 0
        assert "scan steps" in out

    def test_validate(self, capsys):
        code, out = run_cli(
            capsys, "validate", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15",
        )
        assert code == 0
        assert "ca: ok" in out

    def test_validate_with_engine_flag(self, capsys):
        code, out = run_cli(
            capsys, "validate", "--datasets", "ca", "--updates", "10",
            "--scale", "0.15", "--engine", "trav-2",
        )
        assert code == 0
        assert "ca: ok" in out

    def test_batch(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--datasets", "ca", "--updates", "30",
            "--scale", "0.15", "--batch-size", "10", "--mix", "0.3",
        )
        assert code == 0
        assert "speedup" in out and "naive" in out and "mcd/batch" in out

    def test_batch_with_extra_engine(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15", "--engine", "order-large",
        )
        assert code == 0
        assert "order-large" in out

    def test_batch_with_region_scheduler_flags(self, capsys):
        code, out = run_cli(
            capsys, "batch", "--datasets", "ca", "--updates", "20",
            "--scale", "0.15", "--batch-size", "10",
            "--partition", "--parallel", "2",
        )
        assert code == 0
        assert "speedup" in out and "order" in out


class TestDurabilityCommands:
    def make_log(self, tmp_path):
        from repro.service import CoreService

        log = tmp_path / "session.wal"
        svc = CoreService.open([(1, 2), (2, 3), (3, 1)], log=log)
        with svc.transaction() as tx:
            tx.insert(3, 4)
        svc.close()
        return log

    def test_log_stat(self, capsys, tmp_path):
        log = self.make_log(tmp_path)
        code, out = run_cli(capsys, "log-stat", "--log", str(log))
        assert code == 0
        assert "engine: order" in out
        assert "records: 1" in out
        assert "torn_bytes: 0" in out

    def test_recover(self, capsys, tmp_path):
        log = self.make_log(tmp_path)
        code, out = run_cli(capsys, "recover", "--log", str(log))
        assert code == 0
        assert "replayed: 1" in out
        assert "4 vertices, 4 edges" in out

    def test_recover_compact(self, capsys, tmp_path):
        log = self.make_log(tmp_path)
        code, out = run_cli(
            capsys, "recover", "--log", str(log), "--compact"
        )
        assert code == 0
        assert "compacted: snapshot at" in out
        code, out = run_cli(capsys, "log-stat", "--log", str(log))
        assert "records: 0" in out

    def test_log_flag_required(self, capsys, tmp_path):
        for cmd in ("recover", "log-stat"):
            code = main([cmd])
            err = capsys.readouterr().err
            assert code == 2
            assert "--log PATH is required" in err

    def test_missing_log_file_fails_cleanly(self, capsys, tmp_path):
        for cmd in ("recover", "log-stat"):
            code = main([cmd, "--log", str(tmp_path / "nope.wal")])
            err = capsys.readouterr().err
            assert code == 1
            assert "nope.wal" in err


class TestHardenedDurabilityCommands:
    """PR-8 hardening: --json payloads and scriptable exit codes
    (0 clean, 3 torn tail, 4 corruption, 1 other errors, 2 usage)."""

    def make_log(self, tmp_path):
        from repro.service import CoreService

        log = tmp_path / "session.wal"
        svc = CoreService.open([(1, 2), (2, 3), (3, 1)], log=log)
        with svc.transaction() as tx:
            tx.insert(3, 4)
        svc.close()
        return log

    def tear(self, log):
        with open(log, "ab") as fh:
            fh.write(b"37 deadbeef {\"torn")

    def corrupt(self, log):
        data = log.read_bytes()
        mid = len(data) // 2
        log.write_bytes(data[:mid] + b"XXXX" + data[mid + 4:])

    def test_log_stat_json_clean(self, capsys, tmp_path):
        import json as _json

        log = self.make_log(tmp_path)
        code, out = run_cli(capsys, "log-stat", "--log", str(log), "--json")
        assert code == 0
        payload = _json.loads(out)
        assert payload["engine"] == DEFAULT_ENGINE
        assert payload["records"] == 1
        assert payload["torn_bytes"] == 0

    def test_recover_json_clean(self, capsys, tmp_path):
        import json as _json

        log = self.make_log(tmp_path)
        code, out = run_cli(capsys, "recover", "--log", str(log), "--json")
        assert code == 0
        payload = _json.loads(out)
        assert payload["replayed"] == 1
        assert payload["vertices"] == 4
        assert payload["edges"] == 4
        assert payload["torn_bytes"] == 0

    def test_torn_tail_exits_3(self, capsys, tmp_path):
        import json as _json

        log = self.make_log(tmp_path)
        self.tear(log)
        code, out = run_cli(capsys, "log-stat", "--log", str(log), "--json")
        assert code == 3
        assert _json.loads(out)["torn_bytes"] > 0
        # Recovery repairs the tail but still reports it via the code.
        code, out = run_cli(capsys, "recover", "--log", str(log), "--json")
        assert code == 3
        assert _json.loads(out)["torn_bytes"] > 0
        # The repair truncated the tail: a second pass is clean.
        code, out = run_cli(capsys, "log-stat", "--log", str(log))
        assert code == 0

    def test_corruption_exits_4(self, capsys, tmp_path):
        import json as _json

        log = self.make_log(tmp_path)
        self.corrupt(log)
        for cmd in ("log-stat", "recover"):
            code = main([cmd, "--log", str(log), "--json"])
            captured = capsys.readouterr()
            assert code == 4
            assert _json.loads(captured.out)["corrupt"] is True
            assert "corrupt" in captured.err

    def test_recover_json_compact(self, capsys, tmp_path):
        import json as _json

        log = self.make_log(tmp_path)
        code, out = run_cli(
            capsys, "recover", "--log", str(log), "--json", "--compact"
        )
        assert code == 0
        assert _json.loads(out)["snapshot"].endswith(".snapshot")


class TestServeCommand:
    def test_serve_binds_and_exits_cleanly(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "serve", "--port", "0", "--max-seconds", "0.2",
            "--log-dir", str(tmp_path),
        )
        assert code == 0
        assert "listening on 127.0.0.1:" in out
        assert f"log_dir={tmp_path}" in out

    def test_serve_memory_only_warns(self, capsys):
        code, out = run_cli(
            capsys, "serve", "--port", "0", "--max-seconds", "0.1"
        )
        assert code == 0
        assert "memory-only" in out

    def test_serve_actually_serves(self, capsys, tmp_path):
        import asyncio
        import re as _re

        from repro.service import CoreClient, CoreServer

        async def scenario():
            async with CoreServer(log_dir=tmp_path) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                await client.commit(
                    [["insert", 1, 2], ["insert", 2, 3], ["insert", 3, 1]]
                )
                cores = await client.cores()
                await client.close()
                return cores

        assert asyncio.run(scenario()) == {1: 2, 2: 2, 3: 2}
        # And the session's log is now inspectable by the CLI.
        code, out = run_cli(
            capsys, "log-stat", "--log", str(tmp_path / "t.wal")
        )
        assert code == 0
        assert _re.search(r"records: 1", out)


class TestScenarioCommands:
    def gen(self, capsys, tmp_path, *extra):
        path = tmp_path / "scenario.trace"
        code, _ = run_cli(
            capsys, "gen", "--scenario", "burst", "--seed", "7",
            "--out", str(path), *extra,
        )
        assert code == 0
        return path

    def test_gen_writes_a_loadable_trace(self, capsys, tmp_path):
        from repro import scenarios as sc

        path = self.gen(capsys, tmp_path)
        info = sc.verify(path)
        assert info.name == "burst" and info.seed == 7

    def test_gen_is_byte_identical_across_runs(self, capsys, tmp_path):
        a = self.gen(capsys, tmp_path)
        data = a.read_bytes()
        a.unlink()
        b = self.gen(capsys, tmp_path)
        assert b.read_bytes() == data

    def test_gen_requires_scenario_name(self, capsys):
        code = main(["gen"])
        assert code == 2
        assert "--scenario" in capsys.readouterr().err

    def test_gen_rejects_unknown_scenario(self, capsys):
        code, _ = run_cli(capsys, "gen", "--scenario", "nope")
        assert code == 2

    def test_gen_json_summary(self, capsys, tmp_path):
        import json

        path = tmp_path / "s.trace"
        code, out = run_cli(
            capsys, "gen", "--scenario", "mixed", "--seed", "3",
            "--out", str(path), "--json",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["name"] == "mixed"
        assert summary["bytes"] == path.stat().st_size

    def test_replay_with_check(self, capsys, tmp_path):
        path = self.gen(capsys, tmp_path)
        code, out = run_cli(
            capsys, "replay", "--trace", str(path), "--check",
            "--seed", "7",
        )
        assert code == 0
        assert "agreement across order, order-simplified" in out

    def test_replay_json(self, capsys, tmp_path):
        import json

        path = self.gen(capsys, tmp_path)
        code, out = run_cli(
            capsys, "replay", "--trace", str(path), "--check",
            "--seed", "7", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["scenario"] == "burst"
        assert payload["checked"] is True
        assert payload["engines"] == ["order", "order-simplified"]

    def test_replay_rejects_corrupt_trace(self, capsys, tmp_path):
        path = self.gen(capsys, tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        capsys.readouterr()
        code = main(["replay", "--trace", str(path), "--check"])
        assert code == 4
        assert "corrupt" in capsys.readouterr().err

    def test_replay_detects_seed_mismatch(self, capsys, tmp_path):
        """--check regenerates from the header: a tampered-but-reframed
        trace whose ticks differ from its claimed family/seed fails."""
        from repro.scenarios.trace import _canonical
        from repro.service.wal import _frame, _parse_frame

        path = self.gen(capsys, tmp_path)
        # Re-frame the header claiming a different seed (valid CRC).
        data = path.read_bytes()
        end = data.find(b"\n")
        header = _parse_frame(data[:end])
        header["seed"] = 8
        path.write_bytes(_frame(_canonical(header)) + data[end + 1:])
        capsys.readouterr()
        code = main(["replay", "--trace", str(path), "--check"])
        assert code == 5
        assert "regenerat" in capsys.readouterr().err

    def test_replay_rejects_unknown_engines(self, capsys, tmp_path):
        path = self.gen(capsys, tmp_path)
        code, _ = run_cli(
            capsys, "replay", "--trace", str(path), "--check",
            "--engines", "order,warp-drive",
        )
        assert code == 2

    def test_replay_missing_trace_file(self, capsys, tmp_path):
        code, _ = run_cli(
            capsys, "replay", "--trace", str(tmp_path / "nope.trace")
        )
        assert code == 1

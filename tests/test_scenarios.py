"""Unit and property tests for the workload scenario subsystem.

Covers the scenario shape (builder invariants, validity by
construction), the seeded generator families (byte-reproducibility,
registry hygiene), the recorded-trace format (round-trips, corruption
and truncation detection with byte offsets) and the SNAP loaders.
"""

import gzip
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import scenarios as sc
from repro.errors import (
    EdgeListFormatError,
    ScenarioError,
    TraceError,
    WorkloadError,
)
from repro.graphs.io import read_temporal_edge_list
from repro.graphs.temporal import TemporalEdgeStream
from repro.scenarios.base import Scenario, ScenarioBuilder, Tick
from repro.engine.batch import Batch
from repro.testing import TINY_PARAMS, tiny_scenario

FIXTURE = "tests/data/snap_temporal_sample.txt"

FAMILIES = sc.available_scenarios()


# ----------------------------------------------------------------------
# Scenario / ScenarioBuilder
# ----------------------------------------------------------------------

class TestScenarioShape:
    def test_builder_skips_invalid_ops(self):
        b = ScenarioBuilder("t", base_edges=[(0, 1)])
        assert not b.insert(1, 0)      # already live (normalized)
        assert not b.remove(2, 3)      # absent
        assert b.insert(1, 2)
        assert not b.insert(2, 1)      # now live
        assert b.remove(0, 1)
        assert not b.remove(0, 1)      # already removed
        s = b.build()
        assert s.plan() == [("insert", (1, 2)), ("remove", (0, 1))]

    def test_builder_ticks_strictly_increase(self):
        b = ScenarioBuilder("t")
        b.insert(0, 1)
        assert b.tick(5.0)
        b.insert(1, 2)
        with pytest.raises(ScenarioError):
            b.tick(5.0)

    def test_builder_empty_tick_skipped(self):
        b = ScenarioBuilder("t")
        assert not b.tick(1.0)
        b.insert(0, 1)
        assert b.tick(2.0)
        s = b.build()
        assert s.n_ticks == 1

    def test_builder_default_timestamps_are_consecutive(self):
        b = ScenarioBuilder("t")
        b.insert(0, 1)
        b.tick()
        b.insert(1, 2)
        b.tick()
        assert [t.t for t in b.build().ticks] == [0.0, 1.0]

    def test_scenario_rejects_duplicate_base_edges(self):
        with pytest.raises(ScenarioError):
            Scenario("t", base_edges=[(0, 1), (1, 0)])

    def test_scenario_rejects_unordered_ticks(self):
        ticks = [
            Tick(2.0, Batch([("insert", (0, 1))])),
            Tick(1.0, Batch([("insert", (1, 2))])),
        ]
        with pytest.raises(ScenarioError):
            Scenario("t", ticks=ticks)

    def test_counts_and_describe(self):
        s = tiny_scenario("burst", seed=1)
        inserts, removes = s.counts()
        assert inserts + removes == s.n_ops
        d = s.describe()
        assert d["ticks"] == s.n_ticks
        assert d["inserts"] == inserts and d["removes"] == removes

    def test_plan_is_applicable_from_base_graph(self):
        """Valid by construction: the flattened plan replays cleanly."""
        for name in FAMILIES:
            s = tiny_scenario(name, seed=2)
            live = set(s.base_edges)
            for kind, edge in s.plan():
                if kind == "insert":
                    assert edge not in live, (name, edge)
                    live.add(edge)
                else:
                    assert edge in live, (name, edge)
                    live.remove(edge)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

class TestGenerators:
    def test_registry_lists_all_families(self):
        assert set(FAMILIES) == {
            "burst", "sliding-window", "flash-crowd",
            "relabel-storm", "shard-merge-storm", "mixed",
        }

    def test_unknown_scenario_names_the_known_ones(self):
        with pytest.raises(ScenarioError, match="burst"):
            sc.make_scenario("nope")

    def test_stray_parameter_rejected(self):
        with pytest.raises(ScenarioError, match="bogus"):
            sc.make_scenario("burst", bogus=3)

    def test_scenario_params_exposes_knobs(self):
        assert "burst_size" in sc.scenario_params("burst")
        assert "window" in sc.scenario_params("sliding-window")

    @pytest.mark.parametrize("name", FAMILIES)
    def test_same_seed_is_byte_identical(self, name):
        a = tiny_scenario(name, seed=9)
        b = tiny_scenario(name, seed=9)
        assert a == b
        assert sc.dumps(a) == sc.dumps(b)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_different_seeds_differ(self, name):
        assert sc.dumps(tiny_scenario(name, seed=1)) != sc.dumps(
            tiny_scenario(name, seed=2)
        )

    @pytest.mark.parametrize("name", FAMILIES)
    def test_params_regenerate_exactly(self, name):
        """name+seed+params in the header regenerate the same bytes."""
        s = tiny_scenario(name, seed=5)
        again = sc.make_scenario(s.name, seed=s.seed, **s.params)
        assert sc.dumps(again) == sc.dumps(s)

    def test_relabel_storm_stresses_one_level(self):
        """The adversarial family really is same-level chain growth:
        the base path plus pendant chains stay a forest, so no core
        number ever exceeds 1 (retired chains leave core-0 isolates)."""
        s = tiny_scenario("relabel-storm", seed=0)
        report = sc.replay(s, keep_cores=True)
        for cp in report.checkpoints:
            assert set(cp.cores.values()) <= {0, 1}

    def test_invalid_parameters_raise(self):
        with pytest.raises(ScenarioError):
            sc.make_scenario("burst", ticks=0)
        with pytest.raises(ScenarioError):
            sc.make_scenario("burst", scale=-1.0)
        with pytest.raises((ScenarioError, WorkloadError)):
            sc.make_scenario("mixed", p=1.5)

    def test_interleaved_plan_is_the_source_of_truth(self):
        from repro.bench.workloads import interleave_removals

        pool = [(0, 1), (1, 2)]
        ins = [(2, 3), (3, 4), (4, 5), (5, 6)]
        assert interleave_removals(pool, ins, 0.5, seed=3) == (
            sc.interleaved_plan(pool, ins, 0.5, seed=3)
        )


# ----------------------------------------------------------------------
# Trace format
# ----------------------------------------------------------------------

def random_scenario(seed, *, ops=40, universe=16):
    """A random-but-valid scenario built through the builder."""
    rng = random.Random(seed)
    base = []
    live = set()
    for _ in range(universe):
        u, v = rng.sample(range(universe), 2)
        e = (min(u, v), max(u, v))
        if e not in live:
            live.add(e)
            base.append(e)
    b = ScenarioBuilder("random", seed=seed, base_edges=base)
    staged = 0
    for _ in range(ops):
        u, v = rng.sample(range(universe), 2)
        if rng.random() < 0.4:
            b.remove(u, v)
        else:
            b.insert(u, v)
        staged += 1
        if staged % 7 == 0:
            b.tick()
    return b.build()


class TestTraceFormat:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_round_trip_is_byte_identical(self, name):
        s = tiny_scenario(name, seed=4)
        data = sc.dumps(s)
        loaded = sc.loads(data)
        assert loaded == s
        assert sc.dumps(loaded) == data

    def test_record_and_load_paths(self, tmp_path):
        s = tiny_scenario("burst", seed=4)
        path = tmp_path / "burst.trace"
        written = sc.record(s, path)
        assert written == path.stat().st_size
        assert sc.load(path) == s
        info = sc.verify(path)
        assert info.name == "burst" and info.seed == 4
        assert info.ticks == s.n_ticks and info.ops == s.n_ops
        assert info.total_bytes == written

    def test_record_to_file_object(self, tmp_path):
        s = tiny_scenario("mixed", seed=4)
        path = tmp_path / "mixed.trace"
        with open(path, "wb") as handle:
            sc.record(s, handle)
        with open(path, "rb") as handle:
            assert sc.load(handle) == s

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 10_000))
    def test_random_scenarios_round_trip(self, seed):
        s = random_scenario(seed)
        data = sc.dumps(s)
        loaded = sc.loads(data)
        assert loaded == s
        assert sc.dumps(loaded) == data

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 1_000),
        cut=st.integers(1, 200),
        flip=st.integers(0, 10_000),
    )
    def test_damaged_traces_always_raise(self, seed, cut, flip):
        """Any truncation or single-byte corruption is detected."""
        data = sc.dumps(random_scenario(seed, ops=20))
        truncated = data[: len(data) - (cut % (len(data) - 1)) - 1]
        with pytest.raises(TraceError):
            sc.loads(truncated)
        mutated = bytearray(data)
        pos = flip % len(mutated)
        mutated[pos] ^= 0x01
        try:
            reparsed = sc.loads(bytes(mutated))
        except TraceError:
            pass  # detected — the common case
        else:
            # A flip inside a JSON payload that still checksums can only
            # mean the frame was re-framed consistently — impossible for
            # a single bit flip, so the parse must differ from the
            # original only if the flip landed in ignorable bytes (none
            # exist in this format).
            assert sc.dumps(reparsed) == bytes(mutated)

    def test_truncated_frame_reports_offset(self):
        data = sc.dumps(tiny_scenario("burst", seed=1))
        with pytest.raises(TraceError) as info:
            sc.loads(data[:-10])
        assert info.value.offset >= 0
        assert "truncated" in str(info.value)
        assert "byte offset" in str(info.value)

    def test_frame_boundary_truncation_caught_by_header_counts(self):
        data = sc.dumps(tiny_scenario("burst", seed=1))
        cut = data.rfind(b"\n", 0, len(data) - 1) + 1
        with pytest.raises(TraceError, match="declares"):
            sc.loads(data[:cut])

    def test_corrupt_frame_reports_offset(self):
        data = bytearray(sc.dumps(tiny_scenario("burst", seed=1)))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(TraceError) as info:
            sc.loads(bytes(data))
        assert info.value.offset > 0

    def test_wal_file_is_rejected_as_trace(self, tmp_path):
        from repro.service import CoreService

        log = tmp_path / "wal.log"
        service = CoreService.open(log=log)
        service.insert(0, 1)
        service.close()
        with pytest.raises(TraceError, match="WAL"):
            sc.load(log)

    def test_version_skew_rejected(self, monkeypatch):
        from repro.scenarios import trace as trace_mod

        s = tiny_scenario("burst", seed=1)
        monkeypatch.setattr(trace_mod, "TRACE_VERSION", 99)
        data = trace_mod.dumps(s)
        monkeypatch.undo()
        with pytest.raises(TraceError, match="version"):
            sc.loads(data)

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            sc.loads(b"")


# ----------------------------------------------------------------------
# Loaders (SNAP + stream adapters) and the reader satellites
# ----------------------------------------------------------------------

class TestTemporalReader:
    def write(self, tmp_path, text, name="edges.txt"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_comments_blank_lines_and_gzip(self, tmp_path):
        text = "# comment\n\n1 2 10\n% other comment\n2 3 20\n"
        path = tmp_path / "edges.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(text)
        stream = read_temporal_edge_list(path, 2)
        assert list(stream) == [(1, 2, 10.0), (2, 3, 20.0)]

    def test_malformed_endpoint_names_file_and_line(self, tmp_path):
        path = self.write(tmp_path, "1 2 10\nx 3 20\n")
        with pytest.raises(EdgeListFormatError) as info:
            read_temporal_edge_list(path, 2)
        assert info.value.lineno == 2
        assert str(path) in str(info.value)

    def test_short_line_rejected(self, tmp_path):
        path = self.write(tmp_path, "1 2 10\n7\n")
        with pytest.raises(EdgeListFormatError) as info:
            read_temporal_edge_list(path, 2)
        assert info.value.lineno == 2

    def test_bad_timestamp_rejected(self, tmp_path):
        path = self.write(tmp_path, "1 2 soon\n")
        with pytest.raises(EdgeListFormatError, match="timestamp"):
            read_temporal_edge_list(path, 2)

    def test_missing_time_column_falls_back_to_index(self, tmp_path):
        path = self.write(tmp_path, "1 2\n2 3\n")
        assert list(read_temporal_edge_list(path, 2)) == [
            (1, 2, 0.0), (2, 3, 1.0),
        ]

    def test_strict_rejects_out_of_order(self, tmp_path):
        path = self.write(tmp_path, "1 2 20\n2 3 10\n")
        with pytest.raises(EdgeListFormatError, match="out of order"):
            read_temporal_edge_list(path, 2, strict=True)
        # default sorts instead
        stream = read_temporal_edge_list(path, 2)
        assert [t for _, _, t in stream] == [10.0, 20.0]

    def test_duplicate_policies(self, tmp_path):
        path = self.write(tmp_path, "1 2 10\n2 3 15\n2 1 30\n")
        first = read_temporal_edge_list(path, 2, duplicates="first")
        assert list(first) == [(1, 2, 10.0), (2, 3, 15.0)]
        last = read_temporal_edge_list(path, 2, duplicates="last")
        assert list(last) == [(2, 3, 15.0), (1, 2, 30.0)]
        with pytest.raises(EdgeListFormatError) as info:
            read_temporal_edge_list(path, 2, duplicates="error")
        assert info.value.lineno == 3

    def test_unknown_duplicate_policy(self, tmp_path):
        path = self.write(tmp_path, "1 2 10\n")
        with pytest.raises(EdgeListFormatError, match="policy"):
            read_temporal_edge_list(path, 2, duplicates="dedupe")


class TestTicksKnobs:
    def stream(self):
        return TemporalEdgeStream([
            (1, 2, 0.0), (2, 3, 1.0), (3, 4, 10.0),
            (4, 5, 10.0), (5, 6, 20.0),
        ])

    def test_knobs_are_mutually_exclusive(self):
        with pytest.raises(WorkloadError, match="at most one"):
            list(self.stream().ticks(5.0, count=2))
        with pytest.raises(WorkloadError, match="at most one"):
            list(self.stream().ticks(every_seconds=5.0, count=2))

    def test_every_seconds_windows_align_to_first_timestamp(self):
        ticks = list(self.stream().ticks(every_seconds=10.0))
        assert ticks == [
            (10.0, [(1, 2), (2, 3)]),
            (20.0, [(3, 4), (4, 5)]),
            (30.0, [(5, 6)]),
        ]

    def test_every_seconds_boundary_edge_opens_no_empty_window(self):
        """An edge sitting exactly on a window boundary must not leave a
        trailing empty window behind it."""
        stream = TemporalEdgeStream([(1, 2, 0.0), (2, 3, 10.0)])
        ticks = list(stream.ticks(every_seconds=10.0))
        assert ticks == [(10.0, [(1, 2)]), (20.0, [(2, 3)])]
        assert all(edges for _, edges in ticks)

    def test_every_seconds_skips_empty_middle_windows(self):
        stream = TemporalEdgeStream([(1, 2, 0.0), (2, 3, 95.0)])
        assert list(stream.ticks(every_seconds=10.0)) == [
            (10.0, [(1, 2)]), (100.0, [(2, 3)]),
        ]

    def test_every_seconds_empty_stream(self):
        assert list(TemporalEdgeStream([]).ticks(every_seconds=5.0)) == []

    def test_every_seconds_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            list(self.stream().ticks(every_seconds=0))

    def test_count_groups_are_fixed_size(self):
        ticks = list(self.stream().ticks(count=2))
        assert [len(edges) for _, edges in ticks] == [2, 2, 1]
        assert [t for t, _ in ticks] == [1.0, 10.0, 20.0]

    def test_count_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            list(self.stream().ticks(count=0))


class TestLoaders:
    def test_snap_fixture_loads(self):
        stream = sc.load_snap_stream(FIXTURE)
        assert len(stream) > 0
        times = [t for _, _, t in stream]
        assert times == sorted(times)

    def test_scenario_from_snap_defaults_name_to_stem(self):
        s = sc.scenario_from_snap(FIXTURE, count=8)
        assert s.name == "snap_temporal_sample"
        assert s.params["source"] == "snap_temporal_sample.txt"
        assert s.base_edges == []
        assert s.n_ops == len(sc.load_snap_stream(FIXTURE))

    def test_count_groups_coalesce_equal_stamps(self):
        stream = TemporalEdgeStream([
            (0, 1, 5.0), (1, 2, 5.0), (2, 3, 5.0), (3, 4, 6.0),
        ])
        s = sc.scenario_from_stream(stream, count=2)
        # groups stamped 5.0, 5.0(?): coalesced — strictly increasing
        stamps = [t.t for t in s.ticks]
        assert stamps == sorted(set(stamps))

    def test_window_expires_and_refreshes(self):
        stream = TemporalEdgeStream([
            (0, 1, 0.0), (1, 2, 1.0), (0, 1, 2.0), (2, 3, 5.0),
        ])
        s = sc.scenario_from_stream(stream, window=4.0)
        plan = s.plan()
        # (1,2) expires at t=5 (due <= t) -> removed in the t=5 tick;
        # (0,1) was refreshed at t=2 (due 6) so it is still live.
        assert ("remove", (1, 2)) in plan
        assert ("remove", (0, 1)) not in plan
        live = set(s.base_edges)
        for kind, edge in plan:
            live.add(edge) if kind == "insert" else live.remove(edge)
        assert live == {(0, 1), (2, 3)}

    def test_window_must_be_positive(self):
        with pytest.raises(ScenarioError):
            sc.scenario_from_stream(
                TemporalEdgeStream([]), window=0.0
            )

    def test_duplicate_arrivals_skipped_without_window(self):
        stream = TemporalEdgeStream([
            (0, 1, 0.0), (1, 0, 1.0), (1, 2, 2.0),
        ])
        s = sc.scenario_from_stream(stream)
        assert s.plan() == [
            ("insert", (0, 1)), ("insert", (1, 2)),
        ]


class TestTinyFixtures:
    def test_every_family_has_tiny_params(self):
        assert set(TINY_PARAMS) == set(FAMILIES)

    def test_tiny_scenarios_are_small(self):
        for name in FAMILIES:
            s = tiny_scenario(name)
            assert 0 < s.n_ops <= 150, (name, s.n_ops)

"""Unit tests for the analysis package (subcore/purecore/ordercore,
distributions, k-core views, metrics)."""

import math
import random

import pytest

from repro.analysis.distributions import (
    bucket_proportions,
    cumulative_distribution,
    fraction_at_most,
    percentile,
    ratio_sum,
)
from repro.analysis.kcore_views import (
    core_spectrum,
    degeneracy,
    densest_core,
    k_core_subgraph,
    k_core_vertices,
    k_shell_vertices,
    onion_layers,
)
from repro.analysis.metrics import UpdateLog
from repro.analysis.subcore import order_core, pure_core, sub_core
from repro.engine.base import UpdateResult
from repro.core.decomposition import core_numbers, korder_decomposition
from repro.core.korder import KOrder
from repro.core.maintainer import compute_mcd
from repro.graphs.undirected import DynamicGraph

from helpers import u


class TestStructuralSets:
    def test_subcores_of_fig3(self, fig3_graph):
        core = core_numbers(fig3_graph)
        # Example 3.1: {v1..v5} is the unique 2-subcore; two 3-subcores.
        assert sub_core(fig3_graph, core, 1) == {1, 2, 3, 4, 5}
        assert sub_core(fig3_graph, core, 6) == {6, 7, 8, 9}
        assert sub_core(fig3_graph, core, 10) == {10, 11, 12, 13}
        # The chain u_0..u_50 (tail=50 spans 51 vertices) is one 1-subcore.
        assert len(sub_core(fig3_graph, core, u(0))) == 51

    def test_purecore_excludes_saturated(self, fig3_graph):
        core = core_numbers(fig3_graph)
        mcd = compute_mcd(fig3_graph, core)
        # K4 vertices have mcd == core == 3 (except v7 with its v2 link):
        # the purecore of v6 contains only vertices with slack.
        pc = pure_core(fig3_graph, core, mcd, 6)
        assert 6 in pc
        assert pc <= sub_core(fig3_graph, core, 6)

    def test_purecore_on_chain(self, fig3_graph):
        core = core_numbers(fig3_graph)
        mcd = compute_mcd(fig3_graph, core)
        # Chain interior all have mcd 2 > 1: the purecore spans the chain
        # except the tips (mcd == 1).
        pc = pure_core(fig3_graph, core, mcd, u(0))
        assert len(pc) >= 45

    def test_ordercore_bounds_vplus(self, small_random_graph):
        """Lemma 5.4: |V+| <= |oc(u)| (union with oc(v) at equal cores),
        measured against the maintainer's own evolving k-order."""
        from repro.core.maintainer import OrderedCoreMaintainer

        m = OrderedCoreMaintainer(small_random_graph, seed=0)
        rng = random.Random(0)
        vertices = sorted(small_random_graph.vertices())
        for _ in range(30):
            a, b = rng.sample(vertices, 2)
            if m.graph.has_edge(a, b):
                continue
            core = dict(m.core)
            # Root in the pre-insertion order/core state:
            if core[a] > core[b] or (
                core[a] == core[b] and m.korder.precedes(b, a)
            ):
                a, b = b, a
            reach = order_core(m.graph, m.korder, core, a)
            if core[a] == core[b]:
                # Lemma 5.4(2): the new edge extends forward reachability
                # into b's order core.
                reach = reach | order_core(m.graph, m.korder, core, b)
            result = m.insert_edge(a, b)
            assert result.visited <= len(reach)

    def test_ordercore_smaller_than_purecore_on_average(self):
        from repro.graphs.datasets import load_dataset

        data = load_dataset("patents", scale=0.25, seed=1)
        graph = data.graph()
        decomposition = korder_decomposition(graph, policy="small")
        korder = KOrder.from_decomposition(decomposition)
        core = decomposition.core
        mcd = compute_mcd(graph, core)
        rng = random.Random(2)
        sample = rng.sample(sorted(graph.vertices()), 60)
        oc_total = sum(
            len(order_core(graph, korder, core, v)) for v in sample
        )
        pc_total = sum(
            len(pure_core(graph, core, mcd, v)) for v in sample
        )
        assert oc_total < pc_total


class TestDistributions:
    def test_bucket_proportions_fig1_bounds(self):
        values = [1, 2, 3, 7, 50, 500, 5000]
        props = bucket_proportions(values)
        assert props == pytest.approx(
            [3 / 7, 1 / 7, 1 / 7, 1 / 7, 1 / 7]
        )

    def test_bucket_proportions_empty(self):
        assert bucket_proportions([]) == [0.0] * 5

    def test_bucket_proportions_sum_to_one(self):
        props = bucket_proportions(range(2000))
        assert math.isclose(sum(props), 1.0)

    def test_cumulative_distribution(self):
        xs, fr = cumulative_distribution([1, 1, 2, 5])
        assert xs == [1, 2, 5]
        assert fr == [0.5, 0.75, 1.0]

    def test_cumulative_distribution_empty(self):
        assert cumulative_distribution([]) == ([], [])

    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([], 10) == 0.0

    def test_ratio_sum(self):
        assert ratio_sum([10, 20], [5, 5]) == 3.0
        assert ratio_sum([], []) == 1.0
        assert ratio_sum([5], [0]) == float("inf")

    def test_percentile(self):
        assert percentile([3, 1, 2], 0.0) == 1
        assert percentile([3, 1, 2], 1.0) == 3
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestKCoreViews:
    def test_k_core_vertices(self, triangle_graph):
        core = core_numbers(triangle_graph)
        assert k_core_vertices(core, 2) == {0, 1, 2}
        assert k_core_vertices(core, 1) == {0, 1, 2, 3}
        assert k_core_vertices(core, 3) == set()

    def test_k_core_subgraph(self, triangle_graph):
        core = core_numbers(triangle_graph)
        sub = k_core_subgraph(triangle_graph, core, 2)
        assert sub.n == 3 and sub.m == 3

    def test_k_shell(self, triangle_graph):
        core = core_numbers(triangle_graph)
        assert k_shell_vertices(core, 1) == {3}

    def test_degeneracy_and_spectrum(self, fig3_graph):
        core = core_numbers(fig3_graph)
        assert degeneracy(core) == 3
        spectrum = core_spectrum(core)
        assert spectrum[3] == 8 and spectrum[2] == 5

    def test_onion_layers_refine_shells(self, fig3_graph):
        layers = onion_layers(fig3_graph)
        core = core_numbers(fig3_graph)
        # Chain tips leave in round 1; u0 leaves later than the tips.
        assert layers[u(49)] == 1
        assert layers[u(0)] > layers[u(49)]
        # Every vertex gets a layer.
        assert set(layers) == set(fig3_graph.vertices())
        # Within the same graph, higher core implies weakly later layers
        # for the minimum layer per core level.
        min_layer = {}
        for v, lay in layers.items():
            k = core[v]
            min_layer[k] = min(min_layer.get(k, lay), lay)
        assert min_layer[3] >= min_layer[1]

    def test_densest_core(self, fig3_graph):
        core = core_numbers(fig3_graph)
        vertices, density = densest_core(fig3_graph, core)
        assert vertices == {6, 7, 8, 9, 10, 11, 12, 13}
        assert density == pytest.approx(12 / 8)

    def test_densest_core_empty(self):
        assert densest_core(DynamicGraph(), {}) == (set(), 0.0)


class TestUpdateLog:
    def _result(self, visited, changed, kind="insert", k=1):
        return UpdateResult(kind, (0, 1), k, tuple(range(changed)), visited)

    def test_record_accumulates(self):
        log = UpdateLog(engine="x")
        log.record(self._result(5, 2), 0.5)
        log.record(self._result(3, 1), 0.25)
        assert len(log) == 2
        assert log.total_visited == 8
        assert log.total_changed == 3
        assert log.total_seconds == 0.75

    def test_ratio(self):
        log = UpdateLog()
        log.record(self._result(10, 2), 0.0)
        assert log.visited_to_changed_ratio() == 5.0

    def test_proportions(self):
        log = UpdateLog()
        for visited in (1, 5, 50, 5000):
            log.record(self._result(visited, 1), 0.0)
        assert log.visited_proportions() == [0.25, 0.25, 0.25, 0.0, 0.25]

    def test_extend_attributes_batch_time_once(self):
        log = UpdateLog()
        log.extend([self._result(1, 0), self._result(2, 0)], 1.0)
        assert log.total_seconds == 1.0
        assert len(log) == 2

    def test_k_values(self):
        log = UpdateLog()
        log.record(self._result(1, 0, k=3), 0.0)
        assert log.k_values() == [3]

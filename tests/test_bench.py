"""Unit tests for the benchmark harness (workloads, runner, experiments,
reporting)."""

import pytest

from repro.bench import experiments, reporting
from repro.bench.runner import build_engine, run_mixed, run_updates
from repro.bench.workloads import (
    grouped_stream,
    interleave_removals,
    make_workload,
    sample_edge_fraction,
    sample_vertex_fraction,
)
from repro.core.decomposition import core_numbers
from repro.errors import WorkloadError
from repro.graphs.datasets import load_dataset

SMALL = dict(scale=0.15, seed=3)


@pytest.fixture(scope="module")
def gowalla():
    return load_dataset("gowalla", **SMALL)


@pytest.fixture(scope="module")
def facebook():
    return load_dataset("facebook", **SMALL)


class TestWorkloads:
    def test_base_plus_updates_is_full(self, gowalla):
        w = make_workload(gowalla, 50, seed=1)
        assert len(w.update_edges) == 50
        assert len(w.base_edges) + 50 == len(gowalla.edges)
        assert w.full_graph().m == len(gowalla.edges)
        assert w.base_graph().m == len(w.base_edges)

    def test_base_graph_keeps_update_vertices(self, gowalla):
        w = make_workload(gowalla, 50, seed=1)
        base = w.base_graph()
        for u, v in w.update_edges:
            assert base.has_vertex(u) and base.has_vertex(v)

    def test_temporal_dataset_takes_latest(self, facebook):
        w = make_workload(facebook, 30, seed=1)
        assert w.update_edges == facebook.edges[-30:]

    def test_update_count_capped(self, gowalla):
        w = make_workload(gowalla, 10**9, seed=1)
        assert len(w.update_edges) == len(gowalla.edges) // 2

    def test_grouped_stream(self, gowalla):
        workload, groups = grouped_stream(gowalla, 5, 10, seed=2)
        assert len(groups) == 5
        assert all(len(g) == 10 for g in groups)
        flat = [e for g in groups for e in g]
        assert flat == workload.update_edges[: len(flat)]

    def test_interleave_removals_plan(self):
        plan = interleave_removals(
            [(0, 1), (1, 2)], [(2, 3), (3, 4)], p=1.0, seed=0
        )
        inserts = [e for kind, e in plan if kind == "insert"]
        removes = [e for kind, e in plan if kind == "remove"]
        assert inserts == [(2, 3), (3, 4)]
        assert len(removes) == 2
        # A removal can only target an edge present at that moment.
        present = {(0, 1), (1, 2)}
        for kind, e in plan:
            if kind == "insert":
                present.add(e)
            else:
                assert e in present
                present.discard(e)

    def test_interleave_p_zero_no_removals(self):
        plan = interleave_removals([(0, 1)], [(1, 2)], p=0.0, seed=0)
        assert plan == [("insert", (1, 2))]

    def test_interleave_p_validated(self):
        with pytest.raises(WorkloadError):
            interleave_removals([], [], p=1.5)

    def test_vertex_fraction_sampling(self, gowalla):
        small = sample_vertex_fraction(gowalla, 0.3, seed=1)
        full = sample_vertex_fraction(gowalla, 1.0, seed=1)
        assert len(small) < len(full) == len(gowalla.edges)
        with pytest.raises(WorkloadError):
            sample_vertex_fraction(gowalla, 0.0)

    def test_edge_fraction_sampling(self, gowalla):
        frac = sample_edge_fraction(gowalla, 0.25, seed=1)
        assert len(frac) == len(gowalla.edges) // 4
        with pytest.raises(WorkloadError):
            sample_edge_fraction(gowalla, 2.0)


class TestRunner:
    def test_build_engine_names(self, gowalla):
        g = gowalla.graph()
        assert build_engine("order", g.copy()).name == "order"
        assert build_engine("trav-3", g.copy()).name == "trav-3"
        assert build_engine("naive", g.copy()).name == "naive"
        for policy_engine in ("order-large", "order-random", "order-small"):
            assert build_engine(policy_engine, g.copy()).name == "order"

    def test_build_engine_unknown(self, gowalla):
        with pytest.raises(ValueError):
            build_engine("quantum", gowalla.graph())

    def test_run_updates_insert_then_remove(self, gowalla):
        w = make_workload(gowalla, 20, seed=1)
        engine = build_engine("order", w.base_graph())
        ins = run_updates(engine, w.update_edges, "insert")
        assert len(ins) == 20
        assert ins.total_seconds > 0
        rem = run_updates(engine, list(reversed(w.update_edges)), "remove")
        assert len(rem) == 20
        # Round trip: cores must match a fresh decomposition of the base.
        assert engine.core_numbers() == core_numbers(w.base_graph())

    def test_run_updates_kind_validated(self, gowalla):
        engine = build_engine("order", gowalla.graph())
        with pytest.raises(ValueError):
            run_updates(engine, [], "upsert")

    def test_run_mixed(self, gowalla):
        w = make_workload(gowalla, 10, seed=2)
        engine = build_engine("order", w.base_graph())
        plan = interleave_removals(
            w.base_edges, w.update_edges, p=0.5, seed=3
        )
        log = run_mixed(engine, plan)
        assert len(log) == len(plan)


class TestExperiments:
    def test_table1_rows(self):
        rows = experiments.table1(["ca", "google"], scale=0.15, seed=3)
        assert [r.dataset for r in rows] == ["ca", "google"]
        assert all(r.n > 0 and r.m > 0 for r in rows)
        assert rows[0].paper_max_k == 3

    def test_fig10a_cdf_monotone(self):
        result = experiments.fig10a("ca", **SMALL)
        assert result.fractions == sorted(result.fractions)
        assert result.fractions[-1] == pytest.approx(1.0)

    def test_fig10b_levels_bounded_by_degeneracy(self):
        result = experiments.fig10b("ca", n_updates=40, **SMALL)
        assert max(result.xs) <= 3

    def test_insertion_visits_order_beats_traversal(self):
        result = experiments.insertion_visits("patents", n_updates=60, **SMALL)
        assert result.order_ratio <= result.traversal_ratio
        assert len(result.traversal_proportions) == 5
        assert sum(result.order_proportions) == pytest.approx(1.0)

    def test_fig5_oc_stochastically_smaller(self):
        result = experiments.fig5("patents", sample=60, **SMALL)
        # Robust check: median oc size <= median pc size.
        def median_size(cdf):
            for x, f in zip(cdf.xs, cdf.fractions):
                if f >= 0.5:
                    return x
            return cdf.xs[-1]

        assert median_size(result.oc) <= median_size(result.pc)

    def test_fig9_returns_all_policies(self):
        result = experiments.fig9("ca", n_updates=40, **SMALL)
        assert set(result.ratios) == {"small", "large", "random"}
        assert all(r >= 1.0 or r == 0 for r in result.ratios.values())

    def test_table2_order_wins_inserts(self):
        row = experiments.table2("gowalla", n_updates=60, hops=(2,), **SMALL)
        assert row.insert_seconds["order"] < row.insert_seconds["trav-2"]
        assert row.insert_speedup() > 1.0

    def test_table3_reports_all_engines(self):
        row = experiments.table3("ca", hops=(2, 3), **SMALL)
        assert set(row.build_seconds) == {"order", "trav-2", "trav-3"}
        assert all(s > 0 for s in row.build_seconds.values())

    def test_fig11_ratios_increase_with_fraction(self):
        result = experiments.fig11(
            "ca", fractions=(0.4, 1.0), n_updates=30, **SMALL
        )
        assert len(result.vary_vertices) == 2
        assert (
            result.vary_vertices[0].edge_ratio
            < result.vary_vertices[1].edge_ratio
        )
        assert result.vary_edges[1].edge_ratio == pytest.approx(1.0)

    def test_fig12_group_counts(self):
        result = experiments.fig12(
            "ca", n_groups=4, group_size=8, p=0.0, **SMALL
        )
        assert len(result.group_seconds) == 4
        assert all(s >= 0 for s in result.group_seconds)

    def test_fig12_with_removals(self):
        result = experiments.fig12(
            "ca", n_groups=3, group_size=8, p=0.5, **SMALL
        )
        assert result.p == 0.5
        assert len(result.group_seconds) == 3


class TestReporting:
    def test_format_table_alignment(self):
        text = reporting.format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table1(self):
        rows = experiments.table1(["ca"], scale=0.15, seed=3)
        text = reporting.render_table1(rows)
        assert "ca" in text and "paper" in text

    def test_render_fig1_and_fig2(self):
        result = experiments.insertion_visits("ca", n_updates=30, **SMALL)
        assert "traversal" in reporting.render_fig1([result])
        assert "|V*|" in reporting.render_fig2([result])

    def test_render_fig5(self):
        result = experiments.fig5("ca", sample=40, **SMALL)
        text = reporting.render_fig5([result])
        assert "oc" in text and "pc" in text and "sc" in text

    def test_render_fig9(self):
        result = experiments.fig9("ca", n_updates=20, **SMALL)
        assert "small" in reporting.render_fig9([result]).lower()

    def test_render_fig10(self):
        result = experiments.fig10a("ca", **SMALL)
        assert "<=3" in reporting.render_fig10([result], "core CDF")

    def test_render_table2_table3(self):
        row2 = experiments.table2("ca", n_updates=20, hops=(2,), **SMALL)
        assert "speedup" in reporting.render_table2([row2])
        row3 = experiments.table3("ca", hops=(2,), **SMALL)
        assert "trav-2" in reporting.render_table3([row3])

    def test_render_fig11_fig12(self):
        r11 = experiments.fig11(
            "ca", fractions=(1.0,), n_updates=10, **SMALL
        )
        assert "|V|" in reporting.render_fig11([r11])
        r12 = experiments.fig12("ca", n_groups=2, group_size=5, **SMALL)
        assert "group" in reporting.render_fig12([r12])

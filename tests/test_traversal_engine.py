"""Unit tests for the traversal baseline (mcd/pcd hierarchy + DFS/cascade)."""

import random

import pytest

from repro.core.decomposition import core_numbers
from repro.graphs.undirected import DynamicGraph
from repro.traversal.degrees import (
    DegreeHierarchy,
    compute_mcd,
    compute_next_level,
)
from repro.traversal.maintainer import TraversalCoreMaintainer

from helpers import fig3_edges, u


class TestDegreeDefinitions:
    def test_mcd_on_fig3(self, fig3_graph):
        core = core_numbers(fig3_graph)
        mcd = compute_mcd(fig3_graph, core)
        # Chain interior: two neighbors, both core 1 -> mcd 2.
        assert mcd[u(5)] == 2
        # Chain tips have one neighbor.
        assert mcd[u(49)] == 1
        # K4 member: 3 same-core neighbors (v7 also has v2 below it).
        assert mcd[6] == 3

    def test_mcd_at_least_core(self, small_random_graph):
        core = core_numbers(small_random_graph)
        mcd = compute_mcd(small_random_graph, core)
        assert all(mcd[v] >= core[v] for v in small_random_graph.vertices())

    def test_pcd_bounded_by_mcd(self, small_random_graph):
        core = core_numbers(small_random_graph)
        mcd = compute_mcd(small_random_graph, core)
        pcd = compute_next_level(small_random_graph, core, mcd)
        assert all(pcd[v] <= mcd[v] for v in small_random_graph.vertices())

    def test_pcd_excludes_saturated_neighbors(self):
        """pcd drops neighbors with mcd == core (the paper's Example 4.1)."""
        # Path a-b-c-d: all core 1; the tips have mcd 1 == core.
        g = DynamicGraph([("a", "b"), ("b", "c"), ("c", "d")])
        core = core_numbers(g)
        mcd = compute_mcd(g, core)
        pcd = compute_next_level(g, core, mcd)
        assert mcd["b"] == 2
        assert pcd["b"] == 1  # neighbor 'a' has mcd == core == 1

    def test_hierarchy_depth_validation(self, triangle_graph):
        core = core_numbers(triangle_graph)
        with pytest.raises(ValueError):
            DegreeHierarchy(triangle_graph, core, depth=0)

    def test_hierarchy_levels_monotone(self, small_random_graph):
        core = core_numbers(small_random_graph)
        h = DegreeHierarchy(small_random_graph, core, depth=4)
        for shallow, deep in zip(h.levels, h.levels[1:]):
            assert all(deep[v] <= shallow[v] for v in deep)

    def test_refresh_counts_work(self, triangle_graph):
        core = core_numbers(triangle_graph)
        h = DegreeHierarchy(triangle_graph, core, depth=2)
        triangle_graph.add_edge(3, 0)
        work = h.refresh(core, changed_core=(), endpoints=(3, 0))
        assert work > 0
        h.check(core)


class TestTraversalMaintainer:
    def test_h_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            TraversalCoreMaintainer(triangle_graph, h=1)

    def test_name_reflects_h(self, triangle_graph):
        assert TraversalCoreMaintainer(triangle_graph, h=3).name == "trav-3"

    def test_basic_insert(self, triangle_graph):
        m = TraversalCoreMaintainer(triangle_graph, h=2, audit=True)
        result = m.insert_edge(3, 0)
        assert result.changed == (3,)
        assert m.core_of(3) == 2

    def test_basic_remove(self, triangle_graph):
        m = TraversalCoreMaintainer(triangle_graph, h=2, audit=True)
        result = m.remove_edge(0, 1)
        assert set(result.changed) == {0, 1, 2}

    def test_example_4_2_visits_whole_chain(self):
        """The paper's headline deficiency: traversal visits ~1999 vertices
        to conclude V* = {u0}."""
        m = TraversalCoreMaintainer(DynamicGraph(fig3_edges(tail=2000)), h=2)
        result = m.insert_edge(4, u(0))
        assert result.changed == (u(0),)
        assert result.visited > 1500

    def test_higher_h_prunes_harder(self):
        """Trav-3's deeper prune value shrinks the same search."""
        r2 = TraversalCoreMaintainer(
            DynamicGraph(fig3_edges(tail=400)), h=2
        ).insert_edge(4, u(0))
        r4 = TraversalCoreMaintainer(
            DynamicGraph(fig3_edges(tail=400)), h=4
        ).insert_edge(4, u(0))
        assert r4.changed == r2.changed == (u(0),)
        assert r4.visited <= r2.visited

    def test_maintenance_work_grows_with_h(self, small_random_graph):
        logs = {}
        for h in (2, 4):
            m = TraversalCoreMaintainer(small_random_graph.copy(), h=h)
            rng = random.Random(5)
            vertices = sorted(small_random_graph.vertices())
            for _ in range(25):
                a, b = rng.sample(vertices, 2)
                if not m.graph.has_edge(a, b):
                    m.insert_edge(a, b)
            logs[h] = m.maintenance_work
        assert logs[4] > logs[2]

    def test_vertex_operations(self, triangle_graph):
        m = TraversalCoreMaintainer(triangle_graph, h=2, audit=True)
        assert m.add_vertex(50) is True
        m.insert_edge(50, 0)
        assert m.core_of(50) == 1
        m.remove_vertex(50)
        assert not m.graph.has_vertex(50)
        m.check()

    @pytest.mark.parametrize("h", [2, 3, 5])
    def test_mixed_stream_matches_oracle(self, h):
        rng = random.Random(h)
        n = 22
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng.shuffle(pairs)
        base = pairs[:60]
        m = TraversalCoreMaintainer(
            DynamicGraph(base, vertices=range(n)), h=h, audit=True
        )
        shadow = DynamicGraph(base, vertices=range(n))
        present = list(base)
        absent = pairs[60:]
        for _ in range(120):
            if absent and (not present or rng.random() < 0.55):
                e = absent.pop()
                m.insert_edge(*e)
                shadow.add_edge(*e)
                present.append(e)
            else:
                e = present.pop(rng.randrange(len(present)))
                m.remove_edge(*e)
                shadow.remove_edge(*e)
                absent.append(e)
            assert m.core_numbers() == core_numbers(shadow)

    def test_pcd_property_exposed(self, triangle_graph):
        m = TraversalCoreMaintainer(triangle_graph, h=2)
        assert set(m.pcd) == set(triangle_graph.vertices())
        assert set(m.mcd) == set(triangle_graph.vertices())

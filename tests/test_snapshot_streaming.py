"""Unit tests for index snapshots and the sliding-window monitor."""

import json

import pytest

from repro.core.maintainer import OrderedCoreMaintainer
from repro.core.snapshot import (
    from_snapshot,
    load_snapshot,
    save_snapshot,
    to_snapshot,
)
from repro.errors import StaleIndexError, WorkloadError
from repro.graphs.undirected import DynamicGraph
from repro.streaming import SlidingWindowCoreMonitor

from helpers import random_gnm


class TestSnapshot:
    def test_roundtrip_preserves_everything(self, small_random_graph):
        original = OrderedCoreMaintainer(small_random_graph, seed=1)
        restored = from_snapshot(to_snapshot(original))
        assert restored.core_numbers() == original.core_numbers()
        assert restored.order() == original.order()
        assert dict(restored.mcd) == dict(original.mcd)
        assert restored.graph.m == original.graph.m

    def test_restored_engine_keeps_working(self, triangle_graph):
        original = OrderedCoreMaintainer(triangle_graph, seed=1)
        restored = from_snapshot(to_snapshot(original))
        result = restored.insert_edge(3, 0)
        assert result.changed == (3,)
        restored.check()

    def test_file_roundtrip(self, tmp_path):
        engine = OrderedCoreMaintainer(random_gnm(20, 50, seed=2))
        path = tmp_path / "index.json"
        save_snapshot(engine, path)
        restored = load_snapshot(path)
        assert restored.core_numbers() == engine.core_numbers()

    def test_snapshot_is_json_serializable(self, triangle_graph):
        engine = OrderedCoreMaintainer(triangle_graph)
        text = json.dumps(to_snapshot(engine))
        assert "version" in json.loads(text)

    def test_version_skew_names_both_versions(self):
        with pytest.raises(
            StaleIndexError,
            match=r"snapshot field 'version' is 99; "
            r"this build reads version 1",
        ):
            from_snapshot({"version": 99})

    def test_absent_version_reported_as_none(self):
        with pytest.raises(
            StaleIndexError, match=r"snapshot field 'version' is None"
        ):
            from_snapshot({"order": []})

    def test_missing_field_named(self):
        with pytest.raises(
            StaleIndexError, match=r"snapshot missing field 'core'"
        ):
            from_snapshot({"version": 1, "order": []})

    def test_length_mismatch_reports_every_length(self, triangle_graph):
        snapshot = to_snapshot(OrderedCoreMaintainer(triangle_graph))
        snapshot["core"] = snapshot["core"][:-1]
        with pytest.raises(
            StaleIndexError,
            match=r"inconsistent lengths: order=4, core=3, "
            r"deg_plus=4, mcd=4",
        ):
            from_snapshot(snapshot)

    def test_unknown_engine_lists_known_engines(self, triangle_graph):
        snapshot = to_snapshot(OrderedCoreMaintainer(triangle_graph))
        snapshot["engine"] = "order-quantum"
        with pytest.raises(
            StaleIndexError,
            match=r"names unknown engine 'order-quantum'; "
            r"this build restores: order, order-simplified",
        ):
            from_snapshot(snapshot)

    def test_unknown_engine_not_wrapped_as_value_error(self, triangle_graph):
        # The unknown-engine raise sits inside a try that converts
        # ValueError to StaleIndexError; make sure the message survives
        # verbatim rather than being double-wrapped.
        snapshot = to_snapshot(OrderedCoreMaintainer(triangle_graph))
        snapshot["engine"] = "naive"
        try:
            from_snapshot(snapshot)
        except StaleIndexError as exc:
            assert "names unknown engine 'naive'" in str(exc)
        else:  # pragma: no cover - the raise is the point
            raise AssertionError("unknown engine accepted")

    def test_corrupted_invariants_detected(self, triangle_graph):
        snapshot = to_snapshot(OrderedCoreMaintainer(triangle_graph))
        snapshot["deg_plus"] = [d + 1 for d in snapshot["deg_plus"]]
        with pytest.raises(StaleIndexError):
            from_snapshot(snapshot)

    def test_audit_can_be_skipped(self, triangle_graph):
        snapshot = to_snapshot(OrderedCoreMaintainer(triangle_graph))
        restored = from_snapshot(snapshot, audit=False)
        assert restored.graph.m == 4

    def test_snapshot_after_updates(self, small_random_graph):
        engine = OrderedCoreMaintainer(small_random_graph, seed=3)
        edges = list(engine.graph.edges())
        for e in edges[:10]:
            engine.remove_edge(*e)
        engine.insert_edge("x", "y")
        restored = from_snapshot(to_snapshot(engine))
        assert restored.core_numbers() == engine.core_numbers()
        restored.check()


class TestSlidingWindow:
    def test_window_validation(self):
        with pytest.raises(WorkloadError):
            SlidingWindowCoreMonitor(window=0)

    def test_arrivals_build_cores(self):
        monitor = SlidingWindowCoreMonitor(window=100)
        for t, (u, v) in enumerate([(0, 1), (1, 2), (2, 0)]):
            monitor.observe(u, v, t)
        assert monitor.core_of(0) == 2
        assert monitor.degeneracy() == 2
        assert monitor.live_edges() == 3

    def test_expiry_removes_edges(self):
        monitor = SlidingWindowCoreMonitor(window=5)
        monitor.observe(0, 1, 0)
        monitor.observe(1, 2, 1)
        monitor.observe(2, 0, 2)
        assert monitor.core_of(0) == 2
        removed = monitor.advance_to(6)  # first two edges expire
        assert removed == 2
        assert monitor.core_of(0) == 1  # only (2, 0) remains
        assert monitor.live_edges() == 1

    def test_refresh_extends_lifetime(self):
        monitor = SlidingWindowCoreMonitor(window=5)
        monitor.observe(0, 1, 0)
        monitor.observe(0, 1, 3)  # refresh, expiry now 8
        assert monitor.stats.refreshes == 1
        assert monitor.advance_to(6) == 0
        assert monitor.live_edges() == 1
        assert monitor.advance_to(9) == 1
        assert monitor.live_edges() == 0

    def test_out_of_order_events_rejected(self):
        monitor = SlidingWindowCoreMonitor(window=5)
        monitor.observe(0, 1, 10)
        with pytest.raises(WorkloadError):
            monitor.observe(1, 2, 9)
        with pytest.raises(WorkloadError):
            monitor.advance_to(1)

    def test_undirected_edge_normalization(self):
        monitor = SlidingWindowCoreMonitor(window=10)
        monitor.observe(1, 0, 0)
        monitor.observe(0, 1, 1)  # same edge, reversed
        assert monitor.stats.arrivals == 1
        assert monitor.stats.refreshes == 1

    def test_drain_empties_window(self):
        monitor = SlidingWindowCoreMonitor(window=3)
        for t in range(5):
            monitor.observe(t, t + 1, t)
        drained = monitor.drain()
        assert monitor.live_edges() == 0
        assert drained > 0
        assert all(c == 0 for c in monitor.engine.core_numbers().values())

    def test_matches_batch_ground_truth(self):
        """At any instant the window cores equal a fresh decomposition of
        the currently-live edge set."""
        from repro.core.decomposition import core_numbers

        events = [
            (0, 1, 0.0), (1, 2, 1.0), (2, 0, 2.0), (2, 3, 3.0),
            (3, 0, 4.0), (3, 1, 5.5), (4, 0, 7.0), (4, 1, 7.5),
        ]
        monitor = SlidingWindowCoreMonitor(window=4.0)
        live: dict = {}
        for u, v, t in events:
            monitor.observe(u, v, t)
            edge = (min(u, v), max(u, v))
            live[edge] = t + 4.0
            current = {e for e, exp in live.items() if exp > t}
            truth = core_numbers(DynamicGraph(sorted(current)))
            for vertex, k in truth.items():
                assert monitor.core_of(vertex) == k, (t, vertex)

    def test_stats_and_timeline(self):
        monitor = SlidingWindowCoreMonitor(window=2)
        monitor.observe(0, 1, 0)
        monitor.observe(1, 2, 1)
        monitor.advance_to(10)
        assert monitor.stats.arrivals == 2
        assert monitor.stats.expiries == 2
        assert len(monitor.stats.degeneracy_timeline) == 2
        assert monitor.now == 10

"""Batch pipeline: batched vs per-edge throughput on a mixed workload.

The engine-layer claim: replaying a mixed insert/remove stream through
``apply_batch`` must never lose to the per-edge loop, and the order
engine must do measurably fewer ``mcd`` recomputations because insertion
runs coalesce their repair at the run boundary.  ``benchmark.extra_info``
carries the counters so the bench log doubles as the results table.
"""

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench.runner import build_engine, run_batches, run_mixed
from repro.bench.workloads import mixed_batch_workload
from repro.graphs.datasets import load_dataset

BATCH_SIZE = 100
MIX_P = 0.3


def _workload(name="gowalla"):
    dataset = load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    return mixed_batch_workload(
        dataset, BENCH_UPDATES, BATCH_SIZE, p=MIX_P, seed=BENCH_SEED
    )


@pytest.mark.parametrize("engine_name", ["order", "trav-2", "naive"])
def bench_batched_replay(benchmark, engine_name):
    workload, plan, batches = _workload()
    engine = build_engine(engine_name, workload.base_graph(), seed=BENCH_SEED)
    results = once(benchmark, run_batches, engine, batches)
    benchmark.extra_info["ops"] = len(plan)
    benchmark.extra_info["batches"] = len(batches)
    benchmark.extra_info["net_changed"] = sum(r.total_changed for r in results)
    mcd = getattr(engine, "mcd_recomputations", None)
    if mcd is not None:
        benchmark.extra_info["mcd_recomputations"] = mcd


@pytest.mark.parametrize("engine_name", ["order", "naive"])
def bench_per_edge_replay(benchmark, engine_name):
    workload, plan, _ = _workload()
    engine = build_engine(engine_name, workload.base_graph(), seed=BENCH_SEED)
    log = once(benchmark, run_mixed, engine, plan)
    benchmark.extra_info["ops"] = len(plan)
    mcd = getattr(engine, "mcd_recomputations", None)
    if mcd is not None:
        benchmark.extra_info["mcd_recomputations"] = mcd


def bench_batched_beats_per_edge_on_mcd_repair(benchmark):
    """The headline comparison in one bench: counters side by side."""
    workload, plan, batches = _workload()

    def run():
        per_edge = build_engine("order", workload.base_graph(), seed=BENCH_SEED)
        run_mixed(per_edge, plan)
        batched = build_engine("order", workload.base_graph(), seed=BENCH_SEED)
        run_batches(batched, batches)
        assert per_edge.core_numbers() == batched.core_numbers()
        return per_edge.mcd_recomputations, batched.mcd_recomputations

    per_edge_mcd, batched_mcd = once(benchmark, run)
    assert batched_mcd < per_edge_mcd
    benchmark.extra_info["mcd_per_edge"] = per_edge_mcd
    benchmark.extra_info["mcd_batched"] = batched_mcd
    benchmark.extra_info["saved"] = per_edge_mcd - batched_mcd

"""Fig. 11: OrderInsert scalability across subgraph sample fractions.

Paper shape: insertion time grows smoothly while |E| (resp. |V|) grows
rapidly — no superlinear blow-up on the three largest datasets.
"""

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments, reporting

FRACTIONS = (0.2, 0.6, 1.0)


@pytest.mark.parametrize("dataset", ["patents", "livejournal"])
def bench_fig11(benchmark, dataset):
    result = once(
        benchmark,
        experiments.fig11,
        dataset,
        fractions=FRACTIONS,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    assert len(result.vary_vertices) == len(FRACTIONS)
    assert len(result.vary_edges) == len(FRACTIONS)
    # Sampled sizes must actually grow along the axis.
    edge_ratios = [p.edge_ratio for p in result.vary_vertices]
    assert edge_ratios == sorted(edge_ratios)
    # Smooth growth: full-size time within a generous constant of the
    # smallest sample's time (the paper's "grows smoothly" claim).
    t_small = max(result.vary_edges[0].seconds, 1e-6)
    t_full = result.vary_edges[-1].seconds
    assert t_full / t_small < 60
    benchmark.extra_info["time_20pct_s"] = round(result.vary_edges[0].seconds, 3)
    benchmark.extra_info["time_100pct_s"] = round(t_full, 3)
    print()
    print(reporting.render_fig11([result]))

"""Fig. 12: stability of OrderInsert over many insertion groups.

Paper shape: per-group accumulated time stays bounded across 100 groups
(no degradation as the maintained order ages), with p = 0 / 0.1 / 0.2
removal mixes behaving alike.
"""

import statistics

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, once

from repro.bench import experiments, reporting

GROUPS = 10
GROUP_SIZE = 60


@pytest.mark.parametrize("p", [0.0, 0.1, 0.2])
def bench_fig12(benchmark, p):
    result = once(
        benchmark,
        experiments.fig12,
        "patents",
        n_groups=GROUPS,
        group_size=GROUP_SIZE,
        p=p,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    assert len(result.group_seconds) == GROUPS
    # No degradation drift: the last groups must not be systematically
    # slower than the first ones beyond noise.
    first_half = statistics.mean(result.group_seconds[: GROUPS // 2])
    second_half = statistics.mean(result.group_seconds[GROUPS // 2 :])
    assert second_half < max(first_half, 1e-6) * 5
    benchmark.extra_info["p"] = p
    benchmark.extra_info["mean_group_s"] = round(
        statistics.mean(result.group_seconds), 4
    )
    print()
    print(reporting.render_fig12([result]))

"""Sharded lock-free parallel batches vs the locked PR-3 region path.

The PR-3 scheduler partitions each batch into independent regions but
applies them under an engine-wide lock (the k-order blocks are shared),
so its thread pool is a scheduling seam, not a throughput win.  The
sharded engine gives each component group its own sub-engine — own
k-order blocks, own ``mcd`` slice — so per-shard sub-batches commit from
the pool with **no** shared-state lock, and the per-batch grouping is
O(batch) instead of the partitioner's walk over the touched subgraph.

The workload here is deliberately *partitionable*: many disconnected
pockets, every batch touching all of them — the regime both schedulers
were built for.  Each bench asserts agreement with the sequential
baseline, asserts the shard counters (``shards``, ``shard_merges``,
``cross_region_ops``, ``parallel_commits``) flow through
``BatchResult.counters``, and at meaningful stream lengths asserts the
lock-free schedule beats the locked one wall-clock (tiny CI smoke runs
only record the numbers).

Every bench appends a record to a ``BENCH_sharded_parallel.json``
artifact (seconds + ops/sec per schedule, plus the shard counters) so CI
keeps a machine-readable perf trajectory; set
``REPRO_BENCH_ARTIFACT_DIR`` to choose where it lands.
"""

import json
import os
import random
from pathlib import Path

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench.runner import build_engine, run_batches
from repro.engine.batch import Batch
from repro.graphs.undirected import DynamicGraph

#: Disconnected pockets in the synthetic partitionable graph.
POCKETS = int(os.environ.get("REPRO_BENCH_POCKETS", "8"))
#: Vertices per pocket (scaled like the dataset benches).
POCKET_SIZE = max(8, int(40 * BENCH_SCALE))
#: Worker count for both parallel schedules.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
#: Ops per batch across all pockets.
WINDOW = int(os.environ.get("REPRO_BENCH_WINDOW", "48"))
#: Below this many ops, wall-clock asserts are skipped (small runs take
#: single-digit milliseconds end to end, where timing is pure noise)
#: but the numbers are still recorded.  A scale-1.0 run clears this and
#: asserts the lock-free win.
WALL_CLOCK_MIN_OPS = 500

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the accumulated records once the module's benches finish."""
    _RECORDS.clear()
    yield
    path = (
        Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
        / "BENCH_sharded_parallel.json"
    )
    path.write_text(
        json.dumps(
            {
                "benchmark": "sharded_parallel",
                "scale": BENCH_SCALE,
                "updates": BENCH_UPDATES,
                "pockets": POCKETS,
                "pocket_size": POCKET_SIZE,
                "workers": WORKERS,
                "window": WINDOW,
                "records": _RECORDS,
            },
            indent=2,
        )
    )


def pockets_workload(n_updates, seed=BENCH_SEED, p_insert=0.0):
    """A multi-pocket graph plus batches that touch every pocket.

    Returns ``(edges, batches)``: the base graph's edge list and a
    stream of mixed batches built round-robin across the pockets, so
    every batch splits into ``POCKETS`` independent regions.  With
    ``p_insert`` some removed edges come back in later batches.
    """
    rng = random.Random(seed)
    per_pocket: list[list] = []
    edges = []
    for b in range(POCKETS):
        base = b * POCKET_SIZE * 2
        verts = range(base, base + POCKET_SIZE)
        pairs = [(i, j) for i in verts for j in verts if i < j]
        rng.shuffle(pairs)
        keep = pairs[: POCKET_SIZE * 3]
        per_pocket.append(keep)
        edges.extend(keep)
    quota = min(n_updates // POCKETS, 2 * len(per_pocket[0]) // 3)
    victims = [pocket[:quota] for pocket in per_pocket]
    removed: list[list] = [[] for _ in range(POCKETS)]
    batches = []
    cursor = 0
    per_batch = max(1, WINDOW // POCKETS)
    while cursor < quota:
        batch = Batch()
        for b in range(POCKETS):
            for edge in victims[b][cursor : cursor + per_batch]:
                batch.remove(*edge)
                removed[b].append(edge)
            if p_insert and removed[b] and rng.random() < p_insert:
                batch.insert(*removed[b].pop(0))
        if batch:
            batches.append(batch)
        cursor += per_batch
    return edges, batches


def _seconds(results):
    return sum(r.seconds for r in results)


def _record(name, ops, sequential_s, locked_s, sharded_s, counters):
    entry = {
        "bench": name,
        "ops": ops,
        "workers": WORKERS,
        "sequential_seconds": round(sequential_s, 6),
        "locked_parallel_seconds": round(locked_s, 6),
        "sharded_parallel_seconds": round(sharded_s, 6),
        "sequential_ops_per_sec": (
            round(ops / sequential_s, 1) if sequential_s else None
        ),
        "locked_ops_per_sec": round(ops / locked_s, 1) if locked_s else None,
        "sharded_ops_per_sec": (
            round(ops / sharded_s, 1) if sharded_s else None
        ),
        "speedup_vs_locked": (
            round(locked_s / sharded_s, 3) if sharded_s else None
        ),
        "counters": counters,
    }
    _RECORDS.append(entry)
    return entry


@pytest.mark.parametrize("sequence", ["om", "treap"])
def bench_window_expiry_sharded_vs_locked(benchmark, sequence):
    """Window expiry across pockets: the headline lock-free comparison."""
    edges, batches = pockets_workload(BENCH_UPDATES)
    ops = sum(len(b) for b in batches)

    def run():
        sequential = build_engine(
            "order", DynamicGraph(edges),
            seed=BENCH_SEED, sequence=sequence,
        )
        seq_results = run_batches(sequential, batches)
        locked = build_engine(
            "order", DynamicGraph(edges),
            seed=BENCH_SEED, sequence=sequence,
            partition=True, parallel=WORKERS,
        )
        locked_results = run_batches(locked, batches)
        sharded = build_engine(
            "order-sharded", DynamicGraph(edges),
            seed=BENCH_SEED, sequence=sequence, parallel=WORKERS,
        )
        sharded_results = run_batches(sharded, batches)
        assert sequential.core_numbers() == locked.core_numbers()
        assert sequential.core_numbers() == sharded.core_numbers()
        return seq_results, locked_results, sharded_results, sharded

    seq_results, locked_results, sharded_results, sharded = once(
        benchmark, run
    )
    # The lock-free claim, in counters: every multi-region batch
    # committed its regions from the pool, and the shards stayed put.
    assert all(
        r.counters["parallel_commits"] == r.counters["regions"]
        for r in sharded_results
        if r.counters["regions"] > 1
    )
    assert sharded_results[0].counters["shards"] == POCKETS
    assert all(
        # Omitted when no merge machinery ever ran (counter hygiene).
        r.counters.get("shard_merges", 0) == 0 for r in sharded_results
    )
    entry = _record(
        f"window_expiry[{sequence}]", ops,
        _seconds(seq_results), _seconds(locked_results),
        _seconds(sharded_results),
        {
            "shards": sharded_results[-1].counters["shards"],
            "regions_per_batch": sharded_results[0].counters["regions"],
            "parallel_commits": sum(
                r.counters["parallel_commits"] for r in sharded_results
            ),
            "cross_region_ops": sharded.cross_region_ops,
        },
    )
    benchmark.extra_info.update(entry)
    if ops >= WALL_CLOCK_MIN_OPS:
        assert _seconds(sharded_results) < _seconds(locked_results), (
            f"lock-free sharded commits should beat the locked region "
            f"path: {_seconds(sharded_results):.3f}s vs "
            f"{_seconds(locked_results):.3f}s ({sequence})"
        )


def bench_mixed_stream_sharded_vs_locked(benchmark):
    """Mixed expiry/arrival batches: merges stay zero (arrivals return
    inside their pocket), so the schedule stays embarrassingly parallel."""
    edges, batches = pockets_workload(BENCH_UPDATES, p_insert=0.4)
    ops = sum(len(b) for b in batches)

    def run():
        sequential = build_engine(
            "order", DynamicGraph(edges), seed=BENCH_SEED
        )
        seq_results = run_batches(sequential, batches)
        locked = build_engine(
            "order", DynamicGraph(edges),
            seed=BENCH_SEED, partition=True, parallel=WORKERS,
        )
        locked_results = run_batches(locked, batches)
        sharded = build_engine(
            "order-sharded", DynamicGraph(edges),
            seed=BENCH_SEED, parallel=WORKERS,
        )
        sharded_results = run_batches(sharded, batches)
        assert sequential.core_numbers() == locked.core_numbers()
        assert sequential.core_numbers() == sharded.core_numbers()
        return seq_results, locked_results, sharded_results, sharded

    seq_results, locked_results, sharded_results, sharded = once(
        benchmark, run
    )
    entry = _record(
        "mixed_stream", ops,
        _seconds(seq_results), _seconds(locked_results),
        _seconds(sharded_results),
        {
            "shards": sharded_results[-1].counters["shards"],
            "parallel_commits": sum(
                r.counters["parallel_commits"] for r in sharded_results
            ),
            "shard_merges": sharded.shard_merges,
            "cross_region_ops": sharded.cross_region_ops,
        },
    )
    benchmark.extra_info.update(entry)
    if ops >= WALL_CLOCK_MIN_OPS:
        assert _seconds(sharded_results) < _seconds(locked_results)

"""Maintenance vs. recomputation: the problem statement's motivation.

Not a numbered figure — this is the paper's introduction quantified: how
much does *any* maintenance buy over rerunning the linear decomposition
per update, and how much more does the order-based engine buy on top.
"""

from _bench_common import BENCH_SEED, once

from repro.bench.runner import build_engine, run_updates
from repro.bench.workloads import make_workload
from repro.graphs.datasets import load_dataset


def bench_naive_vs_maintenance(benchmark):
    dataset = load_dataset("gowalla", scale=0.35, seed=BENCH_SEED)
    workload = make_workload(dataset, 60, seed=BENCH_SEED)

    def run_all_engines():
        times = {}
        for name in ("naive", "trav-2", "order"):
            engine = build_engine(name, workload.base_graph(), seed=BENCH_SEED)
            log = run_updates(engine, workload.update_edges, "insert")
            times[name] = log.total_seconds
        return times

    times = once(benchmark, run_all_engines)
    # Maintenance beats recomputation by a wide margin; order beats trav.
    assert times["order"] < times["trav-2"] < times["naive"]
    benchmark.extra_info["naive_s"] = round(times["naive"], 3)
    benchmark.extra_info["trav2_s"] = round(times["trav-2"], 3)
    benchmark.extra_info["order_s"] = round(times["order"], 3)
    benchmark.extra_info["order_vs_naive"] = round(
        times["naive"] / max(times["order"], 1e-9), 1
    )
    print(
        f"\nnaive {times['naive']:.3f}s | trav-2 {times['trav-2']:.3f}s | "
        f"order {times['order']:.3f}s "
        f"({times['naive'] / max(times['order'], 1e-9):.0f}x vs naive)"
    )

"""Table III: index creation time (one-time cost).

Paper shape: the order-based index costs about the same as Trav-2 to a
small factor (the paper reports ~2x including core decomposition), and
traversal creation time grows with the hop count h.
"""

import pytest
from _bench_common import BENCH_DATASETS, BENCH_SCALE, BENCH_SEED, once

from repro.bench import experiments, reporting

HOPS = (2, 3, 4)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_table3(benchmark, dataset):
    row = once(
        benchmark,
        experiments.table3,
        dataset,
        hops=HOPS,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    # Hierarchy depth makes traversal index creation slower.
    assert row.build_seconds["trav-4"] > row.build_seconds["trav-2"] * 0.8
    # The order index stays within a small factor of Trav-2.
    assert row.build_seconds["order"] < row.build_seconds["trav-2"] * 8
    for engine, seconds in row.build_seconds.items():
        benchmark.extra_info[engine] = round(seconds, 3)
    print()
    print(reporting.render_table3([row]))

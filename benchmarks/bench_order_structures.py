"""Microbenchmark: ``TaggedOrderList`` vs ``OrderStatisticTreap``.

Two comparisons back the OM-backend claim (see ISSUE 2 / ROADMAP):

* a structure-level replay of one pre-generated insert/delete/precedes
  op tape on both backends — the OM list must at least match the treap,
  because every ``precedes`` is a label comparison instead of two
  O(log n) rank walks;
* the table-2 insert workload replayed through ``order-om`` vs
  ``order-treap`` engines — the counters prove the hot path changed:
  the OM run answers the same ``order_queries`` with **zero**
  ``rank_walk_steps``.

``benchmark.extra_info`` carries timings and counters, so a
``--benchmark-json`` run doubles as the results log (the suite's
existing reporting convention).  ``REPRO_SEQ_OPS`` scales the op tape
(CI smoke runs use a tiny value).
"""

import os
import random

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench.runner import build_engine, run_updates
from repro.bench.workloads import make_workload
from repro.graphs.datasets import load_dataset
from repro.structures.sequence import SequenceStats, TaggedOrderList
from repro.structures.treap import OrderStatisticTreap

#: Length of the structure-level op tape.
SEQ_OPS = int(os.environ.get("REPRO_SEQ_OPS", "20000"))

#: Timer-noise margin for the head-to-head timing assertion.
TIMING_MARGIN = 1.5

#: Below this tape length the replays take only milliseconds and fixed
#: costs dominate, so the timing assertion is skipped (the deterministic
#: counter assertions still run) — CI smoke uses REPRO_SEQ_OPS=2000.
TIMING_ASSERT_MIN_OPS = 10000


def _make_backend(name, stats):
    if name == "om":
        return TaggedOrderList(stats=stats)
    return OrderStatisticTreap(rng=random.Random(BENCH_SEED), stats=stats)


def _op_tape(n_ops, seed=BENCH_SEED):
    """A reproducible insert/delete/precedes mix with concrete operands.

    Generated against a plain-list mirror *outside* the benchmark clock,
    so the replay below times only the structure under test.  The mix
    leans on ``insert_after`` (the ``OrderInsert`` repositioning shape)
    with scattered removals and a precedes-heavy tail, roughly matching
    the engine's read/write ratio.
    """
    rng = random.Random(seed)
    mirror = []
    tape = []
    next_item = 0
    for _ in range(n_ops):
        roll = rng.random()
        if not mirror or roll < 0.25:
            if not mirror or roll < 0.05:
                tape.append(("back", next_item))
                mirror.append(next_item)
            else:
                anchor = mirror[rng.randrange(len(mirror))]
                tape.append(("after", anchor, next_item))
                mirror.insert(mirror.index(anchor) + 1, next_item)
            next_item += 1
        elif roll < 0.35 and len(mirror) > 1:
            victim = mirror.pop(rng.randrange(len(mirror)))
            tape.append(("remove", victim))
        else:
            a, b = rng.sample(mirror, 2) if len(mirror) > 1 else (mirror[0], mirror[0])
            tape.append(("precedes", a, b))
    return tape


def _replay(backend_name, tape):
    stats = SequenceStats()
    seq = _make_backend(backend_name, stats)
    for op in tape:
        kind = op[0]
        if kind == "back":
            seq.insert_back(op[1])
        elif kind == "after":
            seq.insert_after(op[1], op[2])
        elif kind == "remove":
            seq.remove(op[1])
        else:
            seq.precedes(op[1], op[2])
    return seq, stats


@pytest.mark.parametrize("backend", ["om", "treap"])
def bench_sequence_mixed(benchmark, backend):
    """One backend's replay of the shared mixed op tape."""
    tape = _op_tape(SEQ_OPS)
    seq, stats = once(benchmark, _replay, backend, tape)
    benchmark.extra_info["ops"] = len(tape)
    benchmark.extra_info["final_size"] = len(seq)
    benchmark.extra_info.update(stats.as_dict())
    seq.check_invariants()
    if backend == "om":
        assert stats.rank_walk_steps == 0, (
            "the OM list must never rank-walk on this workload"
        )
    else:
        assert stats.rank_walk_steps > 0


def bench_sequence_mixed_head_to_head(benchmark):
    """Both backends on one tape: OM must at least match the treap."""
    tape = _op_tape(SEQ_OPS)

    def run():
        import time

        t0 = time.perf_counter()
        _, om_stats = _replay("om", tape)
        t1 = time.perf_counter()
        _, treap_stats = _replay("treap", tape)
        t2 = time.perf_counter()
        return t1 - t0, t2 - t1, om_stats, treap_stats

    om_seconds, treap_seconds, om_stats, treap_stats = once(benchmark, run)
    benchmark.extra_info["om_s"] = round(om_seconds, 4)
    benchmark.extra_info["treap_s"] = round(treap_seconds, 4)
    benchmark.extra_info["om_relabels"] = om_stats.relabels
    benchmark.extra_info["treap_rank_walk_steps"] = treap_stats.rank_walk_steps
    # Same order tests answered; only the mechanism differs.
    assert om_stats.order_queries == treap_stats.order_queries
    assert om_stats.rank_walk_steps == 0
    if len(tape) >= TIMING_ASSERT_MIN_OPS:
        assert om_seconds <= treap_seconds * TIMING_MARGIN, (
            "TaggedOrderList must at least match the treap on the mixed tape"
        )


@pytest.mark.parametrize("dataset", ["gowalla", "patents"])
def bench_table2_insert_om_vs_treap(benchmark, dataset):
    """Table-2 insert workload, order engine under both sequence backends.

    The headline counter claim: identical insertion work, but the OM run
    spends zero pointer hops on rank walks — the treap's per-query
    O(log n) cost is gone from the hot path.
    """
    data = load_dataset(dataset, scale=BENCH_SCALE, seed=BENCH_SEED)
    workload = make_workload(data, BENCH_UPDATES, seed=BENCH_SEED)

    def run():
        import time

        timings = {}
        engines = {}
        for name in ("order-om", "order-treap"):
            engine = build_engine(name, workload.base_graph(), seed=BENCH_SEED)
            t0 = time.perf_counter()
            run_updates(engine, workload.update_edges, "insert")
            timings[name] = time.perf_counter() - t0
            engines[name] = engine
        return timings, engines

    timings, engines = once(benchmark, run)
    om, treap = engines["order-om"], engines["order-treap"]
    assert om.core_numbers() == treap.core_numbers()
    om_stats, treap_stats = om.sequence_stats, treap.sequence_stats
    assert om_stats.rank_walk_steps == 0, (
        "order-om must answer every insert-path order test without ranks"
    )
    assert treap_stats.rank_walk_steps > 0
    benchmark.extra_info["om_s"] = round(timings["order-om"], 3)
    benchmark.extra_info["treap_s"] = round(timings["order-treap"], 3)
    benchmark.extra_info["om_order_queries"] = om_stats.order_queries
    benchmark.extra_info["om_relabels"] = om_stats.relabels
    benchmark.extra_info["treap_rank_walk_steps"] = treap_stats.rank_walk_steps

"""Table II (left half): accumulated insertion time, Order vs Trav-h.

Paper shape: OrderInsert wins on every dataset — modestly on small/sparse
graphs, by orders of magnitude on the citation/social graphs whose
purecores explode (Patents: 2944s vs 0.88s).
"""

import pytest
from _bench_common import BENCH_DATASETS, BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments, reporting

HOPS = (2, 3)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_table2_insert(benchmark, dataset):
    row = once(
        benchmark,
        experiments.table2,
        dataset,
        n_updates=BENCH_UPDATES,
        hops=HOPS,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    # OrderInsert beats Trav-2 on every dataset in the paper; at bench
    # scale the sparse road network finishes in milliseconds, so allow a
    # timer-noise margin there rather than asserting a strict win.
    margin = 1.5 if dataset == "ca" else 1.0
    assert row.insert_seconds["order"] < row.insert_seconds["trav-2"] * margin, (
        "OrderInsert must beat Trav-2 (Table II)"
    )
    benchmark.extra_info["order_s"] = round(row.insert_seconds["order"], 3)
    benchmark.extra_info["trav2_s"] = round(row.insert_seconds["trav-2"], 3)
    benchmark.extra_info["speedup_vs_trav2"] = round(row.insert_speedup(), 1)
    print()
    print(reporting.render_table2([row]))

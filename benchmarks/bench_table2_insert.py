"""Table II (left half): accumulated insertion time, Order vs Trav-h.

Paper shape: OrderInsert wins on every dataset — modestly on small/sparse
graphs, by orders of magnitude on the citation/social graphs whose
purecores explode (Patents: 2944s vs 0.88s).

The replay also races ``order-simplified`` (Guo & Sekerinski's no-mcd
variant) on the same stream: it must land in the order family's
ballpark, never the traversal one.  The dedicated head-to-head with
counters lives in ``bench_simplified_ablation.py``.
"""

import pytest
from _bench_common import BENCH_DATASETS, BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments, reporting

HOPS = (2, 3)
ENGINES = ["order", "order-simplified"] + [f"trav-{h}" for h in HOPS]


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_table2_insert(benchmark, dataset):
    row = once(
        benchmark,
        experiments.table2,
        dataset,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        engines=ENGINES,
    )
    # OrderInsert beats Trav-2 on every dataset in the paper; at bench
    # scale the sparse road network finishes in milliseconds, so allow a
    # timer-noise margin there rather than asserting a strict win.
    margin = 1.5 if dataset == "ca" else 1.0
    assert row.insert_seconds["order"] < row.insert_seconds["trav-2"] * margin, (
        "OrderInsert must beat Trav-2 (Table II)"
    )
    # The simplified engine runs the same scan without mcd repair: it
    # must stay within timer noise of the default order hot path (the
    # strict head-to-head, with counters, is bench_simplified_ablation).
    assert (
        row.insert_seconds["order-simplified"]
        < row.insert_seconds["order"] * 2 + 0.05
    ), "simplified insertion left the order family's ballpark"
    benchmark.extra_info["order_s"] = round(row.insert_seconds["order"], 3)
    benchmark.extra_info["simplified_s"] = round(
        row.insert_seconds["order-simplified"], 3
    )
    benchmark.extra_info["trav2_s"] = round(row.insert_seconds["trav-2"], 3)
    benchmark.extra_info["speedup_vs_trav2"] = round(row.insert_speedup(), 1)
    print()
    print(reporting.render_table2([row]))

"""Benchmark-suite conftest (shared helpers live in ``_bench_common``)."""

"""Fig. 9: |V+|/|V*| for the three k-order generation heuristics.

Paper shape: "small deg+ first" consistently beats "large deg+ first";
"random" sits between (occasionally close to small).
"""

import pytest
from _bench_common import BENCH_DATASETS, BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments, reporting


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_fig9(benchmark, dataset):
    result = once(
        benchmark,
        experiments.fig9,
        dataset,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    # The paper's recommendation must never lose to "large deg+ first".
    assert result.ratios["small"] <= result.ratios["large"] * 1.05
    for policy, ratio in result.ratios.items():
        benchmark.extra_info[policy] = round(ratio, 2)
    print()
    print(reporting.render_fig9([result]))

"""Table I: dataset statistics (generation + static decomposition cost)."""

from _bench_common import BENCH_SCALE, BENCH_SEED, once

from repro.bench import experiments, reporting


def bench_table1(benchmark):
    rows = once(
        benchmark, experiments.table1, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    assert len(rows) == 11
    for row in rows:
        # Stand-ins must stay in the structural ballpark of the originals.
        assert row.avg_deg > row.paper_avg_deg / 4
        assert row.avg_deg < row.paper_avg_deg * 4
    benchmark.extra_info["datasets"] = len(rows)
    benchmark.extra_info["total_edges"] = sum(r.m for r in rows)
    print()
    print(reporting.render_table1(rows))

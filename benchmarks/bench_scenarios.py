"""Scenario-engine throughput: every workload family, head to head.

Each registered scenario family (:mod:`repro.scenarios.generators`)
replays through ``CoreService`` on the engine matrix — the paper's
order-based engine, the Guo–Sekerinski simplified variant and the
sharded deployment shape — and every replay pair must checkpoint
identical per-tick core maps (the agreement check is part of the bench,
so a perf artifact can never come from diverging answers).  A final
bench measures the trace format itself: record + verify + load of the
largest generated stream.

Scale knobs: ``REPRO_BENCH_SCALE`` multiplies the scenario sizes and
``REPRO_BENCH_TICKS`` the tick counts.  Every bench appends a record to
a ``BENCH_scenarios.json`` artifact; set ``REPRO_BENCH_ARTIFACT_DIR``
to choose where it lands.
"""

import json
import os
import time
from pathlib import Path

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED

from repro import scenarios as sc

#: Tick-count multiplier for the generated streams.
BENCH_TICKS = int(os.environ.get("REPRO_BENCH_TICKS", "24"))

#: The agreement matrix every family replays across.
ENGINES = ("order", "order-simplified", "order-sharded")

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the accumulated records once the module's benches finish."""
    _RECORDS.clear()
    yield
    path = (
        Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
        / "BENCH_scenarios.json"
    )
    path.write_text(
        json.dumps(
            {
                "benchmark": "scenarios",
                "scale": BENCH_SCALE,
                "ticks": BENCH_TICKS,
                "engines": list(ENGINES),
                "records": _RECORDS,
            },
            indent=2,
        )
    )


def _bench_params(name: str) -> dict:
    """Per-family knobs scaled to the bench tick budget."""
    return {
        "burst": dict(ticks=BENCH_TICKS),
        "sliding-window": dict(ticks=BENCH_TICKS),
        "flash-crowd": dict(waves=max(2, BENCH_TICKS // 8)),
        "relabel-storm": dict(ticks=BENCH_TICKS),
        "shard-merge-storm": dict(cycles=max(2, BENCH_TICKS // 4)),
        "mixed": dict(),
    }[name]


def _scenario(name: str) -> sc.Scenario:
    return sc.make_scenario(
        name, seed=BENCH_SEED, scale=BENCH_SCALE, **_bench_params(name)
    )


@pytest.mark.parametrize("name", sorted(sc.SCENARIOS))
def bench_scenario_family(benchmark, name):
    """Replay one family across the engine matrix, agreement-checked."""
    scenario = _scenario(name)

    def run():
        return sc.replay_all(scenario, ENGINES, seed=BENCH_SEED, check=True)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    entry = {
        "bench": "scenario_family",
        "scenario": name,
        "ticks": scenario.n_ticks,
        "ops": scenario.n_ops,
        "base_edges": len(scenario.base_edges),
        "final_digest": reports[ENGINES[0]].checkpoints[-1].digest,
        "engines": {
            engine: {
                "seconds": round(report.elapsed, 6),
                "ops_per_sec": round(report.ops_per_second, 1),
            }
            for engine, report in reports.items()
        },
    }
    _RECORDS.append(entry)
    benchmark.extra_info.update(
        ops=entry["ops"],
        order_ops_per_sec=entry["engines"]["order"]["ops_per_sec"],
    )


def bench_trace_format(benchmark, tmp_path):
    """Record + verify + load cost of the biggest generated stream."""
    scenario = max(
        (_scenario(name) for name in sc.SCENARIOS),
        key=lambda s: s.n_ops,
    )
    path = tmp_path / "bench.trace"

    def run():
        started = time.perf_counter()
        written = sc.record(scenario, path)
        recorded = time.perf_counter()
        sc.verify(path)
        verified = time.perf_counter()
        loaded = sc.load(path)
        done = time.perf_counter()
        assert loaded == scenario
        return {
            "bytes": written,
            "record_seconds": round(recorded - started, 6),
            "verify_seconds": round(verified - recorded, 6),
            "load_seconds": round(done - verified, 6),
        }

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    _RECORDS.append(
        {
            "bench": "trace_format",
            "scenario": scenario.name,
            "ops": scenario.n_ops,
            **timings,
        }
    )
    benchmark.extra_info.update(timings)

"""Head-to-head ablation: ``order`` vs ``order-simplified``.

Both engines run the *same* scan and cascade; the only difference is the
bookkeeping around them.  The default engine maintains ``mcd`` with a
targeted repair pass after every update (charged as
``mcd_recomputations``); the simplified engine (Guo & Sekerinski, arXiv
2201.07103) keeps two order-local degrees whose upkeep is folded into
the scan itself, so the repair pass — and the ``mcd`` structure —
disappears.  Its chargeable work is the candidate scan
(``candidate_visits``).

Three replays on the Table II workloads, all asserting core agreement:

* per-edge insertion (the Table II left half, order family only);
* per-edge removal (the right half — where the per-edge ``mcd`` refresh
  is the default engine's dominant overhead);
* a mixed batched stream through ``apply_batch`` — one recorded
  ``mixed`` scenario replayed tick-for-tick on both engines.  Since the
  simplified engine gained batch-native runs, both sides amortize their
  bookkeeping across joint cascades here; this head-to-head decides the
  registry default (see ROADMAP).

Wall-clock is asserted only as a sanity bound (and only at meaningful
stream lengths — tiny CI smoke runs record numbers without flaking);
the counter comparison is exact and always asserted.  Every bench
appends a record to ``BENCH_simplified_ablation.json`` (seconds +
ops/sec per engine, counter head-to-head); set
``REPRO_BENCH_ARTIFACT_DIR`` to choose where it lands.
"""

import json
import os
from pathlib import Path

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench.runner import build_engine, run_batches, run_updates
from repro.bench.workloads import make_workload
from repro.graphs.datasets import load_dataset
from repro.scenarios import make_scenario

#: Datasets for the ablation (social + citation: the regimes where the
#: paper's order-based gains are largest).
ABLATION_DATASETS = ("facebook", "gowalla", "patents")
#: Below this many ops the wall-clock sanity bound is skipped (tiny runs
#: are timer noise) but the numbers are still recorded.
WALL_CLOCK_MIN_OPS = 500
#: Sanity bound: the simplified engine must never be worse than this
#: factor of the default order engine on the same replay.  Deliberately
#: loose — this guards against a regression breaking the no-repair
#: claim, not a strict wall-clock win (pure-Python timing at bench scale
#: is too noisy to hard-fail on).
SANITY_FACTOR = 1.5

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the accumulated records once the module's benches finish."""
    _RECORDS.clear()
    yield
    path = (
        Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
        / "BENCH_simplified_ablation.json"
    )
    path.write_text(
        json.dumps(
            {
                "benchmark": "simplified_ablation",
                "scale": BENCH_SCALE,
                "updates": BENCH_UPDATES,
                "sanity_factor": SANITY_FACTOR,
                "records": _RECORDS,
            },
            indent=2,
        )
    )


def _record(name, ops, order_s, simplified_s, counters):
    entry = {
        "bench": name,
        "ops": ops,
        "order_seconds": round(order_s, 6),
        "simplified_seconds": round(simplified_s, 6),
        "order_ops_per_sec": round(ops / order_s, 1) if order_s else None,
        "simplified_ops_per_sec": (
            round(ops / simplified_s, 1) if simplified_s else None
        ),
        "simplified_speedup": (
            round(order_s / simplified_s, 3) if simplified_s else None
        ),
        "counters": counters,
    }
    _RECORDS.append(entry)
    return entry


def _assert_sanity(name, ops, order_s, simplified_s):
    if ops >= WALL_CLOCK_MIN_OPS:
        assert simplified_s < order_s * SANITY_FACTOR, (
            f"{name}: simplified replay fell outside the sanity bound "
            f"({simplified_s:.3f}s vs {order_s:.3f}s x{SANITY_FACTOR})"
        )


@pytest.mark.parametrize("dataset", ABLATION_DATASETS)
def bench_simplified_insert(benchmark, dataset):
    """Per-edge insertion replay: scan work identical, repair pass gone."""
    workload = make_workload(
        load_dataset(dataset, scale=BENCH_SCALE, seed=BENCH_SEED),
        BENCH_UPDATES,
        seed=BENCH_SEED,
    )

    def run():
        order = build_engine("order", workload.base_graph(), seed=BENCH_SEED)
        order_log = run_updates(order, workload.update_edges, "insert")
        simplified = build_engine(
            "order-simplified", workload.base_graph(), seed=BENCH_SEED
        )
        simplified_log = run_updates(
            simplified, workload.update_edges, "insert"
        )
        assert order.core_numbers() == simplified.core_numbers()
        return order, order_log, simplified, simplified_log

    order, order_log, simplified, simplified_log = once(benchmark, run)
    # Same algorithmic search space on both sides; the bookkeeping the
    # simplified engine dropped shows up only in the default engine's
    # repair counter.
    assert simplified_log.total_visited == order_log.total_visited
    assert order.mcd_recomputations > 0
    assert not hasattr(simplified, "mcd_recomputations")
    entry = _record(
        f"insert[{dataset}]",
        len(workload.update_edges),
        order_log.total_seconds,
        simplified_log.total_seconds,
        {
            "visited": order_log.total_visited,
            "mcd_recomputations": order.mcd_recomputations,
            "candidate_visits": simplified.candidate_visits,
            "order_queries_order": order.sequence_stats.order_queries,
            "order_queries_simplified": (
                simplified.sequence_stats.order_queries
            ),
        },
    )
    benchmark.extra_info.update(entry)
    _assert_sanity(
        entry["bench"], entry["ops"],
        order_log.total_seconds, simplified_log.total_seconds,
    )


@pytest.mark.parametrize("dataset", ABLATION_DATASETS)
def bench_simplified_remove(benchmark, dataset):
    """Per-edge removal replay: the per-edge ``mcd`` refresh is the
    default engine's dominant per-removal overhead — the regime the
    simplification targets."""
    workload = make_workload(
        load_dataset(dataset, scale=BENCH_SCALE, seed=BENCH_SEED),
        BENCH_UPDATES,
        seed=BENCH_SEED,
    )
    removals = list(reversed(workload.update_edges))

    def run():
        order = build_engine("order", workload.full_graph(), seed=BENCH_SEED)
        order_log = run_updates(order, removals, "remove")
        simplified = build_engine(
            "order-simplified", workload.full_graph(), seed=BENCH_SEED
        )
        simplified_log = run_updates(simplified, removals, "remove")
        assert order.core_numbers() == simplified.core_numbers()
        return order, order_log, simplified, simplified_log

    order, order_log, simplified, simplified_log = once(benchmark, run)
    assert simplified_log.total_visited == order_log.total_visited
    assert order.mcd_recomputations > 0
    entry = _record(
        f"remove[{dataset}]",
        len(removals),
        order_log.total_seconds,
        simplified_log.total_seconds,
        {
            "visited": order_log.total_visited,
            "mcd_recomputations": order.mcd_recomputations,
            "candidate_visits": simplified.candidate_visits,
            "order_queries_order": order.sequence_stats.order_queries,
            "order_queries_simplified": (
                simplified.sequence_stats.order_queries
            ),
        },
    )
    benchmark.extra_info.update(entry)
    _assert_sanity(
        entry["bench"], entry["ops"],
        order_log.total_seconds, simplified_log.total_seconds,
    )


def bench_simplified_mixed_batches(benchmark):
    """Mixed batched stream through ``apply_batch`` — both engines now
    run batch-native removal runs, so this head-to-head is what decides
    the registry default.  The stream is one recorded ``mixed`` scenario
    (the canonical :func:`repro.scenarios.make_scenario` generator),
    built once and replayed tick-for-tick on both engines: byte-identical
    across engines and across runs at the same seed/scale, never
    re-seeded per engine.
    """
    # Size the scenario so the op count tracks BENCH_UPDATES (the mixed
    # generator's n is 150 * scale, and the plan is ~1.1 ops per vertex).
    scenario = make_scenario(
        "mixed",
        seed=BENCH_SEED,
        scale=BENCH_UPDATES / 150,
        tick_ops=50,
        p=0.3,
    )
    batches = [tick.batch for tick in scenario.ticks]

    def run():
        order = build_engine("order", scenario.base_graph(), seed=BENCH_SEED)
        order_results = run_batches(order, batches)
        simplified = build_engine(
            "order-simplified", scenario.base_graph(), seed=BENCH_SEED
        )
        simplified_results = run_batches(simplified, batches)
        assert order.core_numbers() == simplified.core_numbers()
        return order_results, simplified_results

    order_results, simplified_results = once(benchmark, run)
    order_s = sum(r.seconds for r in order_results)
    simplified_s = sum(r.seconds for r in simplified_results)
    # The counter swap, visible at the BatchResult level.
    assert not any(
        "mcd_recomputations" in r.counters for r in simplified_results
    )
    assert not any(
        "candidate_visits" in r.counters for r in order_results
    )
    entry = _record(
        "mixed_batches[scenario:mixed]",
        scenario.n_ops,
        order_s,
        simplified_s,
        {
            "batches": len(batches),
            "mcd_recomputations": sum(
                r.counters.get("mcd_recomputations", 0)
                for r in order_results
            ),
            "candidate_visits": sum(
                r.counters.get("candidate_visits", 0)
                for r in simplified_results
            ),
        },
    )
    benchmark.extra_info.update(entry)
    _assert_sanity(entry["bench"], entry["ops"], order_s, simplified_s)

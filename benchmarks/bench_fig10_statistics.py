"""Fig. 10: core-number CDF (a) and update-edge K CDF (b) per dataset."""

import pytest
from _bench_common import BENCH_DATASETS, BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments, reporting


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_fig10a_core_cdf(benchmark, dataset):
    result = once(
        benchmark,
        experiments.fig10a,
        dataset,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    assert result.fractions[-1] == pytest.approx(1.0)
    assert result.fractions == sorted(result.fractions)
    benchmark.extra_info["max_core"] = max(result.xs)
    print()
    print(reporting.render_fig10([result], "core CDF"))


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_fig10b_update_k_cdf(benchmark, dataset):
    result = once(
        benchmark,
        experiments.fig10b,
        dataset,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    # Sampled edges must cover a non-trivial range of K levels (the paper
    # argues the samples are representative because of this).
    assert len(result.xs) >= 1
    benchmark.extra_info["k_levels_covered"] = len(result.xs)
    print()
    print(reporting.render_fig10([result], "K CDF"))

"""Fig. 2: ratio of vertices visited to vertices updated.

Paper shape: traversal ratio >= 7 (up to ~10,000 on Patents/Pokec); the
order-based ratio stays below ~4 and can approach 1.
"""

import pytest
from _bench_common import BENCH_DATASETS, BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments, reporting


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_fig2(benchmark, dataset):
    result = once(
        benchmark,
        experiments.fig2,
        dataset,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    assert result.order_ratio <= result.traversal_ratio
    benchmark.extra_info["traversal_ratio"] = round(result.traversal_ratio, 1)
    benchmark.extra_info["order_ratio"] = round(result.order_ratio, 2)
    print()
    print(reporting.render_fig2([result]))

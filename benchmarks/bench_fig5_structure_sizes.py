"""Fig. 5: cumulative size distributions of purecore / subcore / ordercore.

Paper shape (Patents & Orkut): order cores are far smaller and tighter —
~90% of vertices have oc in the hundreds or less while sc/pc reach 10,000.
At bench scale the absolute sizes shrink, but oc must remain
stochastically dominated by pc and sc.
"""

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, once

from repro.bench import experiments, reporting


@pytest.mark.parametrize("dataset", ["patents", "orkut"])
def bench_fig5(benchmark, dataset):
    result = once(
        benchmark,
        experiments.fig5,
        dataset,
        sample=200,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )

    def fraction_below(cdf, threshold):
        best = 0.0
        for x, f in zip(cdf.xs, cdf.fractions):
            if x <= threshold:
                best = f
        return best

    # Order cores are the smallest structures at every probed size.
    for threshold in (10, 100, 1000):
        assert fraction_below(result.oc, threshold) >= fraction_below(
            result.pc, threshold
        ) - 1e-9
    benchmark.extra_info["oc_le100"] = round(fraction_below(result.oc, 100), 3)
    benchmark.extra_info["pc_le100"] = round(fraction_below(result.pc, 100), 3)
    benchmark.extra_info["sc_le100"] = round(fraction_below(result.sc, 100), 3)
    print()
    print(reporting.render_fig5([result]))

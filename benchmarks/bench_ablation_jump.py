"""Ablation: the jump heap B vs a sequential O_K scan.

DESIGN.md calls out the jump mechanism (Algorithm 2 line 15 + the B heap)
as the design choice that decouples insertion cost from |O_K|.  This bench
runs the production OrderInsert and a semantics-identical sequential-scan
variant on the same stream and reports how many Case-2a steps the jumps
eliminated.
"""

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments


@pytest.mark.parametrize("dataset", ["patents", "livejournal"])
def bench_ablation_jump(benchmark, dataset):
    result = once(
        benchmark,
        experiments.ablation_jump,
        dataset,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    # The scan must do at least as much stepping as the jump version's
    # visits; on blocky graphs it does far more.
    assert result.scanned >= result.visited
    benchmark.extra_info["visited"] = result.visited
    benchmark.extra_info["scanned"] = result.scanned
    benchmark.extra_info["steps_saved"] = result.steps_saved
    benchmark.extra_info["jump_s"] = round(result.jump_seconds, 3)
    benchmark.extra_info["scan_s"] = round(result.scan_seconds, 3)
    print(
        f"\n{dataset}: |V+|={result.visited}, scan steps={result.scanned} "
        f"(saved {result.steps_saved}); jump {result.jump_seconds:.3f}s "
        f"vs scan {result.scan_seconds:.3f}s"
    )

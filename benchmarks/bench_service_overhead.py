"""Façade overhead: ``CoreService`` commits vs raw ``apply_batch``.

The service façade wraps every batch in a commit (receipt minting, net
delta capture, event construction, subscriber dispatch).  That wrapper
must stay in the noise: the acceptance bar is the façade within 5% of
raw ``apply_batch`` throughput on the mixed-batch workload.  Each bench
replays the same batch stream through a bare engine and through a
service session (best of ``REPLAYS`` replays each, interleaved, to damp
scheduler noise), asserts identical final cores, and — at meaningful
stream lengths — asserts the 5% bound outright.

A second bench drives the sliding-window monitor at the temporal
stream's natural tick granularity (``TemporalEdgeStream.ticks``), the
end-to-end path where every same-tick arrival lands as one batch: one
service commit per arrival tick plus one per expiry flush.

Every bench appends a record to a ``BENCH_service_overhead.json``
artifact so CI keeps a machine-readable trajectory of the façade cost;
set ``REPRO_BENCH_ARTIFACT_DIR`` to choose where it lands.
"""

import json
import os
import time
from pathlib import Path

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench.runner import build_engine, build_service
from repro.bench.workloads import mixed_batch_workload
from repro.graphs.datasets import load_dataset
from repro.streaming import SlidingWindowCoreMonitor

#: Ops per batch in the mixed-batch replay.
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_BATCH", "50"))
#: Replays per side; the minimum is kept, interleaved raw/façade.
REPLAYS = int(os.environ.get("REPRO_BENCH_REPLAYS", "3"))
#: Below this many ops the 5% wall-clock assert is skipped (CI smoke
#: scales are too small for stable timing) but still recorded.
WALL_CLOCK_MIN_OPS = 200
#: The acceptance bound: façade within 5% of raw apply_batch.
OVERHEAD_BOUND = 1.05

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the accumulated records once the module's benches finish."""
    _RECORDS.clear()
    yield
    path = (
        Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
        / "BENCH_service_overhead.json"
    )
    path.write_text(
        json.dumps(
            {
                "benchmark": "service_overhead",
                "scale": BENCH_SCALE,
                "updates": BENCH_UPDATES,
                "batch_size": BATCH_SIZE,
                "replays": REPLAYS,
                "bound": OVERHEAD_BOUND,
                "records": _RECORDS,
            },
            indent=2,
        )
    )


def _replay_raw(workload, batches):
    engine = build_engine("order", workload.base_graph(), seed=BENCH_SEED)
    started = time.perf_counter()
    for batch in batches:
        engine.apply_batch(batch)
    return engine, time.perf_counter() - started


def _replay_service(workload, batches, subscriber_count=0):
    service = build_service("order", workload.base_graph(), seed=BENCH_SEED)
    sinks = [[] for _ in range(subscriber_count)]
    for sink in sinks:
        service.subscribe(sink.append)
    started = time.perf_counter()
    for batch in batches:
        service.apply(batch)
    return service, time.perf_counter() - started


def _record(name, ops, raw_s, facade_s, extra=None):
    entry = {
        "bench": name,
        "ops": ops,
        "raw_seconds": round(raw_s, 6),
        "facade_seconds": round(facade_s, 6),
        "raw_ops_per_sec": round(ops / raw_s, 1) if raw_s else None,
        "facade_ops_per_sec": round(ops / facade_s, 1) if facade_s else None,
        "overhead_ratio": round(facade_s / raw_s, 4) if raw_s else None,
    }
    if extra:
        entry.update(extra)
    _RECORDS.append(entry)
    return entry


@pytest.mark.parametrize("subscribers", [0, 1])
def bench_service_vs_raw_mixed_batches(benchmark, subscribers):
    """The acceptance workload: mixed batches, raw engine vs façade."""
    dataset = load_dataset("gowalla", scale=BENCH_SCALE, seed=BENCH_SEED)
    workload, plan, batches = mixed_batch_workload(
        dataset, BENCH_UPDATES, BATCH_SIZE, p=0.3, seed=BENCH_SEED
    )

    def run():
        raw_best = facade_best = float("inf")
        engine = service = None
        # Interleave the replays so drift hits both sides equally.
        for _ in range(REPLAYS):
            engine, raw_s = _replay_raw(workload, batches)
            service, facade_s = _replay_service(
                workload, batches, subscriber_count=subscribers
            )
            raw_best = min(raw_best, raw_s)
            facade_best = min(facade_best, facade_s)
        assert engine.core_numbers() == service.cores(), (
            "façade replay diverged from raw apply_batch"
        )
        return raw_best, facade_best

    raw_s, facade_s = once(benchmark, run)
    entry = _record(
        f"mixed_batches_subs{subscribers}", len(plan), raw_s, facade_s,
        extra={"subscribers": subscribers, "batches": len(batches)},
    )
    benchmark.extra_info.update(entry)
    if len(plan) >= WALL_CLOCK_MIN_OPS and subscribers == 0:
        assert facade_s <= raw_s * OVERHEAD_BOUND, (
            f"façade overhead {facade_s / raw_s:.3f}x exceeds "
            f"{OVERHEAD_BOUND}x: {facade_s:.3f}s vs {raw_s:.3f}s"
        )


def bench_monitor_tick_replay(benchmark):
    """The tick-granularity window path: one commit per arrival tick.

    Replays a temporal stream through the sliding-window monitor with
    same-tick arrivals batched by ``TemporalEdgeStream.ticks`` — the
    end-to-end shape the ROADMAP's observe_many item asks for — and
    records how far below one-commit-per-edge the tick batching lands.
    """
    dataset = load_dataset("facebook", scale=BENCH_SCALE, seed=BENCH_SEED)
    stream = dataset.stream()
    tick = max(1.0, len(stream) / max(1, BENCH_UPDATES))
    window = tick * 40

    def run():
        monitor = SlidingWindowCoreMonitor(window=window)
        for t, edges in stream.ticks(every=tick):
            monitor.observe_many(edges, t)
        monitor.drain()
        return monitor

    monitor = once(benchmark, run)
    commits = monitor.service.last_receipt.receipt_id
    ticks = sum(1 for _ in stream.ticks(every=tick))
    entry = {
        "bench": "monitor_tick_replay",
        "edges": len(stream),
        "arrival_ticks": ticks,
        "service_commits": commits,
        "arrivals": monitor.stats.arrivals,
        "expiries": monitor.stats.expiries,
        "promotions": monitor.stats.promotions,
        "demotions": monitor.stats.demotions,
    }
    _RECORDS.append(entry)
    benchmark.extra_info.update(entry)
    # Every tick's arrivals land as ONE batch: at most one insert commit
    # per tick plus the expiry commits, never one per edge.
    assert monitor.stats.arrivals == len(stream)
    assert commits <= 2 * ticks + 1

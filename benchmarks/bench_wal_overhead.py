"""Durability overhead: WAL-backed commits vs raw ``apply_batch``.

The write-ahead log adds a serialize + framed append before every
commit.  With fsync off that bookkeeping must stay in the noise — the
acceptance bar is a WAL-backed session (``fsync="never"``) within 10%
of raw ``apply_batch`` throughput on the mixed-batch workload.  The
bench replays the same batch stream through a bare engine and through a
durable session (best of ``REPLAYS`` replays each, interleaved to damp
scheduler noise), asserts identical final cores, and — at meaningful
stream lengths — asserts the 10% bound outright.

The fsync policies that actually hit the disk are *recorded*, not
gated: ``always`` pays one fsync per commit and ``interval`` amortizes
it, and both costs are hardware truths rather than code regressions.
A final bench measures recovery itself — scan + replay of the full log
onto the latest snapshot — so the artifact tracks restart cost too.

Every bench appends a record to a ``BENCH_wal_overhead.json`` artifact;
set ``REPRO_BENCH_ARTIFACT_DIR`` to choose where it lands.
"""

import json
import os
import time
from pathlib import Path

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench.runner import build_engine, build_service
from repro.bench.workloads import mixed_batch_workload
from repro.graphs.datasets import load_dataset
from repro.service import CoreService, log_stat

#: Ops per batch in the mixed-batch replay.
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_BATCH", "50"))
#: Replays per side; the minimum is kept, interleaved raw/durable.
REPLAYS = int(os.environ.get("REPRO_BENCH_REPLAYS", "3"))
#: Below this many ops the wall-clock assert is skipped (CI smoke
#: scales are too small for stable timing) but still recorded.
WALL_CLOCK_MIN_OPS = 200
#: The acceptance bound: fsync-off WAL within 10% of raw apply_batch.
OVERHEAD_BOUND = 1.10
#: Append count between fsyncs for the "interval" policy bench.
FSYNC_EVERY = 16

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the accumulated records once the module's benches finish."""
    _RECORDS.clear()
    yield
    path = (
        Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
        / "BENCH_wal_overhead.json"
    )
    path.write_text(
        json.dumps(
            {
                "benchmark": "wal_overhead",
                "scale": BENCH_SCALE,
                "updates": BENCH_UPDATES,
                "batch_size": BATCH_SIZE,
                "replays": REPLAYS,
                "bound": OVERHEAD_BOUND,
                "records": _RECORDS,
            },
            indent=2,
        )
    )


def _workload():
    dataset = load_dataset("gowalla", scale=BENCH_SCALE, seed=BENCH_SEED)
    return mixed_batch_workload(
        dataset, BENCH_UPDATES, BATCH_SIZE, p=0.3, seed=BENCH_SEED
    )


def _replay_raw(workload, batches):
    engine = build_engine("order", workload.base_graph(), seed=BENCH_SEED)
    started = time.perf_counter()
    for batch in batches:
        engine.apply_batch(batch)
    return engine, time.perf_counter() - started


def _replay_durable(workload, batches, log, **wal_opts):
    service = build_service(
        "order", workload.base_graph(), seed=BENCH_SEED, log=log, **wal_opts
    )
    started = time.perf_counter()
    for batch in batches:
        service.apply(batch)
    elapsed = time.perf_counter() - started
    service.close()
    return service, elapsed


def _record(name, ops, raw_s, wal_s, extra=None):
    entry = {
        "bench": name,
        "ops": ops,
        "raw_seconds": round(raw_s, 6),
        "wal_seconds": round(wal_s, 6),
        "raw_ops_per_sec": round(ops / raw_s, 1) if raw_s else None,
        "wal_ops_per_sec": round(ops / wal_s, 1) if wal_s else None,
        "overhead_ratio": round(wal_s / raw_s, 4) if raw_s else None,
    }
    if extra:
        entry.update(extra)
    _RECORDS.append(entry)
    return entry


def bench_wal_fsync_never_vs_raw(benchmark, tmp_path):
    """The acceptance workload: fsync-off durable session vs bare engine."""
    workload, plan, batches = _workload()

    def run():
        raw_best = wal_best = float("inf")
        engine = service = None
        # Interleave the replays so drift hits both sides equally.
        for replay in range(REPLAYS):
            engine, raw_s = _replay_raw(workload, batches)
            log = tmp_path / f"never-{replay}.wal"
            service, wal_s = _replay_durable(
                workload, batches, log, fsync="never"
            )
            raw_best = min(raw_best, raw_s)
            wal_best = min(wal_best, wal_s)
        assert engine.core_numbers() == service.cores(), (
            "durable replay diverged from raw apply_batch"
        )
        return raw_best, wal_best

    raw_s, wal_s = once(benchmark, run)
    entry = _record(
        "fsync_never", len(plan), raw_s, wal_s,
        extra={"fsync": "never", "batches": len(batches)},
    )
    benchmark.extra_info.update(entry)
    if len(plan) >= WALL_CLOCK_MIN_OPS:
        assert wal_s <= raw_s * OVERHEAD_BOUND, (
            f"WAL overhead {wal_s / raw_s:.3f}x exceeds "
            f"{OVERHEAD_BOUND}x: {wal_s:.3f}s vs {raw_s:.3f}s"
        )


@pytest.mark.parametrize("fsync", ["interval", "always"])
def bench_wal_fsync_policies(benchmark, tmp_path, fsync):
    """Record (never gate) what the disk-hitting fsync policies cost."""
    workload, plan, batches = _workload()
    wal_opts = {"fsync": fsync}
    if fsync == "interval":
        wal_opts["fsync_every"] = FSYNC_EVERY

    def run():
        raw_best = wal_best = float("inf")
        for replay in range(REPLAYS):
            _, raw_s = _replay_raw(workload, batches)
            log = tmp_path / f"{fsync}-{replay}.wal"
            _, wal_s = _replay_durable(workload, batches, log, **wal_opts)
            raw_best = min(raw_best, raw_s)
            wal_best = min(wal_best, wal_s)
        return raw_best, wal_best

    raw_s, wal_s = once(benchmark, run)
    entry = _record(
        f"fsync_{fsync}", len(plan), raw_s, wal_s,
        extra={"fsync": fsync, "batches": len(batches)},
    )
    benchmark.extra_info.update(entry)


def bench_wal_recovery(benchmark, tmp_path):
    """Restart cost: scan + replay the full log onto the base snapshot."""
    workload, plan, batches = _workload()
    log = tmp_path / "recovery.wal"
    service, _ = _replay_durable(workload, batches, log, fsync="never")
    expected = service.cores()

    def run():
        started = time.perf_counter()
        recovered = CoreService.recover(log)
        elapsed = time.perf_counter() - started
        recovered.close()
        return recovered, elapsed

    recovered, recover_s = once(benchmark, run)
    assert recovered.cores() == expected, "recovery diverged from live state"
    stat = log_stat(log)
    entry = {
        "bench": "recovery",
        "ops": len(plan),
        "records": stat["records"],
        "log_bytes": stat["bytes"],
        "recover_seconds": round(recover_s, 6),
        "replayed": recovered.recovery.replayed,
        "from_snapshot": recovered.recovery.from_snapshot,
    }
    _RECORDS.append(entry)
    benchmark.extra_info.update(entry)

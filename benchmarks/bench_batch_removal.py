"""Batch-native removal runs vs the per-edge loop.

The removal-side claim of the batch pipeline: a window-expiry batch of E
edges performs O(1) targeted ``mcd`` passes per *run* (the joint cascade
keeps ``mcd`` incrementally exact) instead of one refresh per edge, and
that shows up as wall-clock wins under both sequence backends.  Each
bench asserts the counter collapse outright and the wall-clock win at
meaningful stream lengths (tiny CI smoke scales only record it).

Besides ``benchmark.extra_info``, every bench appends a record to a
``BENCH_batch_removal.json`` artifact (ops/sec plus the per-run
``mcd_recomputations``) so CI keeps a machine-readable perf trajectory;
set ``REPRO_BENCH_ARTIFACT_DIR`` to choose where it lands.
"""

import json
import os
from pathlib import Path

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench.runner import build_engine, run_batches, run_mixed, run_updates
from repro.bench.workloads import make_workload, mixed_batch_workload
from repro.engine.batch import Batch
from repro.graphs.datasets import load_dataset

#: Edges expiring per tick in the window-expiry replay.
WINDOW = int(os.environ.get("REPRO_BENCH_WINDOW", "50"))
#: Below this many update edges, wall-clock asserts are skipped (CI
#: smoke runs are too small for stable timing) but still recorded.
WALL_CLOCK_MIN_OPS = 200

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the accumulated records once the module's benches finish."""
    _RECORDS.clear()
    yield
    path = (
        Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
        / "BENCH_batch_removal.json"
    )
    path.write_text(
        json.dumps(
            {
                "benchmark": "batch_removal",
                "scale": BENCH_SCALE,
                "updates": BENCH_UPDATES,
                "window": WINDOW,
                "records": _RECORDS,
            },
            indent=2,
        )
    )


def _record(name, sequence, ops, per_edge_s, batched_s, per_edge_mcd,
            batched_mcd, runs):
    entry = {
        "bench": name,
        "sequence": sequence,
        "ops": ops,
        "per_edge_seconds": round(per_edge_s, 6),
        "batched_seconds": round(batched_s, 6),
        "per_edge_ops_per_sec": round(ops / per_edge_s, 1) if per_edge_s else None,
        "batched_ops_per_sec": round(ops / batched_s, 1) if batched_s else None,
        "speedup": round(per_edge_s / batched_s, 3) if batched_s else None,
        "mcd_recomputations_per_edge_path": per_edge_mcd,
        "mcd_recomputations_batched": batched_mcd,
        "runs": runs,
        "mcd_recomputations_per_run": (
            round(batched_mcd / runs, 2) if runs else 0
        ),
    }
    _RECORDS.append(entry)
    return entry


@pytest.mark.parametrize("sequence", ["om", "treap"])
def bench_window_expiry_removal_runs(benchmark, sequence):
    """Window expiry: bulk deletions, the workload the run coalesces."""
    dataset = load_dataset("gowalla", scale=BENCH_SCALE, seed=BENCH_SEED)
    workload = make_workload(dataset, BENCH_UPDATES, seed=BENCH_SEED)
    victims = workload.update_edges
    windows = [
        Batch.removes(victims[i : i + WINDOW])
        for i in range(0, len(victims), WINDOW)
    ]

    def run():
        per_edge = build_engine(
            "order", workload.full_graph(), seed=BENCH_SEED, sequence=sequence
        )
        log = run_updates(per_edge, victims, "remove")
        batched = build_engine(
            "order", workload.full_graph(), seed=BENCH_SEED, sequence=sequence
        )
        results = run_batches(batched, windows)
        assert per_edge.core_numbers() == batched.core_numbers()
        return per_edge, log, batched, results

    per_edge, log, batched, results = once(benchmark, run)
    batched_seconds = sum(r.seconds for r in results)
    entry = _record(
        "window_expiry", sequence, len(victims),
        log.total_seconds, batched_seconds,
        per_edge.mcd_recomputations, batched.mcd_recomputations,
        runs=len(windows),
    )
    benchmark.extra_info.update(entry)
    # The headline counter collapse: per-edge refreshes ~2+|V*| vertices
    # per edge; the joint cascade recomputes only demoted vertices.
    if victims:
        assert batched.mcd_recomputations < per_edge.mcd_recomputations
    if len(victims) >= WALL_CLOCK_MIN_OPS:
        assert batched_seconds < log.total_seconds, (
            f"batch-native removal should beat the per-edge loop: "
            f"{batched_seconds:.3f}s vs {log.total_seconds:.3f}s ({sequence})"
        )


@pytest.mark.parametrize("sequence", ["om", "treap"])
def bench_mixed_stream_with_removal_runs(benchmark, sequence):
    """Mixed insert/remove batches: both sides now coalesce their repair."""
    dataset = load_dataset("gowalla", scale=BENCH_SCALE, seed=BENCH_SEED)
    workload, plan, batches = mixed_batch_workload(
        dataset, BENCH_UPDATES, WINDOW, p=0.4, seed=BENCH_SEED
    )

    def run():
        per_edge = build_engine(
            "order", workload.base_graph(), seed=BENCH_SEED, sequence=sequence
        )
        log = run_mixed(per_edge, plan)
        batched = build_engine(
            "order", workload.base_graph(), seed=BENCH_SEED, sequence=sequence
        )
        results = run_batches(batched, batches)
        assert per_edge.core_numbers() == batched.core_numbers()
        return per_edge, log, batched, results

    per_edge, log, batched, results = once(benchmark, run)
    batched_seconds = sum(r.seconds for r in results)
    removal_runs = sum(1 for r in results if r.removes)
    entry = _record(
        "mixed_stream", sequence, len(plan),
        log.total_seconds, batched_seconds,
        per_edge.mcd_recomputations, batched.mcd_recomputations,
        runs=removal_runs,
    )
    benchmark.extra_info.update(entry)
    if any(r.removes for r in results):
        assert batched.mcd_recomputations < per_edge.mcd_recomputations
    if len(plan) >= WALL_CLOCK_MIN_OPS:
        assert batched_seconds < log.total_seconds


def bench_region_partitioned_window_expiry(benchmark):
    """The partitioned schedule agrees and reports region counters; the
    partitioner's walk is the measured overhead."""
    dataset = load_dataset("gowalla", scale=BENCH_SCALE, seed=BENCH_SEED)
    workload = make_workload(dataset, BENCH_UPDATES, seed=BENCH_SEED)
    victims = workload.update_edges
    windows = [
        Batch.removes(victims[i : i + WINDOW])
        for i in range(0, len(victims), WINDOW)
    ]

    def run():
        plain = build_engine("order", workload.full_graph(), seed=BENCH_SEED)
        plain_results = run_batches(plain, windows)
        partitioned = build_engine(
            "order", workload.full_graph(), seed=BENCH_SEED, partition=True
        )
        results = run_batches(partitioned, windows)
        assert plain.core_numbers() == partitioned.core_numbers()
        return plain_results, results

    plain_results, results = once(benchmark, run)
    benchmark.extra_info["plain_seconds"] = sum(r.seconds for r in plain_results)
    benchmark.extra_info["partitioned_seconds"] = sum(r.seconds for r in results)
    benchmark.extra_info["regions_total"] = sum(
        r.counters["regions"] for r in results
    )
    benchmark.extra_info["region_max_size"] = max(
        r.counters["region_max_size"] for r in results
    )
    assert all(r.counters["regions"] >= 1 for r in results)

"""Table II (right half): accumulated removal time, Order vs Trav-h.

Paper shape: OrderRemoval wins everywhere except the road network (CA),
whose tiny average degree makes pcd maintenance cheap; Trav-h removal
degrades steeply as h grows (deeper hierarchy to repair, no search gain).

``order-simplified`` rides the same replay: removal is where dropping
the per-edge ``mcd`` refresh should show, so it must stay in the order
family's ballpark (the counter-level head-to-head lives in
``bench_simplified_ablation.py``).
"""

import pytest
from _bench_common import BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments

HOPS = (2, 3)
ENGINES = ["order", "order-simplified"] + [f"trav-{h}" for h in HOPS]


@pytest.mark.parametrize("dataset", ["facebook", "gowalla", "patents"])
def bench_table2_remove(benchmark, dataset):
    row = once(
        benchmark,
        experiments.table2,
        dataset,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        engines=ENGINES,
    )
    assert row.remove_seconds["order"] < row.remove_seconds["trav-2"], (
        "OrderRemoval must beat Trav-2 off the road network (Table II)"
    )
    # Deeper hierarchies pay more maintenance on removals.
    assert row.remove_seconds["trav-3"] > row.remove_seconds["trav-2"]
    # No per-edge mcd refresh: the simplified removal must stay within
    # timer noise of the default order hot path.
    assert (
        row.remove_seconds["order-simplified"]
        < row.remove_seconds["order"] * 2 + 0.05
    ), "simplified removal left the order family's ballpark"
    benchmark.extra_info["order_s"] = round(row.remove_seconds["order"], 3)
    benchmark.extra_info["simplified_s"] = round(
        row.remove_seconds["order-simplified"], 3
    )
    benchmark.extra_info["trav2_s"] = round(row.remove_seconds["trav-2"], 3)
    benchmark.extra_info["trav3_s"] = round(row.remove_seconds["trav-3"], 3)


def bench_table2_remove_ca_exception(benchmark):
    """CA is the paper's one dataset where Trav-2 removal can win."""
    row = once(
        benchmark,
        experiments.table2,
        "ca",
        n_updates=BENCH_UPDATES,
        hops=(2,),
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    # No winner asserted — the paper itself reports Trav-2 ahead here; we
    # only require the same order of magnitude.
    ratio = row.remove_seconds["order"] / max(row.remove_seconds["trav-2"], 1e-9)
    assert ratio < 20
    benchmark.extra_info["order_over_trav2"] = round(ratio, 2)

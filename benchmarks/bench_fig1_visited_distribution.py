"""Fig. 1: distribution of the number of vertices visited per insertion.

Paper shape: the traversal algorithm has a heavy tail (>1000 visited for a
non-small share of insertions on citation/social graphs) while the
order-based algorithm stays under ~100 everywhere.
"""

import pytest
from _bench_common import BENCH_DATASETS, BENCH_SCALE, BENCH_SEED, BENCH_UPDATES, once

from repro.bench import experiments, reporting


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def bench_fig1(benchmark, dataset):
    result = once(
        benchmark,
        experiments.fig1,
        dataset,
        n_updates=BENCH_UPDATES,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    # Order-based insertions never exceed the last bucket on any dataset
    # the paper tests; assert the reproduced shape.
    assert result.order_proportions[-1] == 0.0, "order engine visited >1000"
    assert (
        result.order_proportions[0] >= result.traversal_proportions[0]
    ), "order engine should keep more insertions in the <=3 bucket"
    benchmark.extra_info["order_le3"] = round(result.order_proportions[0], 3)
    benchmark.extra_info["trav_gt1000"] = round(
        result.traversal_proportions[-1], 3
    )
    print()
    print(reporting.render_fig1([result]))

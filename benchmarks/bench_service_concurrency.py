"""Serving-front concurrency: commits/sec and event fan-out over TCP.

Four benches drive a real :class:`~repro.service.server.CoreServer` over
loopback TCP with the real protocol (framed JSONL, tokens, deadlines):

* ``commit_throughput`` — N clients on N tenant sessions, sequential
  (await each commit before the next, one client) vs sharded (N clients
  pipelining concurrently onto their own sessions).  The gate: at
  meaningful op counts the sharded fan-out must not be slower than the
  sequential baseline — concurrency across per-tenant single-writer
  queues has to hide the per-request round-trip time, or the session
  multiplexing is pure overhead.
* ``serving_overhead`` — the same commit stream through a bare
  ``CoreService`` façade vs through server+client, gating the per-commit
  cost of the network front (framing, JSON, admission, deadline
  machinery) at ``SERVE_OVERHEAD_BOUND``×.
* ``event_fanout`` — S subscribers per session during a commit storm;
  every subscriber must see every event (bounded buffers sized to fit),
  and the delivered-events/sec rate is recorded.
* ``degraded_reads`` — reads answered healthy (primary) vs degraded
  (last-good map after a poisoned commit), recording both rates; the
  degraded path must answer every query.

Artifact: ``BENCH_service_concurrency.json`` (set
``REPRO_BENCH_ARTIFACT_DIR``).
"""

import asyncio
import json
import os
import time
from pathlib import Path

import pytest
from _bench_common import BENCH_SEED, BENCH_UPDATES, once

from repro.engine.batch import Batch
from repro.service import CoreClient, CoreServer, CoreService, ServerLimits
from repro.testing.faults import FaultPlan

#: Concurrent clients (= tenant sessions) in the sharded fan-out.
N_CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", "4"))
#: Commits per client.
COMMITS = max(4, int(os.environ.get("REPRO_BENCH_COMMITS", str(BENCH_UPDATES // 2))))
#: Subscribers per session in the fan-out bench.
SUBSCRIBERS = int(os.environ.get("REPRO_BENCH_SUBSCRIBERS", "4"))
#: Below this many commits the relative gates are recorded but not
#: asserted (CI smoke scales are too small for stable wall-clock).
WALL_CLOCK_MIN_COMMITS = 100
#: The serving front may cost at most this many times a raw façade
#: commit (JSON + framing + TCP + admission + deadline machinery).
#: Measured ~5x on a quiet host; the bound leaves room for CI noise.
SERVE_OVERHEAD_BOUND = float(os.environ.get("REPRO_BENCH_SERVE_BOUND", "25"))

_RECORDS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    _RECORDS.clear()
    yield
    path = (
        Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "."))
        / "BENCH_service_concurrency.json"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "benchmark": "service_concurrency",
                "clients": N_CLIENTS,
                "commits_per_client": COMMITS,
                "subscribers": SUBSCRIBERS,
                "serve_overhead_bound": SERVE_OVERHEAD_BOUND,
                "records": _RECORDS,
            },
            indent=2,
        )
    )


def pocket_ops(client_index, n):
    """``n`` single-insert commits inside a disjoint vertex pocket."""
    base = 10_000 * (client_index + 1)
    ops = []
    for i in range(n):
        u = base + i
        v = base + i + 1 if i % 3 else base + (i // 3)
        if u == v:
            v = u + 1
        ops.append([["insert", u, v]])
    return ops


async def _commit_all(client, ops):
    for op in ops:
        await client.commit(op, deadline=60)


def _run_sequential(total_commits):
    """One client, one session, one commit in flight at a time."""
    async def scenario():
        async with CoreServer(seed=BENCH_SEED) as server:
            host, port = await server.start()
            client = await CoreClient.connect(host, port, session="seq")
            ops = pocket_ops(0, total_commits)
            started = time.perf_counter()
            await _commit_all(client, ops)
            elapsed = time.perf_counter() - started
            await client.close()
            return elapsed
    return asyncio.run(scenario())


def _run_sharded(n_clients, commits_each):
    """N clients pipelining concurrently onto N tenant sessions."""
    async def scenario():
        async with CoreServer(seed=BENCH_SEED) as server:
            host, port = await server.start()
            clients = [
                await CoreClient.connect(host, port, session=f"s{i}")
                for i in range(n_clients)
            ]
            workloads = [
                pocket_ops(i, commits_each) for i in range(n_clients)
            ]
            started = time.perf_counter()
            await asyncio.gather(*[
                _commit_all(c, ops) for c, ops in zip(clients, workloads)
            ])
            elapsed = time.perf_counter() - started
            for c in clients:
                await c.close()
            return elapsed
    return asyncio.run(scenario())


def bench_commit_throughput_sequential_vs_sharded(benchmark):
    total = N_CLIENTS * COMMITS

    def run():
        seq_s = _run_sequential(total)
        sharded_s = _run_sharded(N_CLIENTS, COMMITS)
        return seq_s, sharded_s

    seq_s, sharded_s = once(benchmark, run)
    entry = {
        "bench": "commit_throughput",
        "total_commits": total,
        "sequential_seconds": round(seq_s, 6),
        "sharded_seconds": round(sharded_s, 6),
        "sequential_commits_per_sec": round(total / seq_s, 1),
        "sharded_commits_per_sec": round(total / sharded_s, 1),
        "speedup": round(seq_s / sharded_s, 3),
    }
    _RECORDS.append(entry)
    benchmark.extra_info.update(entry)
    if total >= WALL_CLOCK_MIN_COMMITS:
        assert sharded_s <= seq_s, (
            f"sharded fan-out slower than sequential: "
            f"{sharded_s:.3f}s vs {seq_s:.3f}s over {total} commits"
        )


def bench_serving_overhead_vs_facade(benchmark):
    """Per-commit cost of the network front vs raw façade commits."""
    ops = pocket_ops(0, COMMITS)

    def facade_side():
        svc = CoreService.open(seed=BENCH_SEED)
        started = time.perf_counter()
        for op in ops:
            svc.apply(Batch((kind, (u, v)) for kind, u, v in op))
        elapsed = time.perf_counter() - started
        svc.close()
        return elapsed

    def served_side():
        async def scenario():
            async with CoreServer(seed=BENCH_SEED) as server:
                host, port = await server.start()
                client = await CoreClient.connect(host, port, session="t")
                started = time.perf_counter()
                await _commit_all(client, ops)
                elapsed = time.perf_counter() - started
                await client.close()
                return elapsed
        return asyncio.run(scenario())

    def run():
        # Interleave so drift hits both sides equally; keep the best.
        facade_best = served_best = float("inf")
        for _ in range(2):
            facade_best = min(facade_best, facade_side())
            served_best = min(served_best, served_side())
        return facade_best, served_best

    facade_s, served_s = once(benchmark, run)
    ratio = served_s / facade_s if facade_s else None
    entry = {
        "bench": "serving_overhead",
        "commits": COMMITS,
        "facade_seconds": round(facade_s, 6),
        "served_seconds": round(served_s, 6),
        "facade_commits_per_sec": round(COMMITS / facade_s, 1),
        "served_commits_per_sec": round(COMMITS / served_s, 1),
        "overhead_ratio": round(ratio, 2),
        "bound": SERVE_OVERHEAD_BOUND,
    }
    _RECORDS.append(entry)
    benchmark.extra_info.update(entry)
    if COMMITS >= WALL_CLOCK_MIN_COMMITS:
        assert ratio <= SERVE_OVERHEAD_BOUND, (
            f"serving front costs {ratio:.1f}x a façade commit, bound "
            f"is {SERVE_OVERHEAD_BOUND}x"
        )


def bench_event_fanout(benchmark):
    """S subscribers during a commit storm: delivery is complete."""
    async def scenario():
        limits = ServerLimits(subscriber_buffer=100_000)
        async with CoreServer(seed=BENCH_SEED, limits=limits) as server:
            host, port = await server.start()
            client = await CoreClient.connect(host, port, session="t")
            streams = [
                await client.subscribe(buffer=100_000)
                for _ in range(SUBSCRIBERS)
            ]
            ops = pocket_ops(0, COMMITS)
            started = time.perf_counter()
            await _commit_all(client, ops)
            commit_s = time.perf_counter() - started

            async def drain(stream, want):
                got = 0
                while got < want:
                    batch = await asyncio.wait_for(stream.__anext__(), 30)
                    if batch.kind == "events":
                        got += len(batch.events)
                        assert batch.dropped == 0
                return got

            # Each commit changes >= 1 vertex core; count one stream's
            # events, then require every stream to deliver that many.
            first_total = await drain_all_events(streams[0])
            totals = [first_total]
            for stream in streams[1:]:
                totals.append(await drain(stream, first_total))
            elapsed = time.perf_counter() - started
            for stream in streams:
                await stream.close()
            await client.close()
            return commit_s, elapsed, totals

    async def drain_all_events(stream):
        """Drain until the stream goes quiet; returns events seen."""
        got = 0
        while True:
            try:
                batch = await asyncio.wait_for(stream.__anext__(), 0.5)
            except asyncio.TimeoutError:
                return got
            if batch.kind == "events":
                got += len(batch.events)

    def run():
        return asyncio.run(scenario())

    commit_s, total_s, totals = once(benchmark, run)
    assert len(set(totals)) == 1, (
        f"subscribers disagree on delivered events: {totals}"
    )
    delivered = sum(totals)
    entry = {
        "bench": "event_fanout",
        "commits": COMMITS,
        "subscribers": SUBSCRIBERS,
        "events_per_subscriber": totals[0],
        "events_delivered": delivered,
        "commit_seconds": round(commit_s, 6),
        "total_seconds": round(total_s, 6),
        "events_per_sec": round(delivered / total_s, 1) if total_s else None,
    }
    _RECORDS.append(entry)
    benchmark.extra_info.update(entry)
    assert totals[0] >= COMMITS  # every commit moved at least one core


def bench_degraded_reads_vs_healthy(benchmark):
    """Query rate healthy (primary) vs degraded (last-good map)."""
    n_queries = max(50, COMMITS)

    async def scenario():
        async with CoreServer(seed=BENCH_SEED) as server:  # memory-only
            host, port = await server.start()
            client = await CoreClient.connect(host, port, session="t")
            for op in pocket_ops(0, COMMITS):
                await client.commit(op, deadline=60)

            started = time.perf_counter()
            for _ in range(n_queries):
                reply = await client.query("top", n=5)
                assert reply["source"] == "primary"
            healthy_s = time.perf_counter() - started

            # Poison the engine: the unlogged session degrades for good.
            with FaultPlan().crash("engine.mid_batch"):
                try:
                    await client.commit(
                        [["insert", 1, 2]], retry=False, deadline=60
                    )
                except Exception:
                    pass
            while (await client.status())["state"] != "degraded":
                await asyncio.sleep(0.01)

            started = time.perf_counter()
            for _ in range(n_queries):
                reply = await client.query("top", n=5)
                assert reply["source"] == "last_good"
            degraded_s = time.perf_counter() - started
            await client.close()
            return healthy_s, degraded_s

    def run():
        return asyncio.run(scenario())

    healthy_s, degraded_s = once(benchmark, run)
    entry = {
        "bench": "degraded_reads",
        "queries": n_queries,
        "healthy_seconds": round(healthy_s, 6),
        "degraded_seconds": round(degraded_s, 6),
        "healthy_queries_per_sec": round(n_queries / healthy_s, 1),
        "degraded_queries_per_sec": round(n_queries / degraded_s, 1),
    }
    _RECORDS.append(entry)
    benchmark.extra_info.update(entry)

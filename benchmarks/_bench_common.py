"""Shared configuration for the benchmark suite.

Each module regenerates one table/figure of the paper at a bench-friendly
scale (see DESIGN.md §2: pure Python is 100-1000x slower than the authors'
C++, so sizes are scaled down; run the CLI with ``--scale`` / ``--updates``
for bigger runs).  ``benchmark.extra_info`` carries the headline numbers so
``pytest benchmarks/ --benchmark-only`` output doubles as the results log.
"""

from __future__ import annotations

import os

#: Dataset scale for benches (intentionally small; override via env).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Update-stream length per dataset.
BENCH_UPDATES = int(os.environ.get("REPRO_BENCH_UPDATES", "250"))

#: Datasets exercised by the heavier per-dataset benches.  A light subset
#: keeps the suite fast; the CLI runs all 11.
BENCH_DATASETS = ("facebook", "gowalla", "ca", "patents")

#: Seed shared by every bench.
BENCH_SEED = 42


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark clock.

    The experiments are end-to-end workload replays (minutes at paper
    scale); statistical rounds would multiply runtime without adding
    information, so every bench uses a single measured round.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Low-level data structures used by the core-maintenance engines.

The paper's index (Section VI) is built from these structures, all of
which are implemented here from scratch:

* :class:`~repro.structures.sequence.SequenceIndex` — the protocol of a
  k-order block backend (the paper's ``A_k``), with two implementations:

  - :class:`~repro.structures.sequence.TaggedOrderList` — a Dietz–Sleator
    order-maintenance list (integer labels, Bender-style relabeling) that
    answers "does ``u`` precede ``v``?" in ``O(1)``;
  - :class:`~repro.structures.treap.OrderStatisticTreap` — the
    order-statistic tree of the original design, ``O(log |O_k|)`` rank
    queries, kept as the reference backend and for rank-heavy diagnostics.

  Both are instrumented through
  :class:`~repro.structures.sequence.SequenceStats`.
* :class:`~repro.structures.heaps.LazyMinHeap` — the jump heap ``B`` used by
  ``OrderInsert`` to skip over vertices that can be proven irrelevant.
* :class:`~repro.structures.buckets.DegreeBuckets` /
  :class:`~repro.structures.buckets.IndexedSet` — bucketed degree queues
  powering the linear-time peeling (``CoreDecomp``) under the three k-order
  generation heuristics.
"""

from repro.structures.buckets import DegreeBuckets, IndexedSet
from repro.structures.heaps import LazyMinHeap
from repro.structures.sequence import (
    SequenceIndex,
    SequenceStats,
    TaggedOrderList,
)
from repro.structures.treap import OrderStatisticTreap

__all__ = [
    "DegreeBuckets",
    "IndexedSet",
    "LazyMinHeap",
    "OrderStatisticTreap",
    "SequenceIndex",
    "SequenceStats",
    "TaggedOrderList",
]

"""Low-level data structures used by the core-maintenance engines.

The paper's index (Section VI) is built from three structures, all of which
are implemented here from scratch:

* :class:`~repro.structures.treap.OrderStatisticTreap` — the per-``k``
  order-statistic tree ``A_k`` that answers "does ``u`` precede ``v``?" in
  ``O(log |O_k|)`` via rank queries, and supports positional insertion and
  deletion.
* :class:`~repro.structures.heaps.LazyMinHeap` — the jump heap ``B`` used by
  ``OrderInsert`` to skip over vertices that can be proven irrelevant.
* :class:`~repro.structures.buckets.DegreeBuckets` /
  :class:`~repro.structures.buckets.IndexedSet` — bucketed degree queues
  powering the linear-time peeling (``CoreDecomp``) under the three k-order
  generation heuristics.
"""

from repro.structures.buckets import DegreeBuckets, IndexedSet
from repro.structures.heaps import LazyMinHeap
from repro.structures.treap import OrderStatisticTreap

__all__ = [
    "DegreeBuckets",
    "IndexedSet",
    "LazyMinHeap",
    "OrderStatisticTreap",
]

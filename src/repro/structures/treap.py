"""Order-statistic treap: the ``A_k`` structure of the paper (Section VI).

The treap stores a *sequence* of distinct hashable items (no search keys —
positions are defined purely by where items are inserted).  It supports:

* ``rank(item)`` — 0-based position, in ``O(log n)``;
* ``precedes(a, b)`` — order test, two rank queries;
* positional insertion (front, back, before/after an anchor item) and
  removal, in ``O(log n)``;
* ``select(i)`` — the item at position ``i``;
* in-order iteration.

The paper notes that a plain order-statistic tree cannot *locate* the node
holding a given vertex (you would need the rank to walk down from the root,
but the rank is what you are trying to compute).  The fix, which we adopt, is
a direct ``item -> node`` hash map; ``rank`` then walks *up* from the node to
the root, accumulating left-subtree sizes, so no top-down search is ever
needed.

Balancing uses treap rotations driven by random priorities (min-heap on
priority).  Priorities come from a caller-supplied :class:`random.Random`
so that a maintainer can be made fully deterministic with a seed.

All operations are iterative — no recursion — so very long orders (the
paper's ``O_1`` has two thousand vertices in the running example alone) do
not hit the interpreter recursion limit.
"""

from __future__ import annotations

import random
from typing import Any, Hashable, Iterable, Iterator, Optional

from repro.structures.sequence import SequenceStats


class _Node:
    """A treap node; one per stored item."""

    __slots__ = ("item", "prio", "left", "right", "parent", "size")

    def __init__(self, item: Hashable, prio: float) -> None:
        self.item = item
        self.prio = prio
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = None
        self.size = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Node({self.item!r}, size={self.size})"


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


class OrderStatisticTreap:
    """A randomized balanced sequence with ``O(log n)`` rank queries.

    Parameters
    ----------
    items:
        Optional iterable appended in order (equivalent to repeated
        :meth:`insert_back`).
    rng:
        Source of node priorities.  Supplying a seeded ``random.Random``
        makes the structure (and everything built on it) deterministic.
    stats:
        Shared :class:`~repro.structures.sequence.SequenceStats` counters
        (``order_queries``, ``rank_walk_steps``); a private instance is
        created when omitted.
    """

    def __init__(
        self,
        items: Iterable[Hashable] = (),
        rng: Optional[random.Random] = None,
        stats: Optional[SequenceStats] = None,
    ) -> None:
        self._rng = rng if rng is not None else random.Random()
        self.stats = stats if stats is not None else SequenceStats()
        self._root: Optional[_Node] = None
        self._nodes: dict[Hashable, _Node] = {}
        for item in items:
            self.insert_back(item)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, item: Hashable) -> bool:
        return item in self._nodes

    def __iter__(self) -> Iterator[Hashable]:
        """In-order (left-to-right) iteration over stored items."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.item
            node = node.right

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderStatisticTreap({list(self)!r})"

    def to_list(self) -> list[Any]:
        """The stored sequence as a plain list (left to right)."""
        return list(self)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def rank(self, item: Hashable) -> int:
        """0-based position of ``item``; ``O(log n)`` by walking to the root.

        Raises :class:`KeyError` if the item is not stored.  Walk length
        is charged to ``stats.rank_walk_steps`` — the per-query cost the
        OM backend replaces with a label comparison.
        """
        node = self._nodes[item]
        r = _size(node.left)
        steps = 0
        while node.parent is not None:
            parent = node.parent
            if parent.right is node:
                r += _size(parent.left) + 1
            node = parent
            steps += 1
        self.stats.rank_walk_steps += steps
        return r

    def precedes(self, a: Hashable, b: Hashable) -> bool:
        """``True`` iff ``a`` appears strictly before ``b`` in the sequence."""
        self.stats.order_queries += 1
        return self.rank(a) < self.rank(b)

    def order_key(self, item: Hashable) -> int:
        """The item's current rank as a frozen comparable token.

        Treap order keys are plain ranks: cheap to compare but O(log n)
        to produce, and they go stale if items *before* ``item`` are
        inserted or removed.  ``OrderInsert`` only ever compares tokens
        across the scan cursor, where relative positions are stable, so
        frozen ranks are safe there (see ``repro.core.insertion``); the
        OM backend's tokens are live and never go stale.
        """
        self.stats.order_queries += 1
        return self.rank(item)

    def select(self, index: int) -> Any:
        """The item at 0-based position ``index``.

        Raises :class:`IndexError` when out of range.
        """
        if index < 0 or index >= len(self):
            raise IndexError(f"position {index} out of range for size {len(self)}")
        node = self._root
        while True:
            assert node is not None
            left = _size(node.left)
            if index < left:
                node = node.left
            elif index == left:
                return node.item
            else:
                index -= left + 1
                node = node.right

    def first(self) -> Any:
        """Leftmost item.  Raises :class:`IndexError` on an empty treap."""
        if self._root is None:
            raise IndexError("first() on empty treap")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.item

    def last(self) -> Any:
        """Rightmost item.  Raises :class:`IndexError` on an empty treap."""
        if self._root is None:
            raise IndexError("last() on empty treap")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.item

    def successor(self, item: Hashable) -> Optional[Any]:
        """Item immediately after ``item``, or ``None`` if it is the last."""
        node = self._nodes[item]
        if node.right is not None:
            node = node.right
            while node.left is not None:
                node = node.left
            return node.item
        while node.parent is not None and node.parent.right is node:
            node = node.parent
        return node.parent.item if node.parent is not None else None

    def predecessor(self, item: Hashable) -> Optional[Any]:
        """Item immediately before ``item``, or ``None`` if it is the first."""
        node = self._nodes[item]
        if node.left is not None:
            node = node.left
            while node.right is not None:
                node = node.right
            return node.item
        while node.parent is not None and node.parent.left is node:
            node = node.parent
        return node.parent.item if node.parent is not None else None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert_front(self, item: Hashable) -> None:
        """Insert ``item`` as the new first element."""
        node = self._new_node(item)
        if self._root is None:
            self._root = node
            return
        anchor = self._root
        while anchor.left is not None:
            anchor = anchor.left
        anchor.left = node
        node.parent = anchor
        self._fix_after_attach(node)

    def insert_back(self, item: Hashable) -> None:
        """Insert ``item`` as the new last element."""
        node = self._new_node(item)
        if self._root is None:
            self._root = node
            return
        anchor = self._root
        while anchor.right is not None:
            anchor = anchor.right
        anchor.right = node
        node.parent = anchor
        self._fix_after_attach(node)

    def insert_after(self, anchor_item: Hashable, item: Hashable) -> None:
        """Insert ``item`` immediately after ``anchor_item``.

        Raises :class:`KeyError` if the anchor is absent.
        """
        anchor = self._nodes[anchor_item]
        node = self._new_node(item)
        if anchor.right is None:
            anchor.right = node
            node.parent = anchor
        else:
            succ = anchor.right
            while succ.left is not None:
                succ = succ.left
            succ.left = node
            node.parent = succ
        self._fix_after_attach(node)

    def insert_before(self, anchor_item: Hashable, item: Hashable) -> None:
        """Insert ``item`` immediately before ``anchor_item``."""
        anchor = self._nodes[anchor_item]
        node = self._new_node(item)
        if anchor.left is None:
            anchor.left = node
            node.parent = anchor
        else:
            pred = anchor.left
            while pred.right is not None:
                pred = pred.right
            pred.right = node
            node.parent = pred
        self._fix_after_attach(node)

    def extend_back(self, items: Iterable[Hashable]) -> None:
        """Append several items, preserving their given order."""
        for item in items:
            self.insert_back(item)

    def extend_front(self, items: Iterable[Hashable]) -> None:
        """Prepend several items so they appear in their given order.

        ``extend_front([a, b, c])`` on sequence ``[x]`` yields
        ``[a, b, c, x]`` — exactly the "insert ``V*`` at the beginning of
        ``O_{K+1}`` preserving relative order" step of ``OrderInsert``.
        """
        previous: Optional[Hashable] = None
        for item in items:
            if previous is None:
                self.insert_front(item)
            else:
                self.insert_after(previous, item)
            previous = item

    def move_after(self, anchor_item: Hashable, item: Hashable) -> None:
        """Relocate ``item`` to immediately after ``anchor_item``.

        Remove-then-reinsert: treap order keys are frozen rank *values*
        (not node references), so unlike the OM list no node identity
        needs preserving — the scan's cross-cursor comparisons stay valid
        because a backward move never changes the rank of any vertex
        after the cursor.
        """
        if anchor_item == item:
            raise ValueError(f"cannot move {item!r} after itself")
        self.remove(item)
        self.insert_after(anchor_item, item)

    def remove(self, item: Hashable) -> None:
        """Remove ``item`` from the sequence.

        Raises :class:`KeyError` if absent.
        """
        node = self._nodes.pop(item)
        # Rotate the node down until it is a leaf, then detach it.
        while node.left is not None or node.right is not None:
            if node.left is None:
                self._rotate_left(node)
            elif node.right is None:
                self._rotate_right(node)
            elif node.left.prio <= node.right.prio:
                self._rotate_right(node)
            else:
                self._rotate_left(node)
        parent = node.parent
        if parent is None:
            self._root = None
        else:
            if parent.left is node:
                parent.left = None
            else:
                parent.right = None
            node.parent = None
            walker: Optional[_Node] = parent
            while walker is not None:
                walker.size -= 1
                walker = walker.parent

    def clear(self) -> None:
        """Remove every item."""
        self._root = None
        self._nodes.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _new_node(self, item: Hashable) -> _Node:
        if item in self._nodes:
            raise ValueError(f"item {item!r} already stored in treap")
        node = _Node(item, self._rng.random())
        self._nodes[item] = node
        return node

    def _fix_after_attach(self, node: _Node) -> None:
        """After attaching a leaf: bump ancestor sizes, restore heap order."""
        walker = node.parent
        while walker is not None:
            walker.size += 1
            walker = walker.parent
        parent = node.parent
        while parent is not None and node.prio < parent.prio:
            if parent.left is node:
                self._rotate_right(parent)
            else:
                self._rotate_left(parent)
            parent = node.parent

    def _rotate_right(self, node: _Node) -> None:
        """Rotate ``node``'s left child up over ``node``."""
        pivot = node.left
        assert pivot is not None
        self._replace_in_parent(node, pivot)
        node.left = pivot.right
        if pivot.right is not None:
            pivot.right.parent = node
        pivot.right = node
        node.parent = pivot
        node.size = _size(node.left) + _size(node.right) + 1
        pivot.size = _size(pivot.left) + node.size + 1

    def _rotate_left(self, node: _Node) -> None:
        """Rotate ``node``'s right child up over ``node``."""
        pivot = node.right
        assert pivot is not None
        self._replace_in_parent(node, pivot)
        node.right = pivot.left
        if pivot.left is not None:
            pivot.left.parent = node
        pivot.left = node
        node.parent = pivot
        node.size = _size(node.left) + _size(node.right) + 1
        pivot.size = node.size + _size(pivot.right) + 1

    def _replace_in_parent(self, node: _Node, replacement: _Node) -> None:
        parent = node.parent
        replacement.parent = parent
        if parent is None:
            self._root = replacement
        elif parent.left is node:
            parent.left = replacement
        else:
            parent.right = replacement

    def check_invariants(self) -> None:
        """Audit structural invariants (sizes, parents, heap order).

        Used by the test-suite; raises :class:`AssertionError` on violation.
        """
        count = 0
        stack: list[_Node] = []
        node = self._root
        if node is not None and node.parent is not None:
            raise AssertionError("root has a parent")
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            count += 1
            expected = _size(node.left) + _size(node.right) + 1
            if node.size != expected:
                raise AssertionError(f"size mismatch at {node.item!r}")
            for child in (node.left, node.right):
                if child is not None:
                    if child.parent is not node:
                        raise AssertionError(f"parent mismatch at {child.item!r}")
                    if child.prio < node.prio:
                        raise AssertionError(f"heap violation at {child.item!r}")
            node = node.right
        if count != len(self._nodes):
            raise AssertionError("node map out of sync with tree")

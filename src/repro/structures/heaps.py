"""Lazy-deletion min-heap: the jump structure ``B`` of ``OrderInsert``.

``B`` holds ``(rank, vertex)`` pairs for the vertices of ``O_K`` that are
still worth visiting (``deg*(v) > 0`` or ``deg+(v) > K``).  The scan of
``OrderInsert`` repeatedly asks for the *earliest* such vertex and jumps
straight to it, skipping everything in between (the paper's Case-2a ranges).

Entries are discarded lazily: :meth:`discard` only drops the item from the
live map, and stale heap entries are skipped during :meth:`peek`/:meth:`pop`.
Re-inserting a previously discarded item is allowed (``deg*`` can drop to 0
and later become positive again); a duplicate physical entry is pushed but
validity is always judged against the live map, so correctness is unaffected.

Amortized cost: each physical entry is pushed and popped at most once, so a
sequence of ``p`` pushes costs ``O(p log p)`` overall regardless of how many
discards interleave.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable, Optional


class LazyMinHeap:
    """Min-heap over ``(key, item)`` pairs with O(1)-ish lazy discards."""

    def __init__(self) -> None:
        self._heap: list[tuple[Any, Any]] = []
        self._live: dict[Hashable, Any] = {}

    def __len__(self) -> int:
        """Number of *live* items (stale heap entries are not counted)."""
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._live

    def key_of(self, item: Hashable) -> Any:
        """Current key of a live item.  Raises :class:`KeyError` if absent."""
        return self._live[item]

    def push(self, key: Any, item: Hashable) -> None:
        """Insert ``item`` with priority ``key``.

        If the item is already live with the same key this is a no-op; if it
        is live with a different key the entry is re-keyed (old physical
        entry becomes stale).
        """
        current = self._live.get(item)
        if current is not None and current == key:
            return
        self._live[item] = key
        heapq.heappush(self._heap, (key, item))

    def discard(self, item: Hashable) -> bool:
        """Logically remove ``item``.  Returns ``True`` if it was live."""
        return self._live.pop(item, None) is not None

    def peek(self) -> Optional[tuple[Any, Any]]:
        """The live ``(key, item)`` with the smallest key, or ``None``.

        Physically pops stale entries encountered on the way.
        """
        heap = self._heap
        while heap:
            key, item = heap[0]
            if self._live.get(item) == key:
                return key, item
            heapq.heappop(heap)
        return None

    def pop(self) -> Optional[tuple[Any, Any]]:
        """Remove and return the smallest live ``(key, item)``, or ``None``."""
        top = self.peek()
        if top is None:
            return None
        heapq.heappop(self._heap)
        del self._live[top[1]]
        return top

    def clear(self) -> None:
        """Drop all entries, live and stale."""
        self._heap.clear()
        self._live.clear()

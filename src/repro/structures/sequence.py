"""Order-maintenance sequence backends for the k-order blocks.

The paper's speed argument rests on O(1) order tests inside a block
``O_k``.  This module defines the pluggable substrate for that:

* :class:`SequenceIndex` — the structural protocol every block backend
  satisfies: positional insertion/removal around anchors, ``precedes``,
  cheap comparable :meth:`~SequenceIndex.order_key` tokens for heap
  ordering, iteration, and diagnostics (``rank``/``select``).
* :class:`TaggedOrderList` — an order-maintenance (OM) list in the
  Dietz–Sleator style: a doubly-linked list whose nodes carry integer
  labels strictly increasing along the list, so ``precedes`` is a single
  integer comparison.  Inserting between two nodes bisects the label gap;
  when a gap is exhausted, a Bender-style *range relabeling* redistributes
  the labels of the smallest enclosing sparse-enough aligned label range.
  Queries are worst-case O(1); insertions and deletions are O(1) except
  for relabelings, whose amortized cost is logarithmic in the list size
  (the classic O(1)-amortized bound needs a second indirection level,
  which our workloads have not justified — the ``relabels`` counter
  tells).
* :class:`SequenceStats` — shared instrumentation: ``order_queries``
  (order tests answered), ``relabels`` (OM relabeling events) and
  ``rank_walk_steps`` (pointer hops spent computing ranks — the treap's
  hot-path cost that the OM backend eliminates).

The other backend, :class:`repro.structures.treap.OrderStatisticTreap`,
answers the same queries in O(log n) via rank walks; both plug into
:class:`repro.core.korder.KOrder` (``sequence="om" | "treap"``).

Order keys are the list nodes themselves (see ``order_key``), comparing
by their *current* label: a relabeling rewrites labels in place, so keys
held by a pending min-heap keep comparing correctly — the relative order
of any two stored items never changes while both stay stored, which is
exactly the invariant ``OrderInsert``'s jump heap relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    runtime_checkable,
)


@dataclass
class SequenceStats:
    """Operation counters shared by every block of one k-order index.

    Attributes
    ----------
    order_queries:
        Order tests answered: ``precedes`` calls plus ``order_key``
        token grants.  (Comparisons *between* granted tokens are not
        counted — token compares are plain integer/label comparisons.)
    relabels:
        OM-list relabeling events (label-range redistributions).  Stays 0
        for the treap backend.
    rank_walk_steps:
        Pointer hops spent answering rank queries — tree ascents for the
        treap, list walks for the OM list's diagnostic ``rank``.  An OM
        backend on the engine hot path keeps this at 0; that is the
        measurable claim behind the O(1) order-query design.
    """

    order_queries: int = 0
    relabels: int = 0
    rank_walk_steps: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for ``BatchResult``/bench reporting)."""
        return {
            "order_queries": self.order_queries,
            "relabels": self.relabels,
            "rank_walk_steps": self.rank_walk_steps,
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.order_queries = 0
        self.relabels = 0
        self.rank_walk_steps = 0


@runtime_checkable
class SequenceIndex(Protocol):
    """Protocol of a maintained sequence of distinct hashable items.

    Positions are defined purely by where items are inserted; there are
    no search keys.  Implementations: the order-statistic treap
    (O(log n) queries) and the tagged OM list (O(1) queries).
    """

    stats: SequenceStats

    def __len__(self) -> int: ...

    def __contains__(self, item: Hashable) -> bool: ...

    def __iter__(self) -> Iterator[Hashable]: ...

    def to_list(self) -> list[Any]: ...

    def precedes(self, a: Hashable, b: Hashable) -> bool: ...

    def order_key(self, item: Hashable) -> Any:
        """A token comparable against other tokens of this sequence.

        Tokens order exactly like the items they were granted for, for as
        long as the compared items stay stored — even across OM
        relabelings.  This is what heaps key on instead of ranks.
        """
        ...

    def rank(self, item: Hashable) -> int: ...

    def select(self, index: int) -> Any: ...

    def first(self) -> Any: ...

    def last(self) -> Any: ...

    def successor(self, item: Hashable) -> Optional[Any]: ...

    def predecessor(self, item: Hashable) -> Optional[Any]: ...

    def insert_front(self, item: Hashable) -> None: ...

    def insert_back(self, item: Hashable) -> None: ...

    def insert_after(self, anchor_item: Hashable, item: Hashable) -> None: ...

    def insert_before(self, anchor_item: Hashable, item: Hashable) -> None: ...

    def extend_front(self, items: Iterable[Hashable]) -> None: ...

    def extend_back(self, items: Iterable[Hashable]) -> None: ...

    def move_after(self, anchor_item: Hashable, item: Hashable) -> None:
        """Relocate a stored item to immediately after the anchor,
        without invalidating previously granted order-key tokens for
        items whose relative order is unchanged."""
        ...

    def remove(self, item: Hashable) -> None: ...

    def clear(self) -> None: ...

    def check_invariants(self) -> None: ...


class _ListNode:
    """One OM-list node: the item plus its integer order label.

    Nodes double as the list's *live order keys* (what
    :meth:`TaggedOrderList.order_key` returns): they compare by their
    current label, and relabeling rewrites labels in place without
    reordering items, so a node held as a heap key keeps comparing
    correctly across relabelings.  Equality stays identity — one stored
    item, one node — which is what lazy heaps use to recognize re-pushes.
    """

    __slots__ = ("item", "label", "prev", "next")

    def __init__(self, item: Hashable, label: int) -> None:
        self.item = item
        self.label = label
        self.prev: Optional[_ListNode] = None
        self.next: Optional[_ListNode] = None

    def __lt__(self, other: "_ListNode") -> bool:
        return self.label < other.label

    def __le__(self, other: "_ListNode") -> bool:
        return self.label <= other.label

    def __gt__(self, other: "_ListNode") -> bool:
        return self.label > other.label

    def __ge__(self, other: "_ListNode") -> bool:
        return self.label >= other.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ListNode({self.item!r}, label={self.label})"


class TaggedOrderList:
    """Dietz–Sleator tagged order-maintenance list with Bender relabeling.

    A doubly-linked list between two sentinels labeled ``0`` and
    ``_SPAN``; stored nodes carry strictly increasing integer labels in
    between.  ``precedes`` is one integer comparison; insertion bisects
    the neighboring label gap (with wide fast-path gaps for appends and
    prepends, and batch-aware label preallocation for whole
    :meth:`extend_front` chains) and, when a gap is exhausted, relabels
    the smallest
    enclosing label-aligned range whose density is below the level's
    threshold — Bender et al.'s simplified tag-management policy.

    Parameters
    ----------
    items:
        Optional iterable appended in order.
    stats:
        Shared :class:`SequenceStats`; a private one is created when
        omitted.
    rng:
        Accepted and ignored (constructor compatibility with the treap
        backend — the OM list is deterministic and needs no priorities).
    """

    #: Exclusive upper bound of the label space (tail sentinel's label).
    _SPAN = 1 << 62
    #: Fast-path spacing for appends/prepends: leaves room for ~20
    #: same-gap bisections before any relabeling happens.
    _GAP = 1 << 20

    def __init__(
        self,
        items: Iterable[Hashable] = (),
        stats: Optional[SequenceStats] = None,
        rng: object = None,
    ) -> None:
        self.stats = stats if stats is not None else SequenceStats()
        self._head = _ListNode(None, 0)
        self._tail = _ListNode(None, self._SPAN)
        self._head.next = self._tail
        self._tail.prev = self._head
        self._nodes: dict[Hashable, _ListNode] = {}
        for item in items:
            self.insert_back(item)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return bool(self._nodes)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._nodes

    def __iter__(self) -> Iterator[Hashable]:
        node = self._head.next
        while node is not self._tail:
            yield node.item
            node = node.next

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaggedOrderList({list(self)!r})"

    def to_list(self) -> list[Any]:
        """The stored sequence as a plain list (left to right)."""
        return list(self)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def precedes(self, a: Hashable, b: Hashable) -> bool:
        """``True`` iff ``a`` appears strictly before ``b`` — one integer
        comparison, the O(1) query the paper's cost model assumes."""
        self.stats.order_queries += 1
        return self._nodes[a].label < self._nodes[b].label

    def order_key(self, item: Hashable) -> _ListNode:
        """The item's node as a live comparable token — O(1) to produce
        and to compare, and immune to relabeling (see :class:`_ListNode`)."""
        self.stats.order_queries += 1
        return self._nodes[item]

    def rank(self, item: Hashable) -> int:
        """0-based position of ``item`` — O(position) list walk.

        Diagnostic only (audits, tests); the engine hot paths never call
        it.  Walk length is charged to ``stats.rank_walk_steps``.
        """
        target = self._nodes[item]  # KeyError on absent items, like the treap
        r = 0
        node = self._head.next
        while node is not target:
            r += 1
            node = node.next
        self.stats.rank_walk_steps += r
        return r

    def select(self, index: int) -> Any:
        """The item at position ``index`` — O(index) walk, diagnostic only.

        Raises :class:`IndexError` when out of range.
        """
        if index < 0 or index >= len(self):
            raise IndexError(f"position {index} out of range for size {len(self)}")
        node = self._head.next
        for _ in range(index):
            node = node.next
        return node.item

    def first(self) -> Any:
        """Leftmost item.  Raises :class:`IndexError` on an empty list."""
        if not self._nodes:
            raise IndexError("first() on empty list")
        return self._head.next.item

    def last(self) -> Any:
        """Rightmost item.  Raises :class:`IndexError` on an empty list."""
        if not self._nodes:
            raise IndexError("last() on empty list")
        return self._tail.prev.item

    def successor(self, item: Hashable) -> Optional[Any]:
        """Item immediately after ``item``, or ``None`` if it is the last."""
        node = self._nodes[item].next
        return None if node is self._tail else node.item

    def predecessor(self, item: Hashable) -> Optional[Any]:
        """Item immediately before ``item``, or ``None`` if it is the first."""
        node = self._nodes[item].prev
        return None if node is self._head else node.item

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert_front(self, item: Hashable) -> None:
        """Insert ``item`` as the new first element."""
        self._insert_between(self._head, self._head.next, item)

    def insert_back(self, item: Hashable) -> None:
        """Insert ``item`` as the new last element."""
        self._insert_between(self._tail.prev, self._tail, item)

    def insert_after(self, anchor_item: Hashable, item: Hashable) -> None:
        """Insert ``item`` immediately after ``anchor_item``.

        Raises :class:`KeyError` if the anchor is absent.
        """
        anchor = self._nodes[anchor_item]
        self._insert_between(anchor, anchor.next, item)

    def insert_before(self, anchor_item: Hashable, item: Hashable) -> None:
        """Insert ``item`` immediately before ``anchor_item``."""
        anchor = self._nodes[anchor_item]
        self._insert_between(anchor.prev, anchor, item)

    def extend_back(self, items: Iterable[Hashable]) -> None:
        """Append several items, preserving their given order."""
        for item in items:
            self.insert_back(item)

    def extend_front(self, items: Iterable[Hashable]) -> None:
        """Prepend several items so they appear in their given order.

        ``extend_front([a, b, c])`` on sequence ``[x]`` yields
        ``[a, b, c, x]`` — the ``OrderInsert`` ending-phase move.

        The whole chain is labeled in one pass: a label gap sized to the
        chain is reserved in front of the current first node and the
        chain's labels are spread evenly across it.  Inserting the chain
        one item at a time would repeatedly bisect the same gap and
        trigger a relabeling roughly every ``log2(_GAP)`` items — the
        "relabel storm" that made bulk loads pay O(chain * relabel) —
        whereas the preallocated chain triggers at most one spread of
        the existing labels (and typically none: the ``relabels``
        counter stays flat).
        """
        chain = list(items)
        if not chain:
            return
        seen: set = set()
        for item in chain:
            if item in self._nodes or item in seen:
                raise ValueError(f"item {item!r} already stored in sequence")
            seen.add(item)
        first = self._head.next
        if first.label <= len(chain):
            # Not enough label room in front: spread the existing labels
            # over the whole space once, instead of cascading per-item
            # relabels while the chain lands.
            self._spread()
        step = first.label // (len(chain) + 1)
        if step < 1:  # pragma: no cover - needs ~2^61 stored items
            previous: Optional[Hashable] = None
            for item in chain:
                if previous is None:
                    self.insert_front(item)
                else:
                    self.insert_after(previous, item)
                previous = item
            return
        prev = self._head
        label = 0
        for item in chain:
            label += step
            node = _ListNode(item, label)
            self._nodes[item] = node
            node.prev = prev
            prev.next = node
            prev = node
        prev.next = first
        first.prev = prev

    def move_after(self, anchor_item: Hashable, item: Hashable) -> None:
        """Relocate ``item`` to immediately after ``anchor_item``.

        Reuses ``item``'s node (and hence its identity as an
        :meth:`order_key` token): the node's label always reflects its
        *current* position, so tokens held elsewhere — e.g. stale lazy
        heap entries — keep comparing by live position instead of going
        stale, which a remove-then-reinsert (fresh node) would cause.
        """
        node = self._nodes[item]
        anchor = self._nodes[anchor_item]
        if anchor is node:
            raise ValueError(f"cannot move {item!r} after itself")
        node.prev.next = node.next
        node.next.prev = node.prev
        self._place(node, anchor, anchor.next)

    def remove(self, item: Hashable) -> None:
        """Remove ``item`` from the sequence — O(1) unlink.

        Raises :class:`KeyError` if absent.
        """
        node = self._nodes.pop(item)
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = node.next = None

    def clear(self) -> None:
        """Remove every item."""
        self._nodes.clear()
        self._head.next = self._tail
        self._tail.prev = self._head

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _insert_between(
        self, prev: _ListNode, nxt: _ListNode, item: Hashable
    ) -> None:
        if item in self._nodes:
            raise ValueError(f"item {item!r} already stored in sequence")
        node = _ListNode(item, 0)
        self._nodes[item] = node
        self._place(node, prev, nxt)

    def _place(self, node: _ListNode, prev: _ListNode, nxt: _ListNode) -> None:
        """Label and link an (unlinked) node between ``prev`` and ``nxt``."""
        if nxt.label - prev.label < 2:
            # Gap exhausted: redistribute labels around a *real* anchor
            # (sentinel labels are fixed).  Guaranteed to leave
            # ``nxt.label - prev.label >= 2`` (see _relabel).
            self._relabel(prev if prev is not self._head else nxt)
        lo, hi = prev.label, nxt.label
        if nxt is self._tail and lo + self._GAP < hi:
            node.label = lo + self._GAP  # append fast path
        elif prev is self._head and hi - self._GAP > lo:
            node.label = hi - self._GAP  # prepend fast path
        else:
            node.label = lo + (hi - lo) // 2
        node.prev = prev
        node.next = nxt
        prev.next = node
        nxt.prev = node

    def _relabel(self, anchor: _ListNode) -> None:
        """Redistribute labels around ``anchor`` (Bender-style).

        Grows label-aligned candidate ranges of width ``2^i`` around the
        anchor until one is sparse enough — fewer than ``(4/3)^i`` nodes,
        the overflow-threshold density ``(2/T)^i`` with ``T = 3/2`` —
        *and* wide enough to give every node (and the triggering gap) a
        slack of at least 2.  Those nodes are then spread evenly over the
        range.  Every gap inside the relabeled range, and the gaps to the
        neighbors just outside it, end up >= 2, so the pending insertion
        always succeeds without cascading.
        """
        self.stats.relabels += 1
        i = 1
        while True:
            width = 1 << i
            if width >= self._SPAN:
                # Degenerate fallback: spread everything over the whole
                # label space (unreachable until ~2^40 stored items).
                self._spread(count=False)
                return
            base = anchor.label - (anchor.label % width)
            first = anchor
            count = 1
            node = anchor.prev
            while node is not self._head and node.label >= base:
                first = node
                count += 1
                node = node.prev
            node = anchor.next
            while node is not self._tail and node.label < base + width:
                count += 1
                node = node.next
            if count <= 4**i // 3**i and width >= 2 * (count + 1):
                step = width // (count + 1)
                label = base
                node = first
                for _ in range(count):
                    label += step
                    node.label = label
                    node = node.next
                return
            i += 1

    def _spread(self, count: bool = True) -> None:
        """Redistribute every label evenly over the whole label space.

        One relabeling event (charged to ``stats.relabels`` unless called
        from ``_relabel``, which already charged itself); leaves the
        front gap at ``_SPAN // (n + 1)``, which is what
        :meth:`extend_front` relies on to reserve chain-sized room.
        """
        if count:
            self.stats.relabels += 1
        nodes = list(self._iter_nodes())
        step = self._SPAN // (len(nodes) + 1)
        label = 0
        for node in nodes:
            label += step
            node.label = label

    def _iter_nodes(self) -> Iterator[_ListNode]:
        node = self._head.next
        while node is not self._tail:
            yield node
            node = node.next

    def check_invariants(self) -> None:
        """Audit links, labels, and the node map.

        Used by the test-suite; raises :class:`AssertionError` on
        violation.
        """
        count = 0
        node = self._head.next
        label = self._head.label
        if self._head.label != 0 or self._tail.label != self._SPAN:
            raise AssertionError("sentinel labels corrupted")
        while node is not self._tail:
            count += 1
            if node.label <= label:
                raise AssertionError(
                    f"labels not strictly increasing at {node.item!r}"
                )
            if node.label >= self._SPAN:
                raise AssertionError(f"label out of range at {node.item!r}")
            if node.next.prev is not node or node.prev.next is not node:
                raise AssertionError(f"broken links at {node.item!r}")
            if self._nodes.get(node.item) is not node:
                raise AssertionError(f"node map out of sync at {node.item!r}")
            label = node.label
            node = node.next
        if count != len(self._nodes):
            raise AssertionError("node map out of sync with list")

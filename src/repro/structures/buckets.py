"""Bucketed degree queues for linear-time core decomposition.

``CoreDecomp`` (Algorithm 1 of the paper) peels vertices whose remaining
degree is below the current ``k``.  The classic Batagelj–Zaversnik
implementation keeps vertices bucketed by their *current* degree so the next
vertex to peel is found in amortized ``O(1)``.

Two structures live here:

* :class:`IndexedSet` — a set with O(1) membership, insertion, removal *and*
  O(1) uniform random sampling (array + position map with swap-removal).
  Random sampling is what the "random deg+ first" k-order heuristic needs.
* :class:`DegreeBuckets` — vertices bucketed by current degree, supporting
  ``decrease``, removal, and extraction of the minimum / maximum / random
  vertex among those whose degree is below a bound.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Iterator, Optional


class IndexedSet:
    """A hash set that also supports O(1) uniform random choice."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._items: list[Hashable] = []
        self._pos: dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def add(self, item: Hashable) -> bool:
        """Insert ``item``; returns ``False`` if it was already present."""
        if item in self._pos:
            return False
        self._pos[item] = len(self._items)
        self._items.append(item)
        return True

    def discard(self, item: Hashable) -> bool:
        """Remove ``item`` if present (swap with the tail; O(1))."""
        pos = self._pos.pop(item, None)
        if pos is None:
            return False
        tail = self._items.pop()
        if pos < len(self._items):
            # ``item`` was not the tail: move the tail into its slot.
            self._items[pos] = tail
            self._pos[tail] = pos
        return True

    def pop_any(self) -> Hashable:
        """Remove and return an arbitrary item (the array tail)."""
        if not self._items:
            raise KeyError("pop from empty IndexedSet")
        item = self._items[-1]
        self.discard(item)
        return item

    def choose(self, rng: random.Random) -> Hashable:
        """Uniformly random member (not removed)."""
        if not self._items:
            raise KeyError("choose from empty IndexedSet")
        return self._items[rng.randrange(len(self._items))]

    def pop_random(self, rng: random.Random) -> Hashable:
        """Remove and return a uniformly random member."""
        item = self.choose(rng)
        self.discard(item)
        return item


class DegreeBuckets:
    """Vertices bucketed by current degree.

    Supports the three peeling policies used to generate k-orders:

    * ``pop_min()`` — smallest-degree vertex (the "small deg+ first"
      heuristic, i.e. the canonical BZ order);
    * ``pop_max_below(bound)`` — largest-degree vertex with degree < bound
      ("large deg+ first");
    * ``pop_random_below(bound, rng)`` — uniform vertex with degree < bound
      ("random deg+ first").

    ``decrease(v)`` moves a vertex one bucket down; degrees never increase
    during peeling, which keeps the min-pointer amortized O(1).
    """

    def __init__(self, degrees: dict[Hashable, int]) -> None:
        self._degree: dict[Hashable, int] = dict(degrees)
        max_deg = max(self._degree.values(), default=0)
        self._buckets: list[IndexedSet] = [IndexedSet() for _ in range(max_deg + 1)]
        for vertex, degree in self._degree.items():
            if degree < 0:
                raise ValueError(f"negative degree for {vertex!r}")
            self._buckets[degree].add(vertex)
        self._min_ptr = 0
        self._size = len(self._degree)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._degree

    def degree_of(self, vertex: Hashable) -> int:
        """Current (remaining) degree of ``vertex``."""
        return self._degree[vertex]

    def decrease(self, vertex: Hashable) -> int:
        """Decrement the degree of ``vertex`` by one; returns the new degree."""
        degree = self._degree[vertex]
        if degree == 0:
            raise ValueError(f"degree of {vertex!r} already 0")
        self._buckets[degree].discard(vertex)
        degree -= 1
        self._degree[vertex] = degree
        self._buckets[degree].add(vertex)
        if degree < self._min_ptr:
            self._min_ptr = degree
        return degree

    def remove(self, vertex: Hashable) -> int:
        """Remove ``vertex``; returns the degree it had."""
        degree = self._degree.pop(vertex)
        self._buckets[degree].discard(vertex)
        self._size -= 1
        return degree

    def pop_min(self) -> tuple[Hashable, int]:
        """Remove and return ``(vertex, degree)`` with the smallest degree."""
        if not self._size:
            raise KeyError("pop from empty DegreeBuckets")
        while self._min_ptr < len(self._buckets) and not self._buckets[self._min_ptr]:
            self._min_ptr += 1
        bucket = self._buckets[self._min_ptr]
        vertex = bucket.pop_any()
        degree = self._degree.pop(vertex)
        self._size -= 1
        return vertex, degree

    def min_degree(self) -> Optional[int]:
        """Smallest current degree, or ``None`` when empty."""
        if not self._size:
            return None
        while self._min_ptr < len(self._buckets) and not self._buckets[self._min_ptr]:
            self._min_ptr += 1
        return self._min_ptr

    def pop_max_below(self, bound: int) -> Optional[tuple[Hashable, int]]:
        """Remove the largest-degree vertex with degree < ``bound``.

        Returns ``None`` when no vertex qualifies.  Linear scan downwards
        from ``bound - 1``; the peeling loops call this with slowly growing
        ``bound`` so the scan cost is amortized over the whole peel.
        """
        top = min(bound - 1, len(self._buckets) - 1)
        for degree in range(top, -1, -1):
            bucket = self._buckets[degree]
            if bucket:
                vertex = bucket.pop_any()
                self._degree.pop(vertex)
                self._size -= 1
                return vertex, degree
        return None

    def pop_random_below(
        self, bound: int, rng: random.Random
    ) -> Optional[tuple[Hashable, int]]:
        """Remove a uniformly random vertex among those with degree < ``bound``.

        Uniformity is over the union of qualifying buckets, achieved by
        weighting each non-empty bucket by its size.
        """
        top = min(bound - 1, len(self._buckets) - 1)
        total = 0
        non_empty: list[IndexedSet] = []
        for degree in range(0, top + 1):
            bucket = self._buckets[degree]
            if bucket:
                non_empty.append(bucket)
                total += len(bucket)
        if total == 0:
            return None
        pick = rng.randrange(total)
        for bucket in non_empty:
            if pick < len(bucket):
                vertex = bucket._items[pick]
                bucket.discard(vertex)
                degree = self._degree.pop(vertex)
                self._size -= 1
                return vertex, degree
            pick -= len(bucket)
        raise AssertionError("unreachable")  # pragma: no cover

"""The service's core-event stream: records and subscriptions.

Every commit a :class:`~repro.service.CoreService` performs emits one
:class:`CoreEvent` per vertex whose core number *net-changed* over the
commit, derived from the engine's exact ``BatchResult.changed`` deltas.
Subscribers register a callback (optionally filtered to the cores at or
above a level of interest) and receive the commit's events in a
deterministic order — the downstream-analysis hook the paper's
motivation sections describe (community tracking, engagement monitoring)
without ever polling engine state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Optional, Sequence

from repro.engine.batch import vertex_sort_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.service.session import CoreService

Vertex = Hashable


@dataclass(frozen=True)
class CoreEvent:
    """One vertex's net core-number change over one commit.

    Attributes
    ----------
    vertex:
        The vertex whose core number changed.
    old_core / new_core:
        Core number before and after the commit (``0`` for a vertex the
        commit introduced).  The two always differ.
    receipt_id:
        Id of the :class:`~repro.service.transactions.CommitReceipt`
        that produced the event, for correlating events with commits.
    """

    vertex: Vertex
    old_core: int
    new_core: int
    receipt_id: int

    @property
    def delta(self) -> int:
        """``new_core - old_core`` (never zero)."""
        return self.new_core - self.old_core

    @property
    def kind(self) -> str:
        """``"promotion"`` or ``"demotion"``."""
        return "promotion" if self.new_core > self.old_core else "demotion"


EventCallback = Callable[[CoreEvent], None]


class Subscription:
    """A live event subscription; close it (or exit its context) to stop.

    Created by :meth:`repro.service.CoreService.subscribe` — not
    directly.  With ``min_k`` set, only events that *touch* the cores at
    or above that level are delivered: a vertex entering, leaving, or
    moving within the ``>= min_k`` region (``max(old, new) >= min_k``).
    """

    __slots__ = ("_service", "_callback", "_min_k", "_active")

    def __init__(
        self,
        service: "CoreService",
        callback: EventCallback,
        min_k: Optional[int] = None,
    ) -> None:
        self._service = service
        self._callback = callback
        self._min_k = min_k
        self._active = True

    @property
    def active(self) -> bool:
        """Whether the subscription still receives events."""
        return self._active

    @property
    def min_k(self) -> Optional[int]:
        """The subscription's core-level filter (``None`` = everything)."""
        return self._min_k

    def close(self) -> None:
        """Stop receiving events; idempotent."""
        if self._active:
            self._active = False
            self._service._unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _deliver(self, events: Sequence[CoreEvent]) -> None:
        """Dispatch a commit's events through the filter, in order."""
        min_k = self._min_k
        for event in events:
            if not self._active:
                break  # the callback closed us mid-commit
            if min_k is not None and max(event.old_core, event.new_core) < min_k:
                continue
            self._callback(event)


def events_from_deltas(
    deltas, new_cores, receipt_id: int
) -> tuple[CoreEvent, ...]:
    """Build a commit's ordered event tuple from net core deltas.

    ``deltas`` maps vertex -> net change (zeros never appear — engines
    drop them), ``new_cores`` the same vertices' post-commit core
    numbers (captured at commit time, so the events stay correct however
    the graph evolves afterwards).  Events are ordered by
    :func:`~repro.engine.batch.vertex_sort_key`, so one commit always
    yields the same sequence regardless of engine schedule.
    """
    return tuple(
        CoreEvent(v, new_cores[v] - delta, new_cores[v], receipt_id)
        for v, delta in sorted(
            deltas.items(), key=lambda item: vertex_sort_key(item[0])
        )
    )

"""The service's core-event stream: records and subscriptions.

Every commit a :class:`~repro.service.CoreService` performs emits one
:class:`CoreEvent` per vertex whose core number *net-changed* over the
commit, derived from the engine's exact ``BatchResult.changed`` deltas.
Subscribers register a callback (optionally filtered to the cores at or
above a level of interest) and receive the commit's events in a
deterministic order — the downstream-analysis hook the paper's
motivation sections describe (community tracking, engagement monitoring)
without ever polling engine state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Optional, Sequence

from repro.engine.batch import vertex_sort_key
from repro.errors import ServiceError, SubscriptionOverflowError

#: Accepted overflow policies for bounded subscriptions.
OVERFLOW_POLICIES = ("block", "drop_oldest", "error")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.service.session import CoreService

Vertex = Hashable


@dataclass(frozen=True)
class CoreEvent:
    """One vertex's net core-number change over one commit.

    Attributes
    ----------
    vertex:
        The vertex whose core number changed.
    old_core / new_core:
        Core number before and after the commit (``0`` for a vertex the
        commit introduced).  The two always differ.
    receipt_id:
        Id of the :class:`~repro.service.transactions.CommitReceipt`
        that produced the event, for correlating events with commits.
    """

    vertex: Vertex
    old_core: int
    new_core: int
    receipt_id: int

    @property
    def delta(self) -> int:
        """``new_core - old_core`` (never zero)."""
        return self.new_core - self.old_core

    @property
    def kind(self) -> str:
        """``"promotion"`` or ``"demotion"``."""
        return "promotion" if self.new_core > self.old_core else "demotion"


EventCallback = Callable[[CoreEvent], None]


class Subscription:
    """A live event subscription; close it (or exit its context) to stop.

    Created by :meth:`repro.service.CoreService.subscribe` — not
    directly.  With ``min_k`` set, only events that *touch* the cores at
    or above that level are delivered: a vertex entering, leaving, or
    moving within the ``>= min_k`` region (``max(old, new) >= min_k``).

    **Unbounded (default):** ``callback(event)`` runs inline on the
    commit path, one call per filtered event — a slow callback slows
    every commit.

    **Bounded (``max_pending=N``):** filtered events land in an internal
    buffer of at most ``N`` events instead; the consumer empties it on
    its own schedule with :meth:`drain` (through the callback) or
    :meth:`take` (raw events — pass ``callback=None`` for a pure
    pull-mode subscription).  When a commit would overflow the buffer,
    the ``overflow`` policy decides:

    ``"block"``
        the commit path drains the whole backlog through the callback
        first (the producer pays for the lagging consumer — synchronous
        backpressure);
    ``"drop_oldest"``
        the oldest buffered event is discarded and
        :attr:`dropped_events` incremented (bounded memory, lossy —
        the policy the async serving front uses per subscriber);
    ``"error"``
        :class:`~repro.errors.SubscriptionOverflowError` is raised out
        of the commit (which has already been applied — the same
        contract as a raising callback).
    """

    __slots__ = (
        "_service",
        "_callback",
        "_min_k",
        "_active",
        "_max_pending",
        "_overflow",
        "_pending",
        "dropped_events",
    )

    def __init__(
        self,
        service: "CoreService",
        callback: Optional[EventCallback],
        min_k: Optional[int] = None,
        max_pending: Optional[int] = None,
        overflow: str = "block",
    ) -> None:
        if overflow not in OVERFLOW_POLICIES:
            raise ServiceError(
                f"unknown overflow policy {overflow!r}; choose from "
                f"{', '.join(OVERFLOW_POLICIES)}"
            )
        if max_pending is not None and max_pending < 1:
            raise ServiceError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if callback is None:
            if max_pending is None:
                raise ServiceError(
                    "a subscription without a callback must be bounded "
                    "(pass max_pending=...) and consumed via take()"
                )
            if overflow == "block":
                raise ServiceError(
                    "overflow='block' drains through the callback; a "
                    "pull-mode (callback=None) subscription needs "
                    "'drop_oldest' or 'error'"
                )
        self._service = service
        self._callback = callback
        self._min_k = min_k
        self._active = True
        self._max_pending = max_pending
        self._overflow = overflow
        self._pending: deque[CoreEvent] = deque()
        #: Events discarded by the ``drop_oldest`` policy so far.
        self.dropped_events = 0

    @property
    def active(self) -> bool:
        """Whether the subscription still receives events."""
        return self._active

    @property
    def min_k(self) -> Optional[int]:
        """The subscription's core-level filter (``None`` = everything)."""
        return self._min_k

    @property
    def max_pending(self) -> Optional[int]:
        """The buffer bound (``None`` = unbounded inline delivery)."""
        return self._max_pending

    @property
    def overflow(self) -> str:
        """The bounded buffer's overflow policy."""
        return self._overflow

    @property
    def pending(self) -> int:
        """Buffered events awaiting :meth:`drain` / :meth:`take`."""
        return len(self._pending)

    def close(self) -> None:
        """Stop receiving events; idempotent.

        Already-buffered events stay readable through :meth:`drain` /
        :meth:`take` — closing stops *new* deliveries, it does not
        discard what the consumer has not seen yet.
        """
        if self._active:
            self._active = False
            self._service._unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def drain(self, limit: Optional[int] = None) -> int:
        """Deliver up to ``limit`` buffered events through the callback.

        Returns how many were delivered.  Raises
        :class:`~repro.errors.ServiceError` on a pull-mode subscription
        (no callback) — use :meth:`take` there.
        """
        if self._callback is None:
            raise ServiceError(
                "pull-mode subscription has no callback; use take()"
            )
        delivered = 0
        while self._pending and (limit is None or delivered < limit):
            self._callback(self._pending.popleft())
            delivered += 1
        return delivered

    def take(self, limit: Optional[int] = None) -> tuple[CoreEvent, ...]:
        """Pop and return up to ``limit`` buffered events (all if ``None``)."""
        if limit is None or limit >= len(self._pending):
            events = tuple(self._pending)
            self._pending.clear()
            return events
        return tuple(
            self._pending.popleft() for _ in range(max(0, limit))
        )

    def _deliver(self, events: Sequence[CoreEvent]) -> None:
        """Dispatch a commit's events through the filter, in order."""
        min_k = self._min_k
        bounded = self._max_pending is not None
        for event in events:
            if not self._active:
                break  # the callback closed us mid-commit
            if min_k is not None and max(event.old_core, event.new_core) < min_k:
                continue
            if not bounded:
                self._callback(event)
                continue
            if len(self._pending) >= self._max_pending:
                if self._overflow == "drop_oldest":
                    self._pending.popleft()
                    self.dropped_events += 1
                elif self._overflow == "error":
                    raise SubscriptionOverflowError(
                        f"subscription buffer full ({self._max_pending} "
                        "pending events); drain() or take() them, raise "
                        "max_pending, or pick a lossy overflow policy"
                    )
                else:  # block: the commit path pays to flush the backlog
                    self.drain()
            self._pending.append(event)


def events_from_deltas(
    deltas, new_cores, receipt_id: int
) -> tuple[CoreEvent, ...]:
    """Build a commit's ordered event tuple from net core deltas.

    ``deltas`` maps vertex -> net change (zeros never appear — engines
    drop them), ``new_cores`` the same vertices' post-commit core
    numbers (captured at commit time, so the events stay correct however
    the graph evolves afterwards).  Events are ordered by
    :func:`~repro.engine.batch.vertex_sort_key`, so one commit always
    yields the same sequence regardless of engine schedule.
    """
    return tuple(
        CoreEvent(v, new_cores[v] - delta, new_cores[v], receipt_id)
        for v, delta in sorted(
            deltas.items(), key=lambda item: vertex_sort_key(item[0])
        )
    )

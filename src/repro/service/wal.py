"""Durable write-ahead commit log for :class:`~repro.service.CoreService`.

The order-based index is pure in-memory state: a process crash loses
every commit since the last explicit snapshot, and rebuilding it from
the edge list pays Table III's full re-decomposition cost.  The service
already produces the exact recovery material for free — each commit is
one validated :class:`~repro.engine.batch.Batch` with a monotone receipt
id — so durability is an append-only log of those records, replayed
onto the latest snapshot at recovery.

Log format
----------
An append-only text file of framed JSON records, one per line::

    <length> <crc32-hex> <payload>\\n

``length`` is the payload's byte length and ``crc32`` its checksum, so a
torn tail write (crash mid-append) is *detected* — the frame fails —
and *repaired* by truncating back to the last valid record.  A bad
frame followed by further valid records is not a torn tail; that raises
:class:`~repro.errors.LogCorruptionError` instead of silently dropping
committed history.

The first record is the header (``kind: "header"``): log version, the
engine registry name / seed / options needed to rebuild an empty engine
when no snapshot exists, and ``base_receipt`` — the receipt id already
captured by the snapshot this log continues from.  Every other record
is a commit: its receipt id plus the batch's ops.  Vertices must be
JSON-representable (the same contract as :mod:`repro.core.snapshot`).

Fsync policy
------------
``always`` fsyncs after every append (commit durability), ``interval``
fsyncs every ``fsync_every`` appends and on close (bounded loss window),
``never`` leaves syncing to the OS (flush-only; cheapest, loses the
page-cache tail on power failure but nothing on a process crash).

Crash points (:mod:`repro.testing.faults`): ``wal.before_append``,
``wal.mid_append``, ``wal.after_append``, ``wal.before_fsync``,
``wal.after_fsync``.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.engine.batch import Batch
from repro.errors import LogCorruptionError, ServiceError
from repro.testing.faults import inject, is_armed

PathLike = Union[str, Path]

#: Log format version; bump on framing or payload layout changes.
WAL_VERSION = 1

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "interval", "never")

#: Default append count between fsyncs under the ``interval`` policy.
DEFAULT_FSYNC_EVERY = 64


def _frame(payload: bytes) -> bytes:
    return b"%d %08x " % (len(payload), zlib.crc32(payload)) + payload + b"\n"


def _parse_frame(line: bytes) -> Optional[dict]:
    """Decode one framed line; ``None`` when the frame is invalid."""
    parts = line.split(b" ", 2)
    if len(parts) != 3:
        return None
    length_b, crc_b, payload = parts
    try:
        length = int(length_b)
        crc = int(crc_b, 16)
    except ValueError:
        return None
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


@dataclass(frozen=True)
class LogInfo:
    """Outcome of scanning a log file (see :func:`scan`).

    Attributes
    ----------
    header:
        The decoded header record.
    records:
        ``(receipt_id, ops)`` pairs for every valid commit record, in
        log order; ``ops`` is a list of ``[kind, u, v]`` triples.
    valid_bytes:
        Length of the valid framed prefix; bytes beyond it are a torn
        tail (:meth:`torn_bytes`).
    total_bytes:
        File size at scan time.
    """

    header: dict
    records: list
    valid_bytes: int
    total_bytes: int
    #: receipt id -> idempotency token, for records that carried one
    #: (see :meth:`WriteAheadLog.append`); empty otherwise.
    tokens: dict = field(default_factory=dict)

    @property
    def torn_bytes(self) -> int:
        """Bytes of torn tail to be truncated on attach."""
        return self.total_bytes - self.valid_bytes

    @property
    def last_receipt(self) -> int:
        """Highest receipt id the log knows about (records or header)."""
        if self.records:
            return self.records[-1][0]
        return self.header.get("base_receipt", 0)


def scan(path: PathLike) -> LogInfo:
    """Read and validate ``path``; detect (but do not repair) torn tails.

    Raises :class:`~repro.errors.LogCorruptionError` for a missing or
    malformed header, a bad frame that is *not* at the tail (valid
    records follow it), or out-of-order receipt ids.
    """
    data = Path(path).read_bytes()
    lines = data.split(b"\n")
    # A well-formed log ends with "\n", so the final split element is
    # empty; anything else is an unterminated (torn) final record.
    offset = 0
    parsed: list[tuple[int, dict]] = []  # (end_offset, record)
    bad_at: Optional[int] = None
    for line in lines:
        if not line and offset >= len(data):
            break
        record = _parse_frame(line) if line else None
        end = offset + len(line) + 1  # +1 for the newline
        if record is None or end > len(data):
            if bad_at is None:
                bad_at = offset
        elif bad_at is not None:
            raise LogCorruptionError(
                f"commit log {str(path)!r} has a corrupt record at byte "
                f"{bad_at} followed by valid records — not a torn tail; "
                "refusing to drop committed history"
            )
        else:
            parsed.append((end, record))
        offset = end
    if not parsed or parsed[0][1].get("kind") != "header":
        raise LogCorruptionError(
            f"commit log {str(path)!r} has no valid header record"
        )
    header = parsed[0][1]
    if header.get("version") != WAL_VERSION:
        raise LogCorruptionError(
            f"commit log {str(path)!r} header field 'version' is "
            f"{header.get('version')!r}; this build reads version "
            f"{WAL_VERSION}"
        )
    records: list[tuple[int, list]] = []
    tokens: dict[int, str] = {}
    last = header.get("base_receipt", 0)
    for end, record in parsed[1:]:
        if record.get("kind") != "commit":
            raise LogCorruptionError(
                f"commit log {str(path)!r} has a record of unknown kind "
                f"{record.get('kind')!r} at byte offset {end}"
            )
        receipt = record["receipt"]
        if receipt <= last:
            raise LogCorruptionError(
                f"commit log {str(path)!r} receipt ids not increasing: "
                f"{receipt} after {last}"
            )
        last = receipt
        records.append((receipt, record["ops"]))
        if record.get("token") is not None:
            tokens[receipt] = record["token"]
    valid_bytes = parsed[-1][0] if parsed else 0
    return LogInfo(
        header=header,
        records=records,
        valid_bytes=valid_bytes,
        total_bytes=len(data),
        tokens=tokens,
    )


def read_header(path: PathLike) -> dict:
    """Decode just the log's header record (first frame, one small read).

    Cheap enough to call per poll: the log replica compares successive
    headers to notice a compaction (:meth:`WriteAheadLog.rotate`
    rewrites the header with a new ``base_receipt``) without re-scanning
    the whole file.
    """
    with open(path, "rb") as fh:
        line = fh.readline()
    if not line.endswith(b"\n"):
        raise LogCorruptionError(
            f"commit log {str(path)!r} has no valid header record"
        )
    record = _parse_frame(line[:-1])
    if record is None or record.get("kind") != "header":
        raise LogCorruptionError(
            f"commit log {str(path)!r} has no valid header record"
        )
    return record


@dataclass(frozen=True)
class TailChunk:
    """One incremental read of a live log (see :func:`tail`).

    ``records`` / ``tokens`` mirror :class:`LogInfo`; ``offset`` is
    where the next :func:`tail` call should resume; ``rotated`` means
    the file shrank below the requested offset (a compaction replaced
    it) and the caller must rebuild from the snapshot instead of
    resuming.
    """

    records: list
    tokens: dict
    offset: int
    rotated: bool


def tail(path: PathLike, offset: int = 0) -> TailChunk:
    """Read the complete frames appended at or after ``offset``.

    The polling read for WAL-fed read replicas: unlike :func:`scan` it
    tolerates a trailing partial frame (the writer may be mid-append —
    the bytes are simply left for the next call) and never repairs the
    file.  ``offset`` must be a frame boundary previously returned by
    :func:`tail` (or ``0``, which also validates and skips the header).
    A file shorter than ``offset`` reports ``rotated=True`` with nothing
    parsed.
    """
    data = Path(path).read_bytes()
    if offset > len(data):
        return TailChunk(records=[], tokens={}, offset=0, rotated=True)
    records: list[tuple[int, list]] = []
    tokens: dict[int, str] = {}
    position = offset
    first = offset == 0
    while position < len(data):
        newline = data.find(b"\n", position)
        if newline < 0:
            break  # partial frame: the writer is mid-append
        record = _parse_frame(data[position:newline])
        if record is None:
            break  # not yet valid; scan()/attach() decide if it's torn
        if first:
            if record.get("kind") != "header":
                raise LogCorruptionError(
                    f"commit log {str(path)!r} has no valid header record"
                )
            first = False
        elif record.get("kind") == "commit":
            records.append((record["receipt"], record["ops"]))
            if record.get("token") is not None:
                tokens[record["receipt"]] = record["token"]
        position = newline + 1
    return TailChunk(
        records=records, tokens=tokens, offset=position, rotated=False
    )


def batch_to_ops(batch: Batch) -> list:
    """A batch's ops as JSON-ready ``[kind, u, v]`` triples."""
    return [[op.kind, op.edge[0], op.edge[1]] for op in batch]


def batch_from_ops(ops: list) -> Batch:
    """Rebuild a :class:`Batch` from :func:`batch_to_ops` output."""
    return Batch((kind, (u, v)) for kind, u, v in ops)


class WriteAheadLog:
    """An open, appendable commit log.

    Create a fresh log with :meth:`create` or reopen an existing one
    with :meth:`attach` (which repairs a torn tail by truncation).  Use
    :meth:`append` per commit, :meth:`rotate` at compaction,
    :meth:`close` when the session ends.
    """

    def __init__(
        self,
        path: Path,
        header: dict,
        last_receipt: int,
        fsync: str,
        fsync_every: int,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ServiceError(
                f"unknown fsync policy {fsync!r}; choose from "
                f"{', '.join(FSYNC_POLICIES)}"
            )
        if fsync_every < 1:
            raise ServiceError(
                f"fsync_every must be >= 1, got {fsync_every}"
            )
        self._path = Path(path)
        self._header = header
        self._fsync = fsync
        self._fsync_every = fsync_every
        self._since_sync = 0
        self._last_receipt = last_receipt
        self._fh = open(self._path, "ab")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: PathLike,
        *,
        engine: str,
        seed,
        opts: Optional[dict] = None,
        base_receipt: int = 0,
        fsync: str = "always",
        fsync_every: int = DEFAULT_FSYNC_EVERY,
    ) -> "WriteAheadLog":
        """Write a fresh log (header only) atomically and open it.

        Refuses to overwrite an existing file — recovery must be an
        explicit choice (:meth:`attach` / ``CoreService.recover``), never
        an accidental truncation.
        """
        path = Path(path)
        if path.exists():
            raise ServiceError(
                f"commit log {str(path)!r} already exists; recover from it "
                "with CoreService.recover, or remove it explicitly"
            )
        header = {
            "kind": "header",
            "version": WAL_VERSION,
            "engine": engine,
            "seed": seed,
            "opts": dict(opts or {}),
            "base_receipt": base_receipt,
        }
        _write_atomic(path, _frame(json.dumps(header).encode()))
        return cls(path, header, base_receipt, fsync, fsync_every)

    @classmethod
    def attach(
        cls,
        path: PathLike,
        *,
        fsync: str = "always",
        fsync_every: int = DEFAULT_FSYNC_EVERY,
    ) -> "WriteAheadLog":
        """Reopen an existing log for appending.

        Scans the file, truncates any torn tail (physically, so later
        appends start on a frame boundary) and resumes at the last valid
        receipt id.
        """
        path = Path(path)
        info = scan(path)
        if info.torn_bytes:
            with open(path, "r+b") as fh:
                fh.truncate(info.valid_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return cls(path, info.header, info.last_receipt, fsync, fsync_every)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def header(self) -> dict:
        """The log's header record (treat as read-only)."""
        return self._header

    @property
    def last_receipt(self) -> int:
        """Receipt id of the last appended (or scanned) commit record."""
        return self._last_receipt

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else f"fsync={self._fsync!r}"
        return (
            f"WriteAheadLog({str(self._path)!r}, {state}, "
            f"last_receipt={self._last_receipt})"
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(
        self, receipt_id: int, batch: Batch, *, token: Optional[str] = None
    ) -> None:
        """Durably record one commit *before* the engine applies it.

        ``token`` (optional) is a caller-supplied idempotency key stored
        in the record; :func:`scan` and :func:`tail` report it back via
        their ``tokens`` maps, letting a supervisor rebuild its
        retry-deduplication table from the log after a crash.
        """
        self._require_open()
        if receipt_id <= self._last_receipt:
            raise ServiceError(
                f"commit log receipt ids must increase: got {receipt_id} "
                f"after {self._last_receipt}"
            )
        record = {
            "kind": "commit",
            "receipt": receipt_id,
            "ops": batch_to_ops(batch),
        }
        if token is not None:
            record["token"] = token
        payload = json.dumps(record).encode()
        framed = _frame(payload)
        inject("wal.before_append")
        if is_armed("wal.mid_append"):
            # Instrumented split write: lets the crash matrix land a
            # genuinely torn record on disk.  Single write otherwise.
            self._fh.write(framed[: len(framed) // 2])
            self._fh.flush()
            inject("wal.mid_append")
            self._fh.write(framed[len(framed) // 2:])
        else:
            self._fh.write(framed)
        self._fh.flush()
        self._last_receipt = receipt_id
        inject("wal.after_append")
        if self._fsync == "always":
            self._sync()
        elif self._fsync == "interval":
            self._since_sync += 1
            if self._since_sync >= self._fsync_every:
                self._sync()

    def sync(self) -> None:
        """Flush and fsync regardless of policy."""
        self._require_open()
        self._fh.flush()
        self._sync()

    def _sync(self) -> None:
        inject("wal.before_fsync")
        os.fsync(self._fh.fileno())
        self._since_sync = 0
        inject("wal.after_fsync")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def rotate(self, base_receipt: int) -> None:
        """Truncate the log to a fresh header after a snapshot landed.

        Atomic: the replacement log (header only, ``base_receipt``
        recording what the snapshot covers) is written to a temp file,
        fsynced, then renamed over the old log — a crash anywhere leaves
        either the full old log or the compacted new one, never a
        partial file.
        """
        self._require_open()
        header = dict(self._header)
        header["base_receipt"] = base_receipt
        # Even at base_receipt 0 (compaction before any commit — the
        # non-empty-open path) the log now *depends* on the snapshot:
        # the base graph lives only there.  Recovery must refuse to
        # proceed without it rather than rebuild from empty.
        header["snapshot"] = True
        self._fh.close()
        _write_atomic(self._path, _frame(json.dumps(header).encode()))
        self._header = header
        self._last_receipt = max(self._last_receipt, base_receipt)
        self._since_sync = 0
        self._fh = open(self._path, "ab")

    def close(self) -> None:
        """Flush (and fsync unless policy is ``never``), then close.

        Idempotent; appending after close raises
        :class:`~repro.errors.ServiceError`.
        """
        if self._fh is None:
            return
        self._fh.flush()
        if self._fsync != "never":
            os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None

    def _require_open(self) -> None:
        if self._fh is None:
            raise ServiceError(
                f"commit log {str(self._path)!r} is closed"
            )


def _write_atomic(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-file-then-rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def log_stat(path: PathLike) -> dict:
    """Machine-readable log statistics (the ``repro log-stat`` payload).

    One scan, no repair: reports the header fields, commit record count,
    receipt id range and how many torn-tail bytes a recovery would
    truncate.
    """
    info = scan(path)
    header = info.header
    return {
        "path": str(path),
        "version": header.get("version"),
        "engine": header.get("engine"),
        "seed": header.get("seed"),
        "base_receipt": header.get("base_receipt", 0),
        "records": len(info.records),
        "last_receipt": info.last_receipt,
        "bytes": info.total_bytes,
        "torn_bytes": info.torn_bytes,
    }

"""Service transactions: accumulate updates, commit once, get a receipt.

A :class:`Transaction` is the service's unit of write work: operations
recorded on it build a validated :class:`~repro.engine.batch.Batch`
(normalization, dedup and self-loop rejection happen at record time, so
bad updates fail *before* anything touches the engine), and the whole
batch reaches the engine in **one** ``apply_batch`` call — the schedule
that lets the order engine coalesce its repair per run and region.

Commit produces a :class:`CommitReceipt`: the engine's
:class:`~repro.engine.batch.BatchResult` counters plus the commit's net
core deltas and the :class:`~repro.service.events.CoreEvent` records
that were (or would be) delivered to subscribers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Mapping

from repro.engine.batch import Batch, BatchResult
from repro.errors import TransactionError
from repro.service.events import CoreEvent, events_from_deltas

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.service.session import CoreService

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class CommitReceipt:
    """Outcome of one committed service transaction.

    Attributes
    ----------
    receipt_id:
        Monotonically increasing per service session; events carry it so
        subscribers can correlate deliveries with commits.
    result:
        The engine's raw :class:`~repro.engine.batch.BatchResult`
        (op counts, search-space size, instrumentation counters, wall
        time inside the engine).
    deltas:
        Net core-number change per vertex over the commit; vertices whose
        core ended where it started are absent.  Treat as read-only.
    events:
        The commit's :class:`~repro.service.events.CoreEvent` records in
        deterministic (vertex-key) order — what subscribers received,
        before any ``min_k`` filtering.  Built lazily from per-commit
        state on first access (and cached), so subscriber-free commits
        never pay for event materialization.
    """

    __slots__ = ("receipt_id", "result", "deltas", "_new_cores", "_events")

    def __init__(
        self,
        receipt_id: int,
        result: BatchResult,
        deltas: Mapping[Vertex, int],
        new_cores: Mapping[Vertex, int],
    ) -> None:
        self.receipt_id = receipt_id
        self.result = result
        self.deltas = deltas
        self._new_cores = new_cores
        self._events: tuple[CoreEvent, ...] | None = None

    @property
    def events(self) -> tuple[CoreEvent, ...]:
        if self._events is None:
            self._events = events_from_deltas(
                self.deltas, self._new_cores, self.receipt_id
            )
        return self._events

    @property
    def engine(self) -> str:
        """Name of the engine that applied the commit."""
        return self.result.engine

    @property
    def inserts(self) -> int:
        return self.result.inserts

    @property
    def removes(self) -> int:
        return self.result.removes

    @property
    def ops(self) -> int:
        """Total operations committed."""
        return self.result.ops

    @property
    def seconds(self) -> float:
        """Wall time spent inside the engine's ``apply_batch``."""
        return self.result.seconds

    @property
    def counters(self) -> dict:
        """The engine's per-commit instrumentation counters."""
        return self.result.counters

    @property
    def promotions(self) -> int:
        """Total core levels climbed across the commit's vertices."""
        return sum(d for d in self.deltas.values() if d > 0)

    @property
    def demotions(self) -> int:
        """Total core levels dropped across the commit's vertices."""
        return -sum(d for d in self.deltas.values() if d < 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommitReceipt(id={self.receipt_id}, engine={self.engine!r}, "
            f"ops={self.ops}, changed={len(self.deltas)})"
        )


class Transaction:
    """An open unit of work against a :class:`CoreService`.

    Use as a context manager (the usual shape):

    >>> from repro.service.session import CoreService
    >>> svc = CoreService.open([(0, 1), (1, 2), (2, 0)])
    >>> with svc.transaction() as tx:
    ...     _ = tx.insert(0, 3).insert(1, 3)
    >>> tx.state
    'committed'
    >>> tx.receipt.deltas
    {3: 2}
    >>> with svc.transaction() as tx:
    ...     _ = tx.remove(0, 1)
    ...     tx.rollback()
    >>> svc.graph.has_edge(0, 1)   # nothing reached the engine
    True

    Leaving the block commits; leaving it on an exception rolls back —
    nothing recorded reaches the engine.  :meth:`commit` and
    :meth:`rollback` close the transaction explicitly; a closed
    transaction rejects every further call with
    :class:`~repro.errors.TransactionError`.

    Operations are validated as they are recorded (edge normalization,
    duplicate dropping, self-loop rejection — see
    :class:`~repro.engine.batch.Batch`), so a bad update raises at the
    call site while the transaction is still open, and the transaction
    remains usable afterwards.
    """

    __slots__ = ("_service", "_batch", "_state", "_receipt")

    _OPEN, _COMMITTED, _ROLLED_BACK = "open", "committed", "rolled back"
    _FAILED = "failed"

    def __init__(self, service: "CoreService") -> None:
        self._service = service
        self._batch = Batch()
        self._state = self._OPEN
        self._receipt: CommitReceipt | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def insert(self, u: Vertex, v: Vertex) -> "Transaction":
        """Record an edge insertion; returns ``self`` for chaining."""
        self._require_open()
        self._batch.insert(u, v)
        return self

    def remove(self, u: Vertex, v: Vertex) -> "Transaction":
        """Record an edge removal; returns ``self`` for chaining."""
        self._require_open()
        self._batch.remove(u, v)
        return self

    def insert_many(self, edges: Iterable[Edge]) -> "Transaction":
        """Record a run of insertions (bulk-load shape)."""
        self._require_open()
        for u, v in edges:
            self._batch.insert(u, v)
        return self

    def remove_many(self, edges: Iterable[Edge]) -> "Transaction":
        """Record a run of removals (window-expiry shape)."""
        self._require_open()
        for u, v in edges:
            self._batch.remove(u, v)
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def batch(self) -> Batch:
        """The accumulated batch (the service owns it after commit)."""
        return self._batch

    @property
    def state(self) -> str:
        """``"open"``, ``"committed"``, ``"rolled back"`` or ``"failed"``.

        ``"committed"`` is set only after the engine accepted the whole
        batch; a commit that raised leaves the transaction ``"failed"``,
        never falsely claiming success.
        """
        return self._state

    @property
    def receipt(self) -> CommitReceipt:
        """The commit's receipt; raises until the transaction commits."""
        if self._receipt is None:
            raise TransactionError(
                f"transaction is {self._state}; no receipt to read"
            )
        return self._receipt

    def __len__(self) -> int:
        return len(self._batch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        i, r = self._batch.counts()
        return f"Transaction({self._state}, {i} inserts, {r} removes)"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def commit(self) -> CommitReceipt:
        """Apply the accumulated batch through the service's engine.

        One ``apply_batch`` call, one receipt, one event dispatch — even
        for an empty transaction (which commits an empty batch and emits
        no events).  The service validates the batch against the graph
        before the engine touches anything, so an invalid op raises
        :class:`~repro.errors.BatchError` here with the graph unchanged
        and the transaction marked ``"failed"``.  A *subscriber* that
        raises still propagates, but by then the commit has landed and
        its receipt is published — the transaction reports
        ``"committed"`` and :attr:`receipt` works, never blaming the
        engine for a callback's failure.
        """
        self._require_open()
        before = self._service.last_receipt
        try:
            self._receipt = self._service._commit(self._batch)
        except BaseException:
            landed = self._service.last_receipt
            if landed is not None and landed is not before:
                # The engine accepted the batch and the receipt was
                # published; the exception came from event dispatch.
                self._receipt = landed
                self._state = self._COMMITTED
            else:
                self._state = self._FAILED
            raise
        self._state = self._COMMITTED
        return self._receipt

    def rollback(self) -> None:
        """Discard the accumulated batch without touching the engine."""
        self._require_open()
        self._state = self._ROLLED_BACK

    def __enter__(self) -> "Transaction":
        self._require_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._state != self._OPEN:
            return  # committed/rolled back explicitly inside the block
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def _require_open(self) -> None:
        if self._state != self._OPEN:
            raise TransactionError(
                f"transaction is already {self._state}"
            )

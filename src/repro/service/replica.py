"""Read replicas fed by incremental write-ahead-log tailing.

A :class:`LogReplica` maintains its *own* engine by replaying a durable
session's commit log (:mod:`repro.service.wal`), so the query layer
(``core`` / ``top`` / ``spectrum`` / ``kcore``) can be answered without
ever touching the primary's write path — the fan-out story the ROADMAP's
"millions of users" axis needs.  The replica polls with
:func:`~repro.service.wal.tail` from its last frame offset (O(new
bytes), not O(log)), applies only records it has not seen, and rebuilds
itself from the compaction snapshot when it notices the log rotated
under it (the header changed or the file shrank).

Staleness contract
------------------
A replica reflects exactly the commits whose records were *written to
the log* at its last :meth:`refresh` — nothing newer, and because the
session appends before applying (write-ahead ordering), possibly one
commit the primary has not finished applying yet.  :attr:`receipt`
reports the last replayed receipt id so callers can bound staleness
against the primary's.  Replicas never write: no locks are shared with
the primary beyond the filesystem.

Fault point: ``replica.stale_read`` — when armed, :meth:`refresh` skips
its poll and the replica knowingly serves stale state (a *behavioural*
fault the replica catches, unlike the durable-path crash points which
are never caught).
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable

from repro.analysis import kcore_views
from repro.engine.registry import make_engine
from repro.errors import LogCorruptionError, ReproError
from repro.graphs.undirected import DynamicGraph
from repro.service.wal import batch_from_ops, read_header, scan, tail
from repro.testing.faults import InjectedFault, inject, register_fault_point

Vertex = Hashable

register_fault_point(
    "replica.stale_read",
    "LogReplica.refresh: the poll is skipped and the query layer "
    "knowingly answers from stale state (behavioural: caught by the "
    "replica, counted in stale_serves)",
)

_MISSING = object()


def _snapshot_path(log: Path) -> Path:
    """Where a logged session keeps its compaction snapshot."""
    # Mirrors repro.service.session._snapshot_path; duplicated to keep
    # the replica importable without the session module.
    return log.with_name(log.name + ".snapshot")


class LogReplica:
    """A read-only engine kept current by tailing a session's commit log.

    Parameters
    ----------
    log:
        Path of the primary's write-ahead log.
    audit:
        Audit the snapshot's invariants when (re)building (slow; off by
        default — the primary already audits on recovery).
    """

    def __init__(self, log, *, audit: bool = False) -> None:
        self._log = Path(log)
        self._audit = audit
        self._engine = None
        self._header: dict = {}
        self._offset = 0
        self._applied = 0
        #: Full rebuilds performed (initial build + one per rotation).
        self.rebuilds = 0
        #: Successful incremental polls.
        self.refreshes = 0
        #: Polls skipped by the ``replica.stale_read`` fault point.
        self.stale_serves = 0
        self._build()

    # ------------------------------------------------------------------
    # Log replay
    # ------------------------------------------------------------------

    def _build(self) -> None:
        """(Re)build the replica engine: snapshot seed + full replay."""
        from repro.core.snapshot import from_snapshot

        info = scan(self._log)
        header = info.header
        snap_path = _snapshot_path(self._log)
        base = 0
        if snap_path.exists():
            import json

            raw = json.loads(snap_path.read_text())
            base = raw.get("receipt", 0)
            engine = from_snapshot(raw, audit=self._audit)
        else:
            if header.get("base_receipt", 0) or header.get("snapshot"):
                raise LogCorruptionError(
                    f"commit log {str(self._log)!r} continues from a "
                    f"compaction snapshot (receipt "
                    f"{header.get('base_receipt', 0)}) but "
                    f"{str(snap_path)!r} is missing"
                )
            engine = make_engine(
                header["engine"],
                DynamicGraph(),
                seed=header.get("seed", 0),
                **header.get("opts", {}),
            )
        applied = base
        for receipt_id, ops in info.records:
            if receipt_id <= base:
                continue
            self._replay(engine, receipt_id, ops)
            applied = receipt_id
        self._engine = engine
        self._header = header
        self._offset = info.valid_bytes
        self._applied = applied
        self.rebuilds += 1

    def _replay(self, engine, receipt_id: int, ops: list) -> None:
        try:
            engine.apply_batch(batch_from_ops(ops))
        except ReproError as exc:
            raise LogCorruptionError(
                f"commit log {str(self._log)!r} record {receipt_id} does "
                f"not apply to the replica state: {exc}"
            ) from exc

    def refresh(self) -> int:
        """Poll the log and apply new records; returns how many applied.

        Tolerates a writer mid-append (the partial frame is left for the
        next poll) and notices log rotation — a compaction — by the
        header changing or the file shrinking, triggering a rebuild from
        the new snapshot.
        """
        try:
            inject("replica.stale_read")
        except InjectedFault:
            self.stale_serves += 1
            return 0
        if read_header(self._log) != self._header:
            before = self._applied
            self._build()
            return max(0, self._applied - before)
        chunk = tail(self._log, self._offset)
        if chunk.rotated:
            before = self._applied
            self._build()
            return max(0, self._applied - before)
        applied = 0
        for receipt_id, ops in chunk.records:
            if receipt_id <= self._applied:
                continue
            self._replay(self._engine, receipt_id, ops)
            self._applied = receipt_id
            applied += 1
        self._offset = chunk.offset
        self.refreshes += 1
        return applied

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def log_path(self) -> Path:
        return self._log

    @property
    def receipt(self) -> int:
        """Receipt id of the last commit the replica has replayed."""
        return self._applied

    @property
    def engine(self):
        """The replica's engine (treat as strictly read-only)."""
        return self._engine

    @property
    def graph(self) -> DynamicGraph:
        return self._engine.graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogReplica({str(self._log)!r}, receipt={self._applied}, "
            f"refreshes={self.refreshes}, rebuilds={self.rebuilds})"
        )

    # ------------------------------------------------------------------
    # Query layer (mirrors CoreService reads)
    # ------------------------------------------------------------------

    def core(self, vertex: Vertex, default=_MISSING):
        """Core number of one vertex (``KeyError`` unless ``default``)."""
        c = self._engine.core.get(vertex, _MISSING)
        if c is _MISSING:
            if default is _MISSING:
                raise KeyError(vertex)
            return default
        return c

    def cores(self) -> dict:
        return dict(self._engine.core)

    def kcore(self, k: int) -> kcore_views.KCoreView:
        return kcore_views.KCoreView(self._engine.core, k, self.graph)

    def degeneracy(self) -> int:
        return kcore_views.degeneracy(self._engine.core)

    def top(self, n: int) -> list:
        return kcore_views.top_cores(self._engine.core, n)

    def spectrum(self) -> dict:
        return kcore_views.core_spectrum(self._engine.core)

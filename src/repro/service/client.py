"""The async client of the serving front: :class:`CoreClient`.

Speaks the framed-JSONL protocol of :mod:`repro.service.protocol` to a
:class:`~repro.service.server.CoreServer`, and hides the robustness
machinery from callers:

* **idempotent commits** — every :meth:`CoreClient.commit` carries a
  token (auto-generated unless supplied), so retries after shed
  requests, expired deadlines or dropped connections resolve *exactly
  once*: the server answers a repeated token from its durable token
  record instead of re-applying the batch;
* **transparent retry** — ``RetryAfter`` responses are retried after
  the server's backoff hint, ``DeadlineExceeded`` and dead connections
  are retried with the same token (bounded by ``max_retries``), with a
  reconnect in between;
* **event streams** — :meth:`CoreClient.subscribe` returns an
  :class:`EventStream` async iterator of decoded event batches, fed by
  the background reader task, with ``reset`` frames surfaced so callers
  know when a failover broke continuity.

One connection serves one client; requests are multiplexed by id, so a
client may issue concurrent commits/queries from many tasks.
"""

from __future__ import annotations

import asyncio
import itertools
import os
from typing import AsyncIterator, Iterable, Optional

from repro.errors import ServiceError
from repro.service import protocol
from repro.service.protocol import (
    ConnectionClosedError,
    DeadlineExceededError,
    RetryAfterError,
    raise_remote_error,
)


class EventBatch:
    """One decoded delivery from an event stream."""

    __slots__ = ("kind", "events", "dropped", "receipt")

    def __init__(self, kind: str, events: list, dropped: int,
                 receipt: Optional[int]) -> None:
        self.kind = kind  # "events" | "reset"
        #: ``(vertex, old_core, new_core, receipt_id)`` tuples.
        self.events = events
        #: Cumulative events shed by the server-side bounded buffer.
        self.dropped = dropped
        #: For ``reset`` frames: last receipt the new stream starts after.
        self.receipt = receipt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventBatch({self.kind!r}, events={len(self.events)}, "
            f"dropped={self.dropped})"
        )


class EventStream:
    """Async iterator over one subscription's event batches.

    Ends (``StopAsyncIteration``) when the subscription is closed or the
    connection dies.  ``reset`` frames appear in-line as
    :class:`EventBatch` items with ``kind == "reset"`` — events from the
    server's crash window are gone; resync by querying.
    """

    def __init__(self, client: "CoreClient", sub_id: int) -> None:
        self._client = client
        self.sub_id = sub_id
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False

    def _feed(self, item: Optional[EventBatch]) -> None:
        self._queue.put_nowait(item)

    def __aiter__(self) -> AsyncIterator[EventBatch]:
        return self

    async def __anext__(self) -> EventBatch:
        if self._closed and self._queue.empty():
            raise StopAsyncIteration
        item = await self._queue.get()
        if item is None:
            self._closed = True
            raise StopAsyncIteration
        return item

    async def close(self) -> None:
        """Unsubscribe server-side and end the iterator."""
        if not self._closed:
            self._closed = True
            self._client._streams.pop(self.sub_id, None)
            try:
                await self._client._request(
                    "unsubscribe", {"sub": self.sub_id}
                )
            except ServiceError:
                pass  # connection already gone: server cleans up itself
            self._feed(None)


class CoreClient:
    """An async tenant connection to a :class:`CoreServer`.

    Parameters
    ----------
    host / port:
        Server address (see :meth:`connect`).
    session:
        Tenant session name; sessions are created on first use.
    deadline:
        Default per-commit deadline in seconds (sent as ``deadline_ms``).
    max_retries:
        How many times a commit is retried through shed responses,
        expired deadlines and reconnects before the last error is
        raised.
    token_prefix:
        Prefix of auto-generated idempotency tokens; defaults to 8
        random hex characters per client, so concurrent clients never
        collide.

    Usage::

        client = await CoreClient.connect("127.0.0.1", port, session="a")
        await client.commit([("insert", 0, 1)])
        await client.core(0)
        await client.close()
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        session: str = "default",
        deadline: float = 30.0,
        max_retries: int = 8,
        token_prefix: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.session = session
        self.deadline = deadline
        self.max_retries = max_retries
        self._token_prefix = token_prefix or os.urandom(4).hex()
        self._token_ids = itertools.count(1)
        self._req_ids = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: dict[int, asyncio.Future] = {}
        self._streams: dict[int, EventStream] = {}
        self._send_lock = asyncio.Lock()
        self._closed = False
        #: Commits retried (shed / deadline / reconnect), for tests.
        self.retries = 0
        self.reconnects = 0

    @classmethod
    async def connect(cls, host: str, port: int, **kwargs) -> "CoreClient":
        """Open a connection and start the reader task."""
        client = cls(host, port, **kwargs)
        await client._open()
        return client

    async def _open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.STREAM_LIMIT
        )
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _reconnect(self) -> None:
        self._teardown(ConnectionClosedError("reconnecting"))
        await self._open()
        self.reconnects += 1

    def _teardown(self, exc: Exception) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reader = None
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()
        for stream in list(self._streams.values()):
            self._streams.pop(stream.sub_id, None)
            stream._closed = True
            stream._feed(None)

    async def _read_loop(self) -> None:
        reader = self._reader
        try:
            while True:
                message = await protocol.read_message(reader)
                if message is None:
                    break
                kind = message.get("kind")
                if kind in ("events", "reset"):
                    self._dispatch_stream(kind, message)
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (protocol.ProtocolError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            return
        self._reader_task = None
        self._teardown(
            ConnectionClosedError(
                "connection closed before the request was answered; "
                "commit retries must reuse their idempotency token"
            )
        )

    def _dispatch_stream(self, kind: str, message: dict) -> None:
        stream = self._streams.get(message.get("sub"))
        if stream is None:
            return  # unsubscribed while frames were in flight
        if kind == "reset":
            stream._feed(
                EventBatch("reset", [], 0, message.get("receipt"))
            )
        else:
            events = [tuple(e) for e in message.get("events", ())]
            stream._feed(
                EventBatch(
                    "events", events, message.get("dropped", 0), None
                )
            )

    # -- request plumbing ----------------------------------------------

    async def _request(self, method: str, params: dict) -> dict:
        """One request/response round trip; raises on failure frames."""
        if self._closed:
            raise ServiceError("client is closed")
        if self._writer is None:
            await self._open()
        req_id = next(self._req_ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        record = protocol.request(req_id, method, self.session, params)
        try:
            async with self._send_lock:
                await protocol.write_message(self._writer, record)
        except (ConnectionError, OSError) as exc:
            self._pending.pop(req_id, None)
            raise ConnectionClosedError(str(exc)) from exc
        message = await future
        if message.get("ok"):
            return message.get("result")
        raise_remote_error(message.get("error") or {})

    def _next_token(self) -> str:
        return f"{self._token_prefix}-{next(self._token_ids)}"

    # -- public API -----------------------------------------------------

    async def commit(
        self,
        ops: Iterable,
        *,
        token: Optional[str] = None,
        deadline: Optional[float] = None,
        retry: bool = True,
    ) -> dict:
        """Commit a batch of ``(kind, u, v)`` ops; exactly-once via token.

        Returns the commit summary
        ``{"receipt_id", "ops", "changed", "replayed"}`` —
        ``replayed=True`` means an earlier attempt already landed and the
        server answered from its token record.  With ``retry=False`` the
        first shed/deadline/connection error is raised instead.
        """
        ops = [list(op) for op in ops]
        token = token or self._next_token()
        deadline = self.deadline if deadline is None else deadline
        params = {
            "ops": ops,
            "token": token,
            "deadline_ms": int(deadline * 1000),
        }
        attempts = self.max_retries if retry else 0
        delay = 0.01
        for attempt in itertools.count():
            try:
                return await self._request("commit", params)
            except RetryAfterError as exc:
                if attempt >= attempts:
                    raise
                self.retries += 1
                await asyncio.sleep(exc.retry_after or delay)
            except DeadlineExceededError:
                if attempt >= attempts:
                    raise
                self.retries += 1
                await asyncio.sleep(delay)
            except ConnectionClosedError:
                if attempt >= attempts or self._closed:
                    raise
                self.retries += 1
                await asyncio.sleep(delay)
                await self._reconnect()
            delay = min(delay * 2, 1.0)

    async def query(self, op: str, *, replica: bool = False,
                    **params) -> dict:
        """One read; returns ``{"result", "source", "receipt", "state"}``.

        ``source`` tells where the answer came from: ``primary``,
        ``last_good`` (degraded session) or ``replica``.
        """
        params["op"] = op
        if replica:
            params["replica"] = True
        return await self._request("query", params)

    async def core(self, vertex, *, replica: bool = False):
        """Core number of one vertex (``None`` if absent)."""
        reply = await self.query("core", vertex=vertex, replica=replica)
        return reply["result"]

    async def cores(self, *, replica: bool = False) -> dict:
        """Full core map (decoded from the wire's pair list)."""
        reply = await self.query("cores", replica=replica)
        return {v: c for v, c in reply["result"]}

    async def top(self, n: int = 10, *, replica: bool = False) -> list:
        reply = await self.query("top", n=n, replica=replica)
        return [tuple(pair) for pair in reply["result"]]

    async def spectrum(self, *, replica: bool = False) -> dict:
        reply = await self.query("spectrum", replica=replica)
        return {int(k): n for k, n in reply["result"]}

    async def degeneracy(self, *, replica: bool = False) -> int:
        reply = await self.query("degeneracy", replica=replica)
        return reply["result"]

    async def kcore(self, k: int, *, replica: bool = False) -> list:
        reply = await self.query("kcore", k=k, replica=replica)
        return reply["result"]

    async def status(self) -> dict:
        """The session's supervisor status (state, counters, recovery)."""
        return await self._request("status", {})

    async def server_stats(self) -> dict:
        return await self._request("server_stats", {})

    async def ping(self) -> bool:
        return await self._request("ping", {}) == "pong"

    async def subscribe(self, *, min_k: Optional[int] = None,
                        buffer: Optional[int] = None) -> EventStream:
        """Stream core events; see :class:`EventStream` for semantics."""
        params: dict = {}
        if min_k is not None:
            params["min_k"] = min_k
        if buffer is not None:
            params["buffer"] = buffer
        result = await self._request("subscribe", params)
        stream = EventStream(self, result["sub"])
        self._streams[result["sub"]] = stream
        return stream

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._teardown(ConnectionClosedError("client closed"))

    async def __aenter__(self) -> "CoreClient":
        if self._writer is None:
            await self._open()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

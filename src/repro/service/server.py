"""The fault-tolerant async serving front: supervised multi-tenant sessions.

:class:`CoreServer` multiplexes many concurrent tenant sessions onto
WAL-backed :class:`~repro.service.CoreService` engines over framed-JSONL
TCP streams (:mod:`repro.service.protocol`), wrapped in an explicit
robustness layer:

**Session supervision.**  Each tenant session owns one ``CoreService``
behind a *single-writer* task — commits are strictly serialized per
session, so the engine below never sees concurrent mutation.  When a
commit poisons the engine (an engine-internal failure or an injected
crash — the moral equivalent of the session process dying), the
supervisor flips the session to *degraded* mode, fails queued commits
with retryable responses, and restarts the session in the background via
:meth:`CoreService.recover`; the resulting
:class:`~repro.service.session.RecoveryReport` is reported to the tenant
through ``status`` and the session returns to *healthy*.  The lifecycle
is ``healthy → degraded → recovering → healthy``; a session without a
commit log has nothing to recover from and stays degraded until closed.

**Admission control and backpressure.**  Per-session commit queues are
bounded (``ServerLimits.max_pending``) and there is a global in-flight
cap (``max_inflight``); a commit that cannot be admitted is *shed* with
a ``RetryAfter`` response carrying a backoff hint scaled by queue depth
— the client library honours it transparently.

**Deadlines and idempotent retry.**  Every commit carries a deadline
(client-supplied ``deadline_ms`` or ``default_deadline``).  A deadline
that fires while the commit is queued or mid-apply abandons only the
*waiter* — never the commit, which the single writer finishes either
way (cancellation-safe).  Each commit's idempotency ``token`` is
recorded in the session's write-ahead record
(:meth:`CoreService.apply`), so a retry lands exactly once: served from
the in-memory token cache, or — after a crash — from the cache rebuilt
out of the recovered log.

**Degraded-mode reads.**  While degraded or recovering, the session
keeps answering ``core`` / ``top`` / ``spectrum`` / ``cores`` /
``kcore`` from its *last-good* core map (maintained incrementally from
commit receipts, never read from the poisoned engine), tagged
``"source": "last_good"`` so clients know what they got.

**Read replicas.**  Queries with ``replica=true`` are answered by a
:class:`~repro.service.replica.LogReplica` fed by incremental WAL
tailing — the write path is never touched.

**Event fan-out.**  ``subscribe`` streams every commit's
:class:`~repro.service.events.CoreEvent` records to the client as framed
event batches through a *bounded* per-subscriber buffer
(``subscriber_buffer``, ``drop_oldest`` overflow): a slow consumer loses
old events (counted in the frames' ``dropped`` field), never stalls the
commit path or the other subscribers.  After a failover the stream gets
a ``reset`` frame — events from the crash window are gone; resync by
querying.

Network fault points (registered via
:func:`~repro.testing.faults.register_fault_point`): ``server.drop_conn``,
``server.partial_frame`` — the connection dies before / halfway through
a response — and ``server.slow_write`` — the write is delayed.  Unlike
the durable-path crash points these are *behavioural*: the server
catches the injected fault and converts it into the named network
misbehaviour, because a dying connection is a normal event the server
must survive, not a process crash.
"""

from __future__ import annotations

import asyncio
import itertools
import re
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.analysis import kcore_views
from repro.engine.batch import Batch, vertex_sort_key
from repro.engine.registry import DEFAULT_ENGINE
from repro.errors import BatchError, ReproError, ServiceError
from repro.service import protocol
from repro.service.replica import LogReplica
from repro.service.session import CoreService
from repro.service.wal import scan
from repro.testing.faults import (
    InjectedFault,
    inject,
    register_fault_point,
)

register_fault_point(
    "server.drop_conn",
    "CoreServer: the connection dies before a response or event frame "
    "is written (behavioural: caught at the connection boundary, the "
    "client sees a reset and must retry with its token)",
)
register_fault_point(
    "server.slow_write",
    "CoreServer: a response/event write is delayed by "
    "ServerLimits.slow_write_delay (behavioural: converted to latency)",
)
register_fault_point(
    "server.partial_frame",
    "CoreServer: half a response frame reaches the client, then the "
    "connection dies (behavioural: the peer sees a torn frame and "
    "discards it)",
)

#: Session lifecycle states (see the module docstring's state machine).
HEALTHY, DEGRADED, RECOVERING, CLOSED = (
    "healthy", "degraded", "recovering", "closed",
)

_SESSION_NAME = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

_CLOSE = object()


@dataclass
class ServerLimits:
    """Tunable robustness knobs of a :class:`CoreServer`.

    Attributes
    ----------
    max_pending:
        Per-session commit queue bound; a full queue sheds with
        ``RetryAfter``.
    max_inflight:
        Global cap on admitted-but-unanswered commits across sessions.
    default_deadline:
        Seconds a commit may wait end-to-end when the client sends no
        ``deadline_ms``.
    subscriber_buffer:
        Bounded per-subscriber event buffer (``drop_oldest`` overflow).
    retry_after:
        Base backoff hint (seconds) carried by ``RetryAfter`` responses;
        scaled up with queue depth and for degraded sessions.
    slow_write_delay:
        Latency injected by the ``server.slow_write`` fault point.
    token_cache:
        Idempotency tokens remembered per session (LRU beyond that).
    recovery_delay:
        Seconds to linger in degraded mode before re-recovering — 0 for
        fastest failback; raise it to keep a recovery window open (ops
        backoff, benchmarks of degraded-mode serving).
    """

    max_pending: int = 64
    max_inflight: int = 256
    default_deadline: float = 30.0
    subscriber_buffer: int = 256
    retry_after: float = 0.05
    slow_write_delay: float = 0.05
    token_cache: int = 4096
    recovery_delay: float = 0.0


class _SessionCrash(Exception):
    """Internal: the single-writer died under this commit (retryable)."""


def _reap_commit(session: "TenantSession", token: Optional[str]):
    """Done-callback for a commit future: drop the pending-token entry
    and consume the exception of an abandoned (deadline-expired) waiter
    so asyncio never logs it as unretrieved."""

    def _reap(future) -> None:
        if token is not None:
            session.pending_tokens.pop(token, None)
        if not future.cancelled():
            future.exception()

    return _reap


class _PendingCommit:
    __slots__ = ("batch", "token", "future")

    def __init__(self, batch: Batch, token: Optional[str], future) -> None:
        self.batch = batch
        self.token = token
        self.future = future


class _RemoteSubscriber:
    """One client subscription: bounded buffer + a pump task to the wire."""

    def __init__(self, session, conn, sub_id: int, min_k: Optional[int],
                 buffer: int) -> None:
        self.session = session
        self.conn = conn
        self.sub_id = sub_id
        self.min_k = min_k
        self.buffer = buffer
        self.sub = session.service.subscribe(
            None, min_k=min_k, max_pending=buffer, overflow="drop_oldest"
        )
        self.wake = asyncio.Event()
        self.reset_receipt: Optional[int] = None
        self.closed = False
        self.task = asyncio.create_task(self._pump())

    def resubscribe(self, service, reset_receipt: int) -> None:
        """Re-attach to the session's replacement service after failover.

        Undelivered events from the old service are discarded — the
        crash window already lost events that were never committed to a
        subscription — and the client gets a ``reset`` frame telling it
        to resync.
        """
        old_dropped = self.sub.dropped_events
        self.sub.close()
        self.sub = service.subscribe(
            None, min_k=self.min_k, max_pending=self.buffer,
            overflow="drop_oldest",
        )
        self.sub.dropped_events = old_dropped
        self.reset_receipt = reset_receipt
        self.wake.set()

    async def _pump(self) -> None:
        try:
            while not self.closed:
                await self.wake.wait()
                self.wake.clear()
                if self.closed:
                    break
                if self.reset_receipt is not None:
                    receipt, self.reset_receipt = self.reset_receipt, None
                    await self.conn.send(
                        protocol.reset_frame(self.sub_id, receipt)
                    )
                events = self.sub.take()
                if events:
                    await self.conn.send(
                        protocol.events_frame(
                            self.sub_id, events, self.sub.dropped_events
                        )
                    )
        except (InjectedFault, ConnectionError, OSError):
            # The connection is gone (or a network fault point killed
            # it): abort it so the handler notices and cleans up.
            self.conn.abort()
        except asyncio.CancelledError:
            raise

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.sub.close()
        self.wake.set()
        self.task.cancel()


class TenantSession:
    """One tenant's supervised session: single writer, bounded queue.

    Created by :class:`CoreServer` — not directly.  All commit traffic
    funnels through :attr:`queue` into :meth:`_serve_writes`; the
    supervisor task restarts the write path through recovery whenever it
    crashes.
    """

    def __init__(self, name: str, service: CoreService, server: "CoreServer",
                 limits: ServerLimits) -> None:
        self.name = name
        self.service = service
        self.server = server
        self.limits = limits
        self.state = HEALTHY
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=limits.max_pending)
        #: token -> commit summary (LRU-bounded); rebuilt from the log
        #: after recovery so retries stay exactly-once across crashes.
        self.tokens: OrderedDict[str, dict] = OrderedDict()
        #: token -> future of a commit still in the queue/writer: a
        #: retry that arrives before the original resolves attaches to
        #: this future instead of enqueuing a second apply.
        self.pending_tokens: dict[str, asyncio.Future] = {}
        #: Last-good core map, maintained incrementally from receipts —
        #: the state degraded-mode reads answer from.
        self.cores: dict = dict(service.cores())
        self.commits = 0
        self.shed = 0
        self.deadline_expired = 0
        self.crashes = 0
        self.recoveries = 0
        self.degraded_reads = 0
        self.last_recovery = None
        self.recovery_error: Optional[str] = None
        self.replica: Optional[LogReplica] = None
        self.subscribers: dict[int, _RemoteSubscriber] = {}
        self._gate = asyncio.Event()
        self._gate.set()
        self._closing = False
        self._receipt_floor = 0
        self._task = asyncio.create_task(self._supervise())
        # Rebuild the token table of a restarted session (the server was
        # handed a recovered service): the log knows every token that
        # landed before the restart.
        if service.recovery is not None and service.log_path is not None:
            self._receipt_floor = self._load_tokens_from_log()
            self.last_recovery = service.recovery

    # -- lifecycle ------------------------------------------------------

    @property
    def recoverable(self) -> bool:
        """Whether a crash can be healed (the session keeps a log)."""
        return self.service.log_path is not None

    def pause(self) -> None:
        """Hold the writer before its next commit (quiesce/maintenance)."""
        self._gate.clear()

    def resume(self) -> None:
        """Release a :meth:`pause`."""
        self._gate.set()

    async def _supervise(self) -> None:
        while not self._closing:
            crashed = await self._serve_writes()
            if self._closing or not crashed:
                break
            self.crashes += 1
            self.server.crashes += 1
            self.state = DEGRADED
            self._fail_queued()
            if not self.recoverable:
                return  # degraded for good: admission rejects writes
            if self.limits.recovery_delay:
                await asyncio.sleep(self.limits.recovery_delay)
            if self._closing:
                break
            await self._recover()
            if self.state != HEALTHY:
                return  # recovery itself failed; stay degraded

    async def _serve_writes(self) -> bool:
        """The single writer; returns True on crash, False on close."""
        while True:
            item = await self.queue.get()
            if item is _CLOSE:
                return False
            # Gate check after dequeue: a pause() taken while the writer
            # was parked in queue.get() must still hold this commit.
            try:
                await self._gate.wait()
            except asyncio.CancelledError:
                self.server.inflight -= 1
                if not item.future.done():
                    item.future.set_exception(_SessionCrash("session closed"))
                raise
            try:
                receipt = self.service.apply(item.batch, token=item.token)
            except BatchError as exc:
                self.server.inflight -= 1
                if not item.future.done():
                    item.future.set_exception(exc)
            except Exception as exc:
                # Engine poisoned (or an injected crash): this is the
                # supervisor catching its dying "process".  The commit
                # may be in the log — the client's token retry finds out.
                self.server.inflight -= 1
                if not item.future.done():
                    item.future.set_exception(_SessionCrash(repr(exc)))
                return True
            else:
                self.server.inflight -= 1
                self.commits += 1
                for vertex, delta in receipt.deltas.items():
                    self.cores[vertex] = self.cores.get(vertex, 0) + delta
                summary = {
                    "receipt_id": receipt.receipt_id,
                    "ops": receipt.ops,
                    "changed": sorted(
                        ([v, d] for v, d in receipt.deltas.items()),
                        key=lambda pair: vertex_sort_key(pair[0]),
                    ),
                    "replayed": False,
                }
                self._remember(item.token, summary)
                if not item.future.done():
                    item.future.set_result(summary)
                for subscriber in list(self.subscribers.values()):
                    subscriber.wake.set()

    def _fail_queued(self) -> None:
        while True:
            try:
                item = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is _CLOSE:
                continue
            self.server.inflight -= 1
            if not item.future.done():
                item.future.set_exception(_SessionCrash("session crashed"))

    async def _recover(self) -> None:
        self.state = RECOVERING
        log = self.service.log_path
        try:
            self.service.close()
        except Exception:  # a poisoned session must not block recovery
            pass
        try:
            service = await asyncio.to_thread(CoreService.recover, log)
        except (ReproError, OSError) as exc:
            self.recovery_error = str(exc)
            self.state = DEGRADED
            return
        self.service = service
        self.cores = dict(service.cores())
        last_logged = self._load_tokens_from_log()
        self._receipt_floor = last_logged
        self.last_recovery = service.recovery
        self.recovery_error = None
        self.recoveries += 1
        self.server.recoveries += 1
        for subscriber in list(self.subscribers.values()):
            subscriber.resubscribe(service, last_logged)
        self.state = HEALTHY

    def _load_tokens_from_log(self) -> int:
        """Rebuild the token table from the log; returns its last receipt."""
        info = scan(self.service.log_path)
        for receipt_id, token in sorted(info.tokens.items()):
            self._remember(
                token,
                {"receipt_id": receipt_id, "replayed": True},
            )
        return max(
            info.last_receipt, info.header.get("base_receipt", 0)
        )

    def _remember(self, token: Optional[str], summary: dict) -> None:
        if token is None:
            return
        self.tokens[token] = summary
        self.tokens.move_to_end(token)
        while len(self.tokens) > self.limits.token_cache:
            self.tokens.popitem(last=False)

    def _last_receipt_id(self) -> int:
        receipt = self.service.last_receipt
        live = receipt.receipt_id if receipt is not None else 0
        return max(live, self._receipt_floor)

    async def close(self) -> None:
        if self._closing:
            return
        self._closing = True
        self.state = CLOSED
        self.resume()
        try:
            self.queue.put_nowait(_CLOSE)
        except asyncio.QueueFull:
            pass
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._fail_queued()
        for subscriber in list(self.subscribers.values()):
            subscriber.close()
        self.subscribers.clear()
        try:
            self.service.close()
        except Exception:
            pass

    # -- reads ----------------------------------------------------------

    def query(self, op: str, params: dict) -> dict:
        """Answer one read; degraded/recovering states use last-good."""
        if self.state == HEALTHY:
            source, result = "primary", self._query_primary(op, params)
        else:
            self.degraded_reads += 1
            source, result = "last_good", self._query_last_good(op, params)
        return {
            "result": result,
            "source": source,
            "receipt": self._last_receipt_id(),
            "state": self.state,
        }

    def _query_primary(self, op: str, params: dict):
        svc = self.service
        if op == "core":
            return svc.core(params["vertex"], default=None)
        if op == "cores":
            return _pairs(svc.cores())
        if op == "top":
            return [list(pair) for pair in svc.top(int(params.get("n", 10)))]
        if op == "spectrum":
            return _pairs(svc.spectrum())
        if op == "degeneracy":
            return svc.degeneracy()
        if op == "kcore":
            view = svc.kcore(int(params["k"]))
            return sorted(view, key=vertex_sort_key)
        raise ServiceError(f"unknown query op {op!r}")

    def _query_last_good(self, op: str, params: dict):
        cores = self.cores
        if op == "core":
            return cores.get(params["vertex"])
        if op == "cores":
            return _pairs(cores)
        if op == "top":
            return [
                list(pair)
                for pair in kcore_views.top_cores(
                    cores, int(params.get("n", 10))
                )
            ]
        if op == "spectrum":
            return _pairs(kcore_views.core_spectrum(cores))
        if op == "degeneracy":
            return kcore_views.degeneracy(cores)
        if op == "kcore":
            k = int(params["k"])
            return sorted(
                (v for v, c in cores.items() if c >= k), key=vertex_sort_key
            )
        raise ServiceError(f"unknown query op {op!r}")

    def status(self) -> dict:
        report = self.last_recovery
        return {
            "session": self.name,
            "state": self.state,
            "engine": self.service.engine_name,
            "logged": self.recoverable,
            "receipt": self._last_receipt_id(),
            "queue_depth": self.queue.qsize(),
            "commits": self.commits,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "degraded_reads": self.degraded_reads,
            "tokens_cached": len(self.tokens),
            "subscribers": len(self.subscribers),
            "recovery_error": self.recovery_error,
            "last_recovery": None if report is None else {
                "replayed": report.replayed,
                "skipped": report.skipped,
                "torn_bytes": report.torn_bytes,
                "from_snapshot": report.from_snapshot,
            },
        }


def _pairs(mapping: dict) -> list:
    """JSON-safe rendering of a vertex-keyed map (JSON keys are strings)."""
    return sorted(
        ([k, v] for k, v in mapping.items()),
        key=lambda pair: vertex_sort_key(pair[0]),
    )


class _Connection:
    """Per-connection write serialization + network fault points."""

    def __init__(self, writer: asyncio.StreamWriter,
                 limits: ServerLimits) -> None:
        self.writer = writer
        self.limits = limits
        self.lock = asyncio.Lock()
        self.subs: dict[int, _RemoteSubscriber] = {}

    async def send(self, record: dict) -> None:
        async with self.lock:
            inject("server.drop_conn")
            data = protocol.encode_frame(record)
            try:
                inject("server.partial_frame")
            except InjectedFault:
                self.writer.write(data[: len(data) // 2])
                await self.writer.drain()
                raise
            try:
                inject("server.slow_write")
            except InjectedFault:
                await asyncio.sleep(self.limits.slow_write_delay)
            self.writer.write(data)
            await self.writer.drain()

    def abort(self) -> None:
        transport = self.writer.transport
        if transport is not None:
            transport.abort()


class CoreServer:
    """The serving front: accept connections, supervise tenant sessions.

    Parameters
    ----------
    engine / engine_opts / seed:
        How new sessions build their engine (any registry name).
    log_dir:
        Directory for per-session write-ahead logs (``<name>.wal``).
        With a log, sessions are durable, recoverable after a crash and
        replica-servable; an existing log is *recovered*, not truncated,
        so a restarted server resumes every tenant where it left off.
        Without one, sessions are memory-only and a crash leaves them
        degraded (read-only) until closed.
    fsync:
        WAL fsync policy for new session logs.
    limits:
        :class:`ServerLimits`; defaults are production-ish.

    Use as an async context manager, or :meth:`start` / :meth:`close`::

        async with CoreServer(log_dir=tmp) as server:
            host, port = await server.start("127.0.0.1", 0)
            ...
    """

    def __init__(
        self,
        *,
        engine: str = DEFAULT_ENGINE,
        engine_opts: Optional[dict] = None,
        seed: Optional[int] = 0,
        log_dir=None,
        fsync: str = "always",
        limits: Optional[ServerLimits] = None,
    ) -> None:
        self.engine = engine
        self.engine_opts = dict(engine_opts or {})
        self.seed = seed
        self.log_dir = Path(log_dir) if log_dir is not None else None
        self.fsync = fsync
        self.limits = limits or ServerLimits()
        self.sessions: dict[str, TenantSession] = {}
        self._session_locks: dict[str, asyncio.Lock] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set[asyncio.Task] = set()
        self._sub_ids = itertools.count(1)
        self.inflight = 0
        self.admitted = 0
        self.shed = 0
        self.crashes = 0
        self.recoveries = 0
        self._closing = False

    # -- lifecycle ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0):
        """Bind and serve; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ServiceError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=protocol.STREAM_LIMIT
        )
        bound = self._server.sockets[0].getsockname()[:2]
        return bound

    @property
    def address(self):
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def close(self) -> None:
        """Stop accepting, drop connections, close every session."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        for session in list(self.sessions.values()):
            await session.close()
        self.sessions.clear()

    async def __aenter__(self) -> "CoreServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def stats(self) -> dict:
        return {
            "sessions": len(self.sessions),
            "inflight": self.inflight,
            "admitted": self.admitted,
            "shed": self.shed,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
        }

    # -- session management --------------------------------------------

    async def get_session(self, name: str) -> TenantSession:
        """Fetch-or-create the tenant session called ``name``."""
        session = self.sessions.get(name)
        if session is not None:
            return session
        if not _SESSION_NAME.match(name or ""):
            raise ServiceError(
                f"invalid session name {name!r}; use 1-64 characters from "
                "[A-Za-z0-9._-]"
            )
        lock = self._session_locks.setdefault(name, asyncio.Lock())
        async with lock:
            session = self.sessions.get(name)
            if session is None:
                service = await asyncio.to_thread(self._open_service, name)
                session = TenantSession(name, service, self, self.limits)
                self.sessions[name] = session
        return session

    def _open_service(self, name: str) -> CoreService:
        if self.log_dir is None:
            return CoreService.open(
                engine=self.engine, seed=self.seed, **self.engine_opts
            )
        self.log_dir.mkdir(parents=True, exist_ok=True)
        log = self.log_dir / f"{name}.wal"
        if log.exists():
            # Server restart: resume the tenant from its own log.
            return CoreService.recover(log, fsync=self.fsync)
        return CoreService.open(
            engine=self.engine,
            seed=self.seed,
            log=log,
            fsync=self.fsync,
            **self.engine_opts,
        )

    def _get_replica(self, session: TenantSession) -> LogReplica:
        if not session.recoverable:
            raise ServiceError(
                f"session {session.name!r} keeps no commit log; replicas "
                "tail the log — start the server with log_dir=..."
            )
        if session.replica is None:
            session.replica = LogReplica(session.service.log_path)
        return session.replica

    # -- connection handling -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        conn = _Connection(writer, self.limits)
        requests: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except protocol.ProtocolError:
                    break  # not speaking our protocol: drop the peer
                if message is None:
                    break
                # One task per request: a connection multiplexes — a
                # commit waiting out its deadline must not block the
                # peer's other requests.
                request = asyncio.create_task(
                    self._serve_request(conn, message)
                )
                requests.add(request)
                request.add_done_callback(requests.discard)
        except (ConnectionError, OSError):
            pass  # connection-level fault: drop the peer, server lives on
        except asyncio.CancelledError:
            pass  # server shutdown: finish cleanup, end the task cleanly
        finally:
            for request in list(requests):
                request.cancel()
            if requests:
                await asyncio.gather(*requests, return_exceptions=True)
            for subscriber in list(conn.subs.values()):
                subscriber.session.subscribers.pop(subscriber.sub_id, None)
                subscriber.close()
            conn.subs.clear()
            writer.close()
            self._conns.discard(task)

    async def _serve_request(self, conn: _Connection, message: dict) -> None:
        try:
            response = await self._dispatch(conn, message)
            if response is not None:
                await conn.send(response)
        except (InjectedFault, ConnectionError, OSError):
            # A network fault point fired (or the peer vanished) while
            # answering: the connection is the casualty, not the server.
            conn.abort()
        except asyncio.CancelledError:
            pass

    async def _dispatch(self, conn: _Connection,
                        message: dict) -> Optional[dict]:
        req_id = message.get("id")
        method = message.get("method")
        params = message.get("params") or {}
        if req_id is None or not isinstance(method, str):
            return protocol.failure(
                req_id, protocol.ERR_BAD_REQUEST,
                "requests need an 'id' and a 'method'",
            )
        if method == "ping":
            return protocol.ok(req_id, "pong")
        if method == "server_stats":
            return protocol.ok(req_id, self.stats())
        try:
            session = await self.get_session(
                message.get("session") or "default"
            )
        except (ReproError, OSError) as exc:
            return protocol.failure(
                req_id, protocol.ERR_INTERNAL, str(exc)
            )
        try:
            if method == "commit":
                return await self._handle_commit(req_id, session, params)
            if method == "query":
                return await self._handle_query(req_id, session, params)
            if method == "status":
                return protocol.ok(req_id, session.status())
            if method == "subscribe":
                return self._handle_subscribe(conn, req_id, session, params)
            if method == "unsubscribe":
                return self._handle_unsubscribe(conn, req_id, params)
        except InjectedFault:
            raise  # network fault points propagate to the handler
        except (ReproError, OSError, KeyError, TypeError, ValueError) as exc:
            return protocol.failure(
                req_id, protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        return protocol.failure(
            req_id, protocol.ERR_BAD_REQUEST, f"unknown method {method!r}"
        )

    # -- request handlers ----------------------------------------------

    async def _handle_commit(self, req_id, session: TenantSession,
                             params: dict) -> dict:
        token = params.get("token")
        deadline_ms = params.get("deadline_ms")
        deadline = (
            deadline_ms / 1000.0
            if deadline_ms is not None
            else self.limits.default_deadline
        )
        retry_ms = max(1, int(self.limits.retry_after * 1000))
        if token is not None and token in session.tokens:
            session.tokens.move_to_end(token)
            summary = dict(session.tokens[token])
            summary["replayed"] = True
            return protocol.ok(req_id, summary)
        pending = (
            session.pending_tokens.get(token) if token is not None else None
        )
        if pending is not None:
            # A retry of a commit still in flight: attach to it instead
            # of enqueuing a second apply (exactly-once under retry
            # racing the original).
            return await self._await_commit(
                req_id, session, pending, deadline, retry_ms,
                replayed=True,
            )
        if session.state != HEALTHY:
            if session.recoverable and session.state != CLOSED:
                return protocol.failure(
                    req_id, protocol.ERR_RETRY_AFTER,
                    f"session {session.name!r} is {session.state}; "
                    "recovering from its log",
                    retryable=True, retry_after_ms=retry_ms * 4,
                )
            return protocol.failure(
                req_id, protocol.ERR_DEGRADED,
                f"session {session.name!r} is {session.state} and keeps "
                "no commit log; reads still answer from last-good state",
            )
        if deadline <= 0:
            session.deadline_expired += 1
            return protocol.failure(
                req_id, protocol.ERR_DEADLINE,
                "deadline expired before admission", retryable=True,
            )
        if self.inflight >= self.limits.max_inflight:
            self.shed += 1
            session.shed += 1
            return protocol.failure(
                req_id, protocol.ERR_RETRY_AFTER,
                f"server at max_inflight={self.limits.max_inflight}",
                retryable=True, retry_after_ms=retry_ms,
            )
        try:
            batch = Batch(
                (kind, (u, v)) for kind, u, v in params.get("ops", ())
            )
        except (ReproError, TypeError, ValueError) as exc:
            return protocol.failure(
                req_id, protocol.ERR_BATCH, str(exc)
            )
        future = asyncio.get_running_loop().create_future()
        item = _PendingCommit(batch, token, future)
        try:
            session.queue.put_nowait(item)
        except asyncio.QueueFull:
            self.shed += 1
            session.shed += 1
            depth = session.queue.qsize()
            hint = int(
                retry_ms * (1 + depth / max(1, self.limits.max_pending))
            )
            return protocol.failure(
                req_id, protocol.ERR_RETRY_AFTER,
                f"session {session.name!r} commit queue is full "
                f"({depth} pending)",
                retryable=True, retry_after_ms=hint,
            )
        self.inflight += 1
        self.admitted += 1
        if token is not None:
            session.pending_tokens[token] = future
        future.add_done_callback(_reap_commit(session, token))
        return await self._await_commit(
            req_id, session, future, deadline, retry_ms
        )

    async def _await_commit(self, req_id, session: TenantSession, future,
                            deadline: float, retry_ms: int, *,
                            replayed: bool = False) -> dict:
        try:
            # shield(): a deadline abandons the *waiter*, never the
            # commit — the single writer finishes it and records the
            # token, so the client's retry is answered idempotently.
            summary = await asyncio.wait_for(
                asyncio.shield(future), deadline
            )
        except asyncio.TimeoutError:
            session.deadline_expired += 1
            return protocol.failure(
                req_id, protocol.ERR_DEADLINE,
                "deadline expired while the commit was in flight; retry "
                "with the same token to resolve it exactly once",
                retryable=True,
            )
        except BatchError as exc:
            return protocol.failure(req_id, protocol.ERR_BATCH, str(exc))
        except _SessionCrash as exc:
            return protocol.failure(
                req_id, protocol.ERR_RETRY_AFTER,
                f"session {session.name!r} crashed mid-commit ({exc}); "
                "retry with the same token after recovery",
                retryable=True, retry_after_ms=retry_ms * 4,
            )
        if replayed:
            summary = dict(summary)
            summary["replayed"] = True
        return protocol.ok(req_id, summary)

    async def _handle_query(self, req_id, session: TenantSession,
                            params: dict) -> dict:
        op = params.get("op")
        if not isinstance(op, str):
            return protocol.failure(
                req_id, protocol.ERR_BAD_REQUEST, "query needs an 'op'"
            )
        if params.get("replica"):
            replica = await asyncio.to_thread(self._get_replica, session)
            await asyncio.to_thread(replica.refresh)
            payload = _replica_query(replica, op, params)
            return protocol.ok(req_id, {
                "result": payload,
                "source": "replica",
                "receipt": replica.receipt,
                "state": session.state,
            })
        try:
            return protocol.ok(req_id, session.query(op, params))
        except ServiceError as exc:
            return protocol.failure(
                req_id, protocol.ERR_BAD_REQUEST, str(exc)
            )

    def _handle_subscribe(self, conn: _Connection, req_id,
                          session: TenantSession, params: dict) -> dict:
        min_k = params.get("min_k")
        buffer = min(
            int(params.get("buffer") or self.limits.subscriber_buffer),
            self.limits.subscriber_buffer,
        )
        sub_id = next(self._sub_ids)
        subscriber = _RemoteSubscriber(session, conn, sub_id, min_k, buffer)
        session.subscribers[sub_id] = subscriber
        conn.subs[sub_id] = subscriber
        return protocol.ok(req_id, {"sub": sub_id, "buffer": buffer})

    def _handle_unsubscribe(self, conn: _Connection, req_id,
                            params: dict) -> dict:
        sub_id = params.get("sub")
        subscriber = conn.subs.pop(sub_id, None)
        if subscriber is None:
            return protocol.failure(
                req_id, protocol.ERR_BAD_REQUEST,
                f"unknown subscription {sub_id!r} on this connection",
            )
        subscriber.session.subscribers.pop(sub_id, None)
        subscriber.close()
        return protocol.ok(req_id, {"sub": sub_id, "closed": True})


def _replica_query(replica: LogReplica, op: str, params: dict):
    if op == "core":
        return replica.core(params["vertex"], default=None)
    if op == "cores":
        return _pairs(replica.cores())
    if op == "top":
        return [list(pair) for pair in replica.top(int(params.get("n", 10)))]
    if op == "spectrum":
        return _pairs(replica.spectrum())
    if op == "degeneracy":
        return replica.degeneracy()
    if op == "kcore":
        return sorted(replica.kcore(int(params["k"])), key=vertex_sort_key)
    raise ServiceError(f"unknown query op {op!r}")

"""Wire protocol of the async serving front: framed JSONL over streams.

One frame per message, reusing the write-ahead log's framing
(:mod:`repro.service.wal`)::

    <length> <crc32-hex> <payload>\\n

so a torn or corrupted frame is *detected* (the frame fails) rather than
silently mis-parsed — the same property the WAL relies on, now applied
to the network: a connection that dies mid-write leaves the peer with a
partial frame it can recognize and discard, never half a message it
mistakes for a whole one.

Message shapes (JSON objects):

* request — ``{"id": n, "method": str, "session": str, "params": {...}}``
* success — ``{"id": n, "ok": true, "result": ...}``
* failure — ``{"id": n, "ok": false, "error": {"type": str,
  "message": str, "retryable": bool, "retry_after_ms": int?}}``
* event batch — ``{"kind": "events", "sub": n,
  "events": [[vertex, old_core, new_core, receipt_id], ...],
  "dropped": n}``
* stream reset — ``{"kind": "reset", "sub": n, "receipt": n}`` (sent
  after a session failover: events during the crash window are gone,
  resync by querying)

Vertices must be JSON-representable — the same contract as the WAL and
the snapshot format.

The failure ``type`` names are part of the protocol; the client maps
them back to the exception classes below (:func:`raise_remote_error`).
``RetryAfter`` carries a backoff hint in ``retry_after_ms`` — it is the
load-shedding response, not an error in the session.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.errors import ServiceError
from repro.service.wal import _frame, _parse_frame

#: Per-connection stream limit: one frame must fit (cores dumps of a
#: large session are the biggest payloads the protocol carries).
STREAM_LIMIT = 2**22

# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

#: Commit shed by admission control / backpressure; retry after the hint.
ERR_RETRY_AFTER = "RetryAfter"
#: The per-request deadline fired before the reply; the commit may still
#: have landed — retry with the same token to find out idempotently.
ERR_DEADLINE = "DeadlineExceeded"
#: The session is degraded (poisoned engine, no log to recover from) and
#: cannot take writes.
ERR_DEGRADED = "SessionDegraded"
#: The batch itself was invalid against the current graph.
ERR_BATCH = "BatchError"
#: Malformed request / unknown method or query op.
ERR_BAD_REQUEST = "BadRequest"
#: Anything else the server refused or failed on.
ERR_INTERNAL = "InternalError"


class ProtocolError(ServiceError):
    """A peer sent bytes that do not decode to a valid protocol frame."""


class ConnectionClosedError(ServiceError):
    """The connection died before the request was answered.

    The request may or may not have been processed — commit retries must
    reuse their idempotency token.
    """


class RemoteError(ServiceError):
    """The server answered a request with a failure frame."""

    def __init__(
        self,
        err_type: str,
        message: str,
        *,
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"{err_type}: {message}")
        self.err_type = err_type
        self.remote_message = message
        self.retryable = retryable
        #: Suggested backoff in seconds (``RetryAfter`` only).
        self.retry_after = retry_after


class RetryAfterError(RemoteError):
    """The server shed the request; retry after :attr:`retry_after`."""


class DeadlineExceededError(RemoteError):
    """The per-request deadline fired before the server replied."""


class SessionDegradedError(RemoteError):
    """The session is read-only (degraded) and cannot take the write."""


_ERROR_CLASSES = {
    ERR_RETRY_AFTER: RetryAfterError,
    ERR_DEADLINE: DeadlineExceededError,
    ERR_DEGRADED: SessionDegradedError,
}


def raise_remote_error(error: dict) -> None:
    """Raise the client-side exception for a failure frame's ``error``."""
    err_type = error.get("type", ERR_INTERNAL)
    retry_ms = error.get("retry_after_ms")
    cls = _ERROR_CLASSES.get(err_type, RemoteError)
    raise cls(
        err_type,
        error.get("message", ""),
        retryable=bool(error.get("retryable")),
        retry_after=retry_ms / 1000.0 if retry_ms is not None else None,
    )


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(record: dict) -> bytes:
    """Serialize one message as a framed line (WAL framing)."""
    return _frame(json.dumps(record).encode())


async def read_message(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one framed message; ``None`` on a clean or mid-frame EOF.

    A syntactically present but invalid frame (bad length, checksum or
    JSON) raises :class:`ProtocolError` — the peer is speaking, but not
    this protocol.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError:
        return None  # EOF (possibly mid-frame: a dropped connection)
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            f"frame exceeds the {STREAM_LIMIT}-byte stream limit"
        ) from exc
    record = _parse_frame(line[:-1])
    if record is None:
        raise ProtocolError(
            f"received {len(line)} bytes that are not a valid frame"
        )
    return record


async def write_message(
    writer: asyncio.StreamWriter, record: dict
) -> None:
    """Frame and send one message, draining the transport buffer."""
    writer.write(encode_frame(record))
    await writer.drain()


# ---------------------------------------------------------------------------
# Message constructors
# ---------------------------------------------------------------------------


def request(req_id: int, method: str, session: str, params: dict) -> dict:
    return {"id": req_id, "method": method, "session": session,
            "params": params}


def ok(req_id: int, result) -> dict:
    return {"id": req_id, "ok": True, "result": result}


def failure(
    req_id: int,
    err_type: str,
    message: str,
    *,
    retryable: bool = False,
    retry_after_ms: Optional[int] = None,
) -> dict:
    error = {"type": err_type, "message": message, "retryable": retryable}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    return {"id": req_id, "ok": False, "error": error}


def events_frame(sub_id: int, events, dropped: int) -> dict:
    """One commit-stream delivery: a batch of core events for ``sub_id``."""
    return {
        "kind": "events",
        "sub": sub_id,
        "events": [
            [e.vertex, e.old_core, e.new_core, e.receipt_id] for e in events
        ],
        "dropped": dropped,
    }


def reset_frame(sub_id: int, receipt: int) -> dict:
    """Stream discontinuity marker: events up to ``receipt`` may be lost."""
    return {"kind": "reset", "sub": sub_id, "receipt": receipt}

"""The service façade: one public entry point for core maintenance.

::

    from repro.service import CoreService

    svc = CoreService.open(edges, engine="order")       # session
    with svc.transaction() as tx:                       # writes
        tx.insert(u, v)
        tx.remove(x, y)
    svc.core(v), svc.kcore(k), svc.top(10)              # reads
    svc.subscribe(on_event, min_k=8)                    # reactions
    svc.save(path); CoreService.load(path)              # checkpoints

    svc = CoreService.open(edges, log="session.wal")    # durable session
    svc.compact()                                       # snapshot + truncate
    svc = CoreService.recover("session.wal")            # after a crash

Consumers (the CLI, the sliding-window monitor, examples, benchmark
drivers) build engines only through this package; the engine registry
and batch pipeline underneath (:mod:`repro.engine`) stay the extension
surface for new engine implementations.
"""

from repro.service.events import CoreEvent, Subscription
from repro.service.session import CoreService, RecoveryReport
from repro.service.transactions import CommitReceipt, Transaction
from repro.service.wal import WriteAheadLog, log_stat

__all__ = [
    "CommitReceipt",
    "CoreEvent",
    "CoreService",
    "RecoveryReport",
    "Subscription",
    "Transaction",
    "WriteAheadLog",
    "log_stat",
]

"""The service façade: one public entry point for core maintenance.

::

    from repro.service import CoreService

    svc = CoreService.open(edges, engine="order")       # session
    with svc.transaction() as tx:                       # writes
        tx.insert(u, v)
        tx.remove(x, y)
    svc.core(v), svc.kcore(k), svc.top(10)              # reads
    svc.subscribe(on_event, min_k=8)                    # reactions
    svc.save(path); CoreService.load(path)              # checkpoints

    svc = CoreService.open(edges, log="session.wal")    # durable session
    svc.compact()                                       # snapshot + truncate
    svc = CoreService.recover("session.wal")            # after a crash

The async serving front lives here too::

    from repro.service import CoreServer, CoreClient, LogReplica

    async with CoreServer(log_dir=dir) as server:       # multi-tenant TCP
        host, port = await server.start()
        client = await CoreClient.connect(host, port, session="tenant-a")
        await client.commit([("insert", 0, 1)])         # exactly-once
        await client.cores(replica=True)                # log-tailing replica

Consumers (the CLI, the sliding-window monitor, examples, benchmark
drivers) build engines only through this package; the engine registry
and batch pipeline underneath (:mod:`repro.engine`) stay the extension
surface for new engine implementations.
"""

from repro.service.client import CoreClient, EventBatch, EventStream
from repro.service.events import CoreEvent, Subscription
from repro.service.protocol import (
    ConnectionClosedError,
    DeadlineExceededError,
    ProtocolError,
    RemoteError,
    RetryAfterError,
    SessionDegradedError,
)
from repro.service.replica import LogReplica
from repro.service.server import CoreServer, ServerLimits, TenantSession
from repro.service.session import CoreService, RecoveryReport
from repro.service.transactions import CommitReceipt, Transaction
from repro.service.wal import WriteAheadLog, log_stat

__all__ = [
    "CommitReceipt",
    "ConnectionClosedError",
    "CoreClient",
    "CoreEvent",
    "CoreServer",
    "CoreService",
    "DeadlineExceededError",
    "EventBatch",
    "EventStream",
    "LogReplica",
    "ProtocolError",
    "RecoveryReport",
    "RemoteError",
    "RetryAfterError",
    "ServerLimits",
    "SessionDegradedError",
    "Subscription",
    "TenantSession",
    "Transaction",
    "WriteAheadLog",
    "log_stat",
]

"""The :class:`CoreService` session: the library's one public entry point.

A service wraps one maintenance engine behind three surfaces:

* **writes** — :meth:`CoreService.transaction` accumulates a batch and
  commits it atomically (plus :meth:`~CoreService.insert` /
  :meth:`~CoreService.remove` one-op sugar and
  :meth:`~CoreService.apply` for prebuilt batches);
* **reads** — :meth:`~CoreService.core`, :meth:`~CoreService.cores`,
  :meth:`~CoreService.kcore`, :meth:`~CoreService.degeneracy`,
  :meth:`~CoreService.top`, :meth:`~CoreService.spectrum`, all answered
  through :mod:`repro.analysis.kcore_views` over the engine's public
  core mapping — never through maintainer internals;
* **reactions** — :meth:`~CoreService.subscribe` delivers
  :class:`~repro.service.events.CoreEvent` records derived from each
  commit's exact net core deltas.

Sessions are durable: :meth:`~CoreService.save` checkpoints the
maintained index (order engine) and :meth:`CoreService.load` restores it
without recomputation, returning a live service ready for new
subscriptions and commits.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Optional, Union

from repro.analysis import kcore_views
from repro.engine.base import CoreMaintainer
from repro.engine.batch import Batch
from repro.engine.registry import make_engine
from repro.errors import ServiceError
from repro.graphs.undirected import DynamicGraph
from repro.service.events import EventCallback, Subscription
from repro.service.transactions import CommitReceipt, Transaction

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

_MISSING = object()


class CoreService:
    """A long-lived core-maintenance session over one evolving graph.

    Build one with :meth:`open` (by engine registry name) or
    :meth:`load` (from a :meth:`save` checkpoint); the constructor also
    accepts an existing :class:`~repro.engine.base.CoreMaintainer` to
    adopt.  The service takes ownership of the engine and its graph —
    all further updates must go through the service so subscribers see
    every change.

    >>> svc = CoreService.open([(0, 1), (1, 2), (2, 0)])
    >>> svc.core(0)
    2
    >>> with svc.transaction() as tx:
    ...     _ = tx.insert(0, 3).insert(1, 3)
    >>> tx.receipt.deltas
    {3: 2}
    >>> sorted(svc.kcore(2))
    [0, 1, 2, 3]
    """

    def __init__(self, engine: CoreMaintainer) -> None:
        self._engine = engine
        self._subscribers: list[Subscription] = []
        self._receipt_ids = itertools.count(1)
        self._last_receipt: Optional[CommitReceipt] = None

    # ------------------------------------------------------------------
    # Session construction
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        graph: Union[DynamicGraph, Iterable[Edge], None] = None,
        *,
        engine: str = "order",
        seed: Optional[int] = 0,
        **opts,
    ) -> "CoreService":
        """Open a service over ``graph`` with a registry-named engine.

        ``graph`` may be a :class:`~repro.graphs.undirected.DynamicGraph`
        (adopted as-is), any iterable of edges, or ``None`` for an empty
        graph.  ``engine`` is any :func:`~repro.engine.registry.make_engine`
        name (``"order"``, ``"order-treap"``, ``"order-sharded"``,
        ``"trav-<h>"``, ``"naive"``, …); extra options go to the engine
        factory, which rejects names it does not understand.

        >>> CoreService.open([(0, 1)], engine="naive").engine_name
        'naive'
        >>> CoreService.open().graph.n        # empty session
        0
        """
        if graph is None:
            graph = DynamicGraph()
        elif not isinstance(graph, DynamicGraph):
            graph = DynamicGraph(graph)
        return cls(make_engine(engine, graph, seed=seed, **opts))

    @classmethod
    def load(cls, path, *, audit: bool = True) -> "CoreService":
        """Restore a service from a :meth:`save` checkpoint.

        The maintained index (graph, k-order, ``deg+``, ``mcd``) is
        rebuilt without recomputation and its invariants are audited
        (disable with ``audit=False``); see :mod:`repro.core.snapshot`.
        Subscriptions are runtime state, not part of the checkpoint —
        re-subscribe on the restored service and events flow from its
        first commit.
        """
        from repro.core.snapshot import load_snapshot

        return cls(load_snapshot(path, audit=audit))

    def save(self, path) -> None:
        """Checkpoint the maintained index as JSON at ``path``.

        Only the order-family engines (``order``, ``order-simplified``
        and their aliases) maintain a serializable index; other engines
        raise :class:`~repro.errors.ServiceError` (rebuild them from the
        edge list instead).
        """
        from repro.core.maintainer import OrderedCoreMaintainer
        from repro.core.simplified import SimplifiedCoreMaintainer
        from repro.core.snapshot import save_snapshot

        if not isinstance(
            self._engine, (OrderedCoreMaintainer, SimplifiedCoreMaintainer)
        ):
            raise ServiceError(
                f"engine {self._engine.name!r} has no snapshot support; "
                "only the order-family engines' index can be checkpointed"
            )
        save_snapshot(self._engine, path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def engine(self) -> CoreMaintainer:
        """The underlying engine.

        The escape hatch for per-edge measurement and analysis helpers
        that consume a :class:`~repro.engine.base.CoreMaintainer`; treat
        it as read-only — updates applied behind the service's back are
        invisible to subscribers.
        """
        return self._engine

    @property
    def engine_name(self) -> str:
        """Registry-style name of the underlying engine."""
        return self._engine.name

    @property
    def graph(self) -> DynamicGraph:
        """The served graph (read-only; mutate through transactions)."""
        return self._engine.graph

    @property
    def last_receipt(self) -> Optional[CommitReceipt]:
        """Receipt of the most recent commit (``None`` before the first)."""
        return self._last_receipt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self.graph
        return (
            f"CoreService(engine={self._engine.name!r}, "
            f"n={g.n}, m={g.m}, subscribers={len(self._subscribers)})"
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Start a transaction; commit happens when its context exits."""
        return Transaction(self)

    def apply(self, batch: Batch) -> CommitReceipt:
        """Commit a prebuilt :class:`~repro.engine.batch.Batch`."""
        return self._commit(batch)

    def insert(self, u: Vertex, v: Vertex) -> CommitReceipt:
        """One-op sugar: commit a single edge insertion."""
        return self._commit(Batch().insert(u, v))

    def remove(self, u: Vertex, v: Vertex) -> CommitReceipt:
        """One-op sugar: commit a single edge removal."""
        return self._commit(Batch().remove(u, v))

    def _commit(self, batch: Batch) -> CommitReceipt:
        """Apply ``batch``, mint a receipt, notify subscribers.

        The batch is validated against the current graph *first*
        (:meth:`~repro.engine.batch.Batch.check_applicable`), so an
        invalid op — inserting a present edge, removing an absent one —
        raises :class:`~repro.errors.BatchError` before the engine
        mutates anything and the commit stays atomic.  Only an
        engine-internal failure can still land a partial batch; engines
        document those as bugs, not service states.
        """
        batch.check_applicable(self._engine.graph)
        result = self._engine.apply_batch(batch)
        deltas = result.changed
        core = self._engine.core
        receipt = CommitReceipt(
            receipt_id=next(self._receipt_ids),
            result=result,
            deltas=deltas,
            # Capture the changed vertices' post-commit cores now, so
            # the receipt's (lazily built) events stay correct however
            # the graph evolves after this commit.
            new_cores={v: core.get(v, 0) for v in deltas},
        )
        self._last_receipt = receipt
        if self._subscribers and deltas:
            events = receipt.events
            # Snapshot the list: callbacks may close their own (or any)
            # subscription mid-dispatch.
            for subscription in list(self._subscribers):
                subscription._deliver(events)
        return receipt

    # ------------------------------------------------------------------
    # Reads (backed by analysis.kcore_views)
    # ------------------------------------------------------------------

    def core(self, vertex: Vertex, default=_MISSING) -> int:
        """Core number of one vertex.

        Raises ``KeyError`` for a vertex the service has never seen,
        unless ``default`` is given.
        """
        c = self._engine.core.get(vertex, _MISSING)
        if c is _MISSING:
            if default is _MISSING:
                raise KeyError(vertex)
            return default
        return c

    def cores(self) -> dict[Vertex, int]:
        """A snapshot copy of every vertex's core number."""
        return dict(self._engine.core)

    def kcore(self, k: int) -> kcore_views.KCoreView:
        """A lazy, live membership view of the ``k``-core.

        O(1) membership tests, on-demand iteration, and it always
        answers for the *current* graph — no copy is taken.  Call
        ``.vertices()`` to pin a set or ``.subgraph()`` for the induced
        graph.
        """
        return kcore_views.KCoreView(self._engine.core, k, self.graph)

    def degeneracy(self) -> int:
        """The largest ``k`` with a non-empty ``k``-core."""
        return kcore_views.degeneracy(self._engine.core)

    def top(self, n: int) -> list[tuple[Vertex, int]]:
        """The ``n`` vertices with the highest core numbers (descending)."""
        return kcore_views.top_cores(self._engine.core, n)

    def spectrum(self) -> dict[int, int]:
        """Map ``k -> |k-shell|`` for every non-empty shell.

        >>> CoreService.open([(0, 1), (1, 2), (2, 0), (2, 3)]).spectrum()
        {1: 1, 2: 3}
        """
        return kcore_views.core_spectrum(self._engine.core)

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------

    def subscribe(
        self, callback: EventCallback, *, min_k: Optional[int] = None
    ) -> Subscription:
        """Deliver every future commit's core events to ``callback``.

        ``callback(event)`` runs synchronously during commit, once per
        changed vertex, after the engine's state is fully consistent —
        reading the service from inside a callback sees the post-commit
        world.  With ``min_k``, only events touching the cores at or
        above that level arrive (``max(old, new) >= min_k``).  Close the
        returned :class:`~repro.service.events.Subscription` (or use it
        as a context manager) to stop.  A callback that raises aborts
        the remaining dispatch and propagates out of the commit; the
        commit itself is already applied.

        >>> svc = CoreService.open([(0, 1), (1, 2), (2, 0)])
        >>> sub = svc.subscribe(
        ...     lambda e: print(e.vertex, e.old_core, "->", e.new_core)
        ... )
        >>> receipt = svc.insert(0, 3)
        3 0 -> 1
        >>> sub.close()
        >>> receipt = svc.insert(1, 3)   # closed: nothing printed
        """
        subscription = Subscription(self, callback, min_k)
        self._subscribers.append(subscription)
        return subscription

    @property
    def subscriber_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subscribers)

    def _unsubscribe(self, subscription: Subscription) -> None:
        try:
            self._subscribers.remove(subscription)
        except ValueError:  # already removed; close() is idempotent
            pass

"""The :class:`CoreService` session: the library's one public entry point.

A service wraps one maintenance engine behind three surfaces:

* **writes** — :meth:`CoreService.transaction` accumulates a batch and
  commits it atomically (plus :meth:`~CoreService.insert` /
  :meth:`~CoreService.remove` one-op sugar and
  :meth:`~CoreService.apply` for prebuilt batches);
* **reads** — :meth:`~CoreService.core`, :meth:`~CoreService.cores`,
  :meth:`~CoreService.kcore`, :meth:`~CoreService.degeneracy`,
  :meth:`~CoreService.top`, :meth:`~CoreService.spectrum`, all answered
  through :mod:`repro.analysis.kcore_views` over the engine's public
  core mapping — never through maintainer internals;
* **reactions** — :meth:`~CoreService.subscribe` delivers
  :class:`~repro.service.events.CoreEvent` records derived from each
  commit's exact net core deltas.

Sessions are durable two ways: :meth:`~CoreService.save` /
:meth:`CoreService.load` checkpoint and restore the maintained index
explicitly, and :meth:`open` with ``log=`` attaches a write-ahead commit
log (:mod:`repro.service.wal`) so every commit is on disk *before* the
engine applies it — :meth:`CoreService.recover` then replays the log
onto the latest snapshot after a crash, and :meth:`~CoreService.compact`
folds the log back into a snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Iterable, NamedTuple, Optional, Union

from repro.analysis import kcore_views
from repro.engine.base import CoreMaintainer
from repro.engine.batch import Batch
from repro.engine.registry import DEFAULT_ENGINE, make_engine
from repro.errors import LogCorruptionError, ReproError, ServiceError
from repro.graphs.undirected import DynamicGraph
from repro.service.events import EventCallback, Subscription
from repro.service.transactions import CommitReceipt, Transaction
from repro.testing.faults import inject

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

_MISSING = object()


class RecoveryReport(NamedTuple):
    """What :meth:`CoreService.recover` did (``svc.recovery``).

    ``replayed`` log records were applied, ``skipped`` were already in
    the snapshot (idempotent replay), ``torn_bytes`` of torn tail were
    truncated, and ``from_snapshot`` says whether a snapshot seeded the
    engine (else it was rebuilt empty from the log header).
    """

    replayed: int
    skipped: int
    torn_bytes: int
    from_snapshot: bool


def _snapshot_path(log: Path) -> Path:
    """Where a logged session keeps its compaction snapshot."""
    return log.with_name(log.name + ".snapshot")


class CoreService:
    """A long-lived core-maintenance session over one evolving graph.

    Build one with :meth:`open` (by engine registry name) or
    :meth:`load` (from a :meth:`save` checkpoint); the constructor also
    accepts an existing :class:`~repro.engine.base.CoreMaintainer` to
    adopt.  The service takes ownership of the engine and its graph —
    all further updates must go through the service so subscribers see
    every change.

    >>> svc = CoreService.open([(0, 1), (1, 2), (2, 0)])
    >>> svc.core(0)
    2
    >>> with svc.transaction() as tx:
    ...     _ = tx.insert(0, 3).insert(1, 3)
    >>> tx.receipt.deltas
    {3: 2}
    >>> sorted(svc.kcore(2))
    [0, 1, 2, 3]
    """

    def __init__(self, engine: CoreMaintainer) -> None:
        self._engine = engine
        self._subscribers: list[Subscription] = []
        self._next_receipt = 1
        self._last_receipt: Optional[CommitReceipt] = None
        self._wal = None
        self._closed = False
        self._poisoned = False
        self._recovery: Optional[RecoveryReport] = None

    # ------------------------------------------------------------------
    # Session construction
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        graph: Union[DynamicGraph, Iterable[Edge], None] = None,
        *,
        engine: str = DEFAULT_ENGINE,
        seed: Optional[int] = 0,
        log=None,
        fsync: str = "always",
        fsync_every: Optional[int] = None,
        **opts,
    ) -> "CoreService":
        """Open a service over ``graph`` with a registry-named engine.

        ``graph`` may be a :class:`~repro.graphs.undirected.DynamicGraph`
        (adopted as-is), any iterable of edges, or ``None`` for an empty
        graph.  ``engine`` is any :func:`~repro.engine.registry.make_engine`
        name (``"order"``, ``"order-treap"``, ``"order-sharded"``,
        ``"trav-<h>"``, ``"naive"``, …); extra options go to the engine
        factory, which rejects names it does not understand.

        With ``log=path`` the session is durable: a fresh write-ahead
        commit log (:mod:`repro.service.wal`) is created at ``path`` —
        never silently reused; recover from an existing log with
        :meth:`recover` — and every commit is appended (and, per the
        ``fsync`` policy ``"always"`` / ``"interval"`` / ``"never"``,
        fsynced) *before* the engine applies it.  A non-empty starting
        graph is immediately checkpointed (:meth:`compact`) so recovery
        has a base snapshot; that requires an order-family engine.

        >>> CoreService.open([(0, 1)], engine="naive").engine_name
        'naive'
        >>> CoreService.open().graph.n        # empty session
        0
        """
        if graph is None:
            graph = DynamicGraph()
        elif not isinstance(graph, DynamicGraph):
            graph = DynamicGraph(graph)
        service = cls(make_engine(engine, graph, seed=seed, **opts))
        if log is not None:
            from repro.service.wal import DEFAULT_FSYNC_EVERY, WriteAheadLog

            service._wal = WriteAheadLog.create(
                Path(log),
                engine=engine,
                seed=seed,
                opts=opts,
                fsync=fsync,
                fsync_every=fsync_every or DEFAULT_FSYNC_EVERY,
            )
            if graph.n:
                # The log only replays commits; a non-empty base state
                # must come from a snapshot, taken right now.
                try:
                    service.compact()
                except ServiceError:
                    service._wal.close()
                    service._wal.path.unlink()
                    service._wal = None
                    raise
        return service

    @classmethod
    def load(cls, path, *, audit: bool = True) -> "CoreService":
        """Restore a service from a :meth:`save` checkpoint.

        The maintained index (graph, k-order, ``deg+``, ``mcd``) is
        rebuilt without recomputation and its invariants are audited
        (disable with ``audit=False``); see :mod:`repro.core.snapshot`.
        Subscriptions are runtime state, not part of the checkpoint —
        re-subscribe on the restored service and events flow from its
        first commit.
        """
        from repro.core.snapshot import load_snapshot

        return cls(load_snapshot(path, audit=audit))

    @classmethod
    def recover(
        cls,
        log,
        *,
        fsync: str = "always",
        fsync_every: Optional[int] = None,
        audit: bool = True,
    ) -> "CoreService":
        """Rebuild a durable session from its commit log after a crash.

        The latest compaction snapshot (if any) seeds the engine; every
        log record it does not already cover is replayed, in receipt
        order, through the engine's batch pipeline.  Replay is
        **idempotent**: records at or below the snapshot's receipt id
        are skipped, so recovering twice — or recovering a log whose
        compaction crashed between the snapshot rename and the log
        truncation — lands the same state as recovering once.  A torn
        tail record (crash mid-append) is truncated away; corruption
        beyond that raises :class:`~repro.errors.LogCorruptionError`.

        The returned service is live and attached to the (repaired) log:
        its receipt ids continue after the last logged commit, and new
        commits append under the given ``fsync`` policy.  What happened
        is reported in :attr:`recovery`.
        """
        from repro.core.snapshot import from_snapshot
        from repro.service.wal import (
            DEFAULT_FSYNC_EVERY,
            WriteAheadLog,
            batch_from_ops,
            scan,
        )

        log = Path(log)
        info = scan(log)
        header = info.header
        snap_path = _snapshot_path(log)
        base = 0
        from_snap = snap_path.exists()
        if from_snap:
            raw = json.loads(snap_path.read_text())
            base = raw.get("receipt", 0)
            engine = from_snapshot(raw, audit=audit)
        else:
            if header.get("base_receipt", 0) or header.get("snapshot"):
                raise LogCorruptionError(
                    f"commit log {str(log)!r} continues from a compaction "
                    f"snapshot (receipt {header.get('base_receipt', 0)}) "
                    f"but {str(snap_path)!r} is missing"
                )
            engine = make_engine(
                header["engine"],
                DynamicGraph(),
                seed=header.get("seed", 0),
                **header.get("opts", {}),
            )
        service = cls(engine)
        replayed = skipped = 0
        for receipt_id, ops in info.records:
            if receipt_id <= base:
                skipped += 1  # already in the snapshot: replay is a no-op
                continue
            try:
                engine.apply_batch(batch_from_ops(ops))
            except ReproError as exc:
                raise LogCorruptionError(
                    f"commit log {str(log)!r} record {receipt_id} does "
                    f"not apply to the recovered state: {exc}"
                ) from exc
            replayed += 1
        service._next_receipt = max(info.last_receipt, base) + 1
        service._wal = WriteAheadLog.attach(
            log,
            fsync=fsync,
            fsync_every=fsync_every or DEFAULT_FSYNC_EVERY,
        )
        service._recovery = RecoveryReport(
            replayed=replayed,
            skipped=skipped,
            torn_bytes=info.torn_bytes,
            from_snapshot=from_snap,
        )
        return service

    def save(self, path) -> None:
        """Checkpoint the maintained index as JSON at ``path``.

        Only the order-family engines (``order``, ``order-simplified``
        and their aliases) maintain a serializable index; other engines
        raise :class:`~repro.errors.ServiceError` (rebuild them from the
        edge list instead).
        """
        from repro.core.maintainer import OrderedCoreMaintainer
        from repro.core.simplified import SimplifiedCoreMaintainer
        from repro.core.snapshot import save_snapshot

        if not isinstance(
            self._engine, (OrderedCoreMaintainer, SimplifiedCoreMaintainer)
        ):
            raise ServiceError(
                f"engine {self._engine.name!r} has no snapshot support; "
                "only the order-family engines' index can be checkpointed"
            )
        save_snapshot(self._engine, path)

    def compact(self) -> Path:
        """Fold the commit log into a snapshot and truncate it.

        Writes the current index as the session's snapshot (atomically:
        temp file, fsync, rename) stamped with the last issued receipt
        id, then rotates the log down to a fresh header whose
        ``base_receipt`` records what the snapshot covers.  A crash
        between the two steps is safe: recovery skips log records the
        snapshot already contains.  Requires a logged session and an
        order-family engine (the ones with snapshot support); returns
        the snapshot path.
        """
        from repro.core.maintainer import OrderedCoreMaintainer
        from repro.core.simplified import SimplifiedCoreMaintainer
        from repro.core.snapshot import to_snapshot, write_json_atomic

        self._require_open()
        if self._poisoned:
            raise ServiceError(
                "engine was poisoned by a mid-commit failure; refusing to "
                "snapshot a possibly half-mutated index — recover from "
                "the log instead"
            )
        if self._wal is None:
            raise ServiceError(
                "service has no commit log to compact; open the session "
                "with log=... or CoreService.recover"
            )
        if not isinstance(
            self._engine, (OrderedCoreMaintainer, SimplifiedCoreMaintainer)
        ):
            raise ServiceError(
                f"engine {self._engine.name!r} has no snapshot support, so "
                "its log cannot be compacted (and a logged session over a "
                "non-empty graph cannot be opened): recovery would have no "
                "base snapshot to replay onto"
            )
        receipt = self._next_receipt - 1
        snapshot = to_snapshot(self._engine)
        snapshot["receipt"] = receipt
        path = _snapshot_path(self._wal.path)
        write_json_atomic(snapshot, path)
        self._wal.rotate(receipt)
        return path

    def close(self) -> None:
        """End the session: flush and close the log, release the engine.

        Idempotent.  Reads keep working on the final state; any further
        commit (or :meth:`compact`) raises
        :class:`~repro.errors.ServiceError`.  Engines with their own
        resources (the sharded engine's worker pool) are closed too.
        """
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()
        engine_close = getattr(self._engine, "close", None)
        if callable(engine_close):
            engine_close()

    def __enter__(self) -> "CoreService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError(
                "service is closed; reads still answer, but commits and "
                "compaction need a live session"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def engine(self) -> CoreMaintainer:
        """The underlying engine.

        The escape hatch for per-edge measurement and analysis helpers
        that consume a :class:`~repro.engine.base.CoreMaintainer`; treat
        it as read-only — updates applied behind the service's back are
        invisible to subscribers.
        """
        return self._engine

    @property
    def engine_name(self) -> str:
        """Registry-style name of the underlying engine."""
        return self._engine.name

    @property
    def graph(self) -> DynamicGraph:
        """The served graph (read-only; mutate through transactions)."""
        return self._engine.graph

    @property
    def last_receipt(self) -> Optional[CommitReceipt]:
        """Receipt of the most recent commit (``None`` before the first)."""
        return self._last_receipt

    @property
    def log_path(self) -> Optional[Path]:
        """Path of the attached commit log (``None`` when unlogged)."""
        return self._wal.path if self._wal is not None else None

    @property
    def recovery(self) -> Optional[RecoveryReport]:
        """How this session was recovered (``None`` unless built by
        :meth:`recover`)."""
        return self._recovery

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has ended the session."""
        return self._closed

    @property
    def poisoned(self) -> bool:
        """Whether a mid-commit engine failure invalidated the session.

        A poisoned session still answers reads (from the possibly
        half-mutated in-memory state — callers wanting last-*good* state
        must keep their own, as the serving front's degraded mode does)
        but refuses every further commit.  On a logged session,
        :meth:`recover` builds a clean replacement from the log.
        """
        return self._poisoned

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = self.graph
        return (
            f"CoreService(engine={self._engine.name!r}, "
            f"n={g.n}, m={g.m}, subscribers={len(self._subscribers)})"
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def transaction(self) -> Transaction:
        """Start a transaction; commit happens when its context exits."""
        self._require_open()
        return Transaction(self)

    def apply(
        self, batch: Batch, *, token: Optional[str] = None
    ) -> CommitReceipt:
        """Commit a prebuilt :class:`~repro.engine.batch.Batch`.

        ``token`` is an optional client-supplied idempotency key: on a
        logged session it is recorded in the commit's write-ahead record,
        so after a crash a retrying caller (the async serving front) can
        tell from the log whether this exact commit already landed
        instead of applying it twice.  The service itself does not
        deduplicate — the token is durable bookkeeping for supervisors.
        """
        return self._commit(batch, token=token)

    def insert(self, u: Vertex, v: Vertex) -> CommitReceipt:
        """One-op sugar: commit a single edge insertion."""
        return self._commit(Batch().insert(u, v))

    def remove(self, u: Vertex, v: Vertex) -> CommitReceipt:
        """One-op sugar: commit a single edge removal."""
        return self._commit(Batch().remove(u, v))

    def _commit(
        self, batch: Batch, *, token: Optional[str] = None
    ) -> CommitReceipt:
        """Apply ``batch``, mint a receipt, notify subscribers.

        The batch is validated against the current graph *first*
        (:meth:`~repro.engine.batch.Batch.check_applicable`), so an
        invalid op — inserting a present edge, removing an absent one —
        raises :class:`~repro.errors.BatchError` before the engine
        mutates anything and the commit stays atomic.  Only an
        engine-internal failure can still land a partial batch; engines
        document those as bugs, not service states — when one happens
        anyway (or a fault plan simulates one), the session is marked
        :attr:`poisoned` and refuses further commits: the in-memory
        index is no longer trustworthy, and on a logged session
        :meth:`recover` rebuilds a clean one from the log.

        On a logged session the batch is appended to the write-ahead
        log *before* the engine applies it (write-ahead ordering): a
        crash between the two leaves a logged-but-unapplied record,
        which :meth:`recover` replays onto the last snapshot — never a
        committed-but-unlogged change.
        """
        self._require_open()
        if self._poisoned:
            raise ServiceError(
                "engine was poisoned by a mid-commit failure; reads still "
                "answer from the last in-memory state, but commits need a "
                "fresh session (CoreService.recover on a logged session)"
            )
        batch.check_applicable(self._engine.graph)
        inject("service.before_commit")
        receipt_id = self._next_receipt
        self._next_receipt += 1
        if self._wal is not None:
            self._wal.append(receipt_id, batch, token=token)
        try:
            result = self._engine.apply_batch(batch)
        except BaseException:
            # The engine raised mid-apply: its index may be half-mutated
            # (validation already passed, so this is an engine-internal
            # failure or an injected crash).  Poison the session so no
            # later commit builds on a corrupt in-memory state.
            self._poisoned = True
            raise
        deltas = result.changed
        core = self._engine.core
        receipt = CommitReceipt(
            receipt_id=receipt_id,
            result=result,
            deltas=deltas,
            # Capture the changed vertices' post-commit cores now, so
            # the receipt's (lazily built) events stay correct however
            # the graph evolves after this commit.
            new_cores={v: core.get(v, 0) for v in deltas},
        )
        self._last_receipt = receipt
        if self._subscribers and deltas:
            events = receipt.events
            # Snapshot the list: callbacks may close their own (or any)
            # subscription mid-dispatch.
            for subscription in list(self._subscribers):
                subscription._deliver(events)
        return receipt

    # ------------------------------------------------------------------
    # Reads (backed by analysis.kcore_views)
    # ------------------------------------------------------------------

    def core(self, vertex: Vertex, default=_MISSING) -> int:
        """Core number of one vertex.

        Raises ``KeyError`` for a vertex the service has never seen,
        unless ``default`` is given.
        """
        c = self._engine.core.get(vertex, _MISSING)
        if c is _MISSING:
            if default is _MISSING:
                raise KeyError(vertex)
            return default
        return c

    def cores(self) -> dict[Vertex, int]:
        """A snapshot copy of every vertex's core number."""
        return dict(self._engine.core)

    def kcore(self, k: int) -> kcore_views.KCoreView:
        """A lazy, live membership view of the ``k``-core.

        O(1) membership tests, on-demand iteration, and it always
        answers for the *current* graph — no copy is taken.  Call
        ``.vertices()`` to pin a set or ``.subgraph()`` for the induced
        graph.
        """
        return kcore_views.KCoreView(self._engine.core, k, self.graph)

    def degeneracy(self) -> int:
        """The largest ``k`` with a non-empty ``k``-core."""
        return kcore_views.degeneracy(self._engine.core)

    def top(self, n: int) -> list[tuple[Vertex, int]]:
        """The ``n`` vertices with the highest core numbers (descending)."""
        return kcore_views.top_cores(self._engine.core, n)

    def spectrum(self) -> dict[int, int]:
        """Map ``k -> |k-shell|`` for every non-empty shell.

        >>> CoreService.open([(0, 1), (1, 2), (2, 0), (2, 3)]).spectrum()
        {1: 1, 2: 3}
        """
        return kcore_views.core_spectrum(self._engine.core)

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------

    def subscribe(
        self,
        callback: Optional[EventCallback] = None,
        *,
        min_k: Optional[int] = None,
        max_pending: Optional[int] = None,
        overflow: str = "block",
    ) -> Subscription:
        """Deliver every future commit's core events to ``callback``.

        ``callback(event)`` runs synchronously during commit, once per
        changed vertex, after the engine's state is fully consistent —
        reading the service from inside a callback sees the post-commit
        world.  With ``min_k``, only events touching the cores at or
        above that level arrive (``max(old, new) >= min_k``).  Close the
        returned :class:`~repro.service.events.Subscription` (or use it
        as a context manager) to stop.  A callback that raises aborts
        the remaining dispatch and propagates out of the commit; the
        commit itself is already applied.

        A slow callback slows every commit, so subscriptions can be
        *bounded* instead: with ``max_pending=N`` events are buffered on
        the subscription (consume them with
        :meth:`~repro.service.events.Subscription.drain` or
        :meth:`~repro.service.events.Subscription.take`) and the
        ``overflow`` policy — ``"block"`` (commit path flushes the
        backlog), ``"drop_oldest"`` (discard + count) or ``"error"`` —
        decides what a full buffer does.  ``callback=None`` makes a
        pure pull-mode subscription (requires ``max_pending`` and a
        non-``block`` policy).

        >>> svc = CoreService.open([(0, 1), (1, 2), (2, 0)])
        >>> sub = svc.subscribe(
        ...     lambda e: print(e.vertex, e.old_core, "->", e.new_core)
        ... )
        >>> receipt = svc.insert(0, 3)
        3 0 -> 1
        >>> sub.close()
        >>> receipt = svc.insert(1, 3)   # closed: nothing printed
        """
        subscription = Subscription(
            self, callback, min_k, max_pending=max_pending, overflow=overflow
        )
        self._subscribers.append(subscription)
        return subscription

    @property
    def subscriber_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subscribers)

    def _unsubscribe(self, subscription: Subscription) -> None:
        try:
            self._subscribers.remove(subscription)
        except ValueError:  # already removed; close() is idempotent
            pass

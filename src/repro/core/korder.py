"""The maintained k-order index (Section VI of the paper).

A :class:`KOrder` is the concatenation ``O_0 O_1 O_2 ...`` of per-core
blocks.  Each block is a :class:`~repro.structures.sequence.SequenceIndex`
(the paper's ``A_k``) under one of two backends selected at construction:

* ``sequence="om"`` (default) — a
  :class:`~repro.structures.sequence.TaggedOrderList`: Dietz–Sleator
  integer labels make within-block order tests ``O(1)``;
* ``sequence="treap"`` — the original
  :class:`~repro.structures.treap.OrderStatisticTreap`: ``O(log |O_k|)``
  rank walks, kept as the reference backend.

Cross-block tests are a core-number comparison either way.  All blocks of
one index share a single :class:`~repro.structures.sequence.SequenceStats`
(``korder.stats``), so ``order_queries`` / ``relabels`` /
``rank_walk_steps`` survive blocks being created and dropped.  The
structure also owns ``deg+`` (Definition 5.2): for every vertex, the
number of its neighbors appearing *after* it in the global order.

Invariant (Lemma 5.1): the order is a valid k-order iff for every ``k`` and
every ``v`` in ``O_k``, ``deg+(v) <= k``.  :meth:`KOrder.audit` verifies
this, plus the consistency of ``deg+`` itself, and is wired into the
engines' ``audit`` mode used heavily by the tests.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Iterator, Optional

from repro.core.decomposition import KOrderDecomposition
from repro.errors import InvariantViolationError
from repro.graphs.undirected import DynamicGraph
from repro.structures.sequence import (
    SequenceIndex,
    SequenceStats,
    TaggedOrderList,
)
from repro.structures.treap import OrderStatisticTreap

Vertex = Hashable

#: Recognized block backends.
SEQUENCE_BACKENDS = ("om", "treap")

#: Backend used when none is requested.
DEFAULT_SEQUENCE = "om"


class KOrder:
    """Per-core-number blocks of vertices in maintained k-order."""

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        sequence: str = DEFAULT_SEQUENCE,
    ) -> None:
        if sequence not in SEQUENCE_BACKENDS:
            raise ValueError(
                f"unknown sequence backend {sequence!r}; "
                f"choose from {', '.join(SEQUENCE_BACKENDS)}"
            )
        self._rng = rng if rng is not None else random.Random()
        self.sequence = sequence
        #: Shared operation counters across all blocks, past and present.
        self.stats = SequenceStats()
        self._blocks: dict[int, SequenceIndex] = {}
        self._k_of: dict[Vertex, int] = {}
        #: ``deg+``: neighbors after the vertex in the global order.
        self.deg_plus: dict[Vertex, int] = {}

    @classmethod
    def from_decomposition(
        cls,
        decomposition: KOrderDecomposition,
        rng: Optional[random.Random] = None,
        sequence: str = DEFAULT_SEQUENCE,
    ) -> "KOrder":
        """Build the index from a static decomposition's order."""
        ko = cls(rng, sequence=sequence)
        for vertex in decomposition.order:
            ko.append(decomposition.core[vertex], vertex)
        ko.deg_plus.update(decomposition.deg_plus)
        return ko

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._k_of)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._k_of

    def k_of(self, vertex: Vertex) -> int:
        """The block (core number) the vertex currently lives in."""
        return self._k_of[vertex]

    def block(self, k: int) -> SequenceIndex:
        """The sequence of block ``O_k``, created on first access."""
        seq = self._blocks.get(k)
        if seq is None:
            seq = self._blocks[k] = self._new_block()
        return seq

    def _new_block(self) -> SequenceIndex:
        if self.sequence == "treap":
            return OrderStatisticTreap(rng=self._rng, stats=self.stats)
        return TaggedOrderList(stats=self.stats)

    def block_sizes(self) -> dict[int, int]:
        """Map ``k -> |O_k|`` over non-empty blocks."""
        return {k: len(t) for k, t in self._blocks.items() if len(t)}

    def precedes(self, u: Vertex, v: Vertex) -> bool:
        """Global order test ``u ≼ v`` (strict)."""
        ku, kv = self._k_of[u], self._k_of[v]
        if ku != kv:
            return ku < kv
        return self._blocks[ku].precedes(u, v)

    def rank_in_block(self, vertex: Vertex) -> int:
        """0-based position of the vertex inside its block."""
        return self._blocks[self._k_of[vertex]].rank(vertex)

    def iter_block(self, k: int) -> Iterator[Vertex]:
        """Left-to-right iteration over block ``O_k`` (empty if absent)."""
        treap = self._blocks.get(k)
        return iter(treap) if treap is not None else iter(())

    def order(self) -> list[Vertex]:
        """The full k-order as a list (``O_0 O_1 O_2 ...``)."""
        out: list[Vertex] = []
        for k in sorted(self._blocks):
            out.extend(self._blocks[k])
        return out

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append(self, k: int, vertex: Vertex) -> None:
        """Append ``vertex`` at the end of block ``O_k``."""
        self.block(k).insert_back(vertex)
        self._k_of[vertex] = k

    def prepend_chain(self, k: int, vertices: Iterable[Vertex]) -> None:
        """Insert ``vertices`` at the *front* of ``O_k``, preserving their
        given relative order — the ``OrderInsert`` ending-phase move.

        Materialized once so one-shot iterables work, then handed to the
        block as a whole chain (the OM backend preallocates a label gap
        sized to it instead of bisecting per vertex)."""
        chain = list(vertices)
        treap = self.block(k)
        treap.extend_front(chain)
        for vertex in chain:
            self._k_of[vertex] = k

    def remove(self, vertex: Vertex) -> None:
        """Remove ``vertex`` from its block (``deg+`` entry kept)."""
        k = self._k_of.pop(vertex)
        treap = self._blocks[k]
        treap.remove(vertex)
        if not treap:
            del self._blocks[k]

    def forget(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and drop its ``deg+`` (vertex left the graph)."""
        self.remove(vertex)
        self.deg_plus.pop(vertex, None)

    def move_after(self, anchor: Vertex, vertex: Vertex) -> None:
        """Reposition ``vertex`` immediately after ``anchor`` in the same
        block — the Observation 6.1 adjustment for evicted candidates."""
        k = self._k_of[vertex]
        if self._k_of[anchor] != k:
            raise InvariantViolationError(
                f"move_after across blocks: {anchor!r} in O_{self._k_of[anchor]}, "
                f"{vertex!r} in O_{k}"
            )
        self._blocks[k].move_after(anchor, vertex)

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def audit(self, graph: DynamicGraph, core: dict[Vertex, int]) -> None:
        """Verify the full index against the graph.

        Checks, raising :class:`InvariantViolationError` on failure:

        * every graph vertex is indexed exactly once, in block ``core(v)``;
        * ``deg+(v)`` equals the number of neighbors after ``v``;
        * Lemma 5.1: ``deg+(v) <= k`` for every ``v`` in ``O_k``.
        """
        if len(self._k_of) != graph.n:
            raise InvariantViolationError(
                f"index holds {len(self._k_of)} vertices, graph has {graph.n}"
            )
        position: dict[Vertex, int] = {}
        offset = 0
        for k in sorted(self._blocks):
            treap = self._blocks[k]
            for i, vertex in enumerate(treap):
                position[vertex] = offset + i
                if core[vertex] != k:
                    raise InvariantViolationError(
                        f"{vertex!r} in block O_{k} but core={core[vertex]}"
                    )
            offset += len(treap)
        for vertex in graph.vertices():
            if vertex not in position:
                raise InvariantViolationError(f"{vertex!r} missing from k-order")
            later = sum(
                1 for w in graph.adj[vertex] if position[w] > position[vertex]
            )
            if self.deg_plus.get(vertex) != later:
                raise InvariantViolationError(
                    f"deg+({vertex!r}) = {self.deg_plus.get(vertex)} "
                    f"but {later} neighbors follow it"
                )
            if later > self._k_of[vertex]:
                raise InvariantViolationError(
                    f"Lemma 5.1 violated at {vertex!r}: deg+ {later} > "
                    f"k {self._k_of[vertex]}"
                )

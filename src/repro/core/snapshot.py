"""Checkpoint / restore for the order-based index.

Table III of the paper measures index *creation* as the one-time cost of
adopting core maintenance.  A long-lived service can avoid paying it on
every restart by snapshotting the maintained state — the graph, the
k-order, ``deg+`` and ``mcd`` — and restoring it without recomputation.

Both order-family engines checkpoint here: the default
:class:`~repro.core.maintainer.OrderedCoreMaintainer` and the
:class:`~repro.core.simplified.SimplifiedCoreMaintainer`.  They share
the layout — the simplified engine's ``d_in`` is stored through the
``mcd`` array (its :attr:`~repro.core.simplified.SimplifiedCoreMaintainer.mcd`
property derives ``d_in + d_out`` on demand) and recovered on restore as
``mcd - deg_plus``, so either engine can be rebuilt from the same
fields.  The ``engine`` field records which class to rebuild; snapshots
written before it exists restore as the default engine.

The snapshot is a plain JSON-serializable dict (versioned), so it can go
to disk, a blob store, or over the wire.  Restoring validates the
invariants (Lemma 5.1 audit plus an ``mcd`` check) before handing back a
live maintainer, so a corrupted or hand-edited snapshot fails loudly
rather than silently corrupting future updates.

Vertices must be JSON-representable for file round-trips; integer and
string vertices are preserved exactly (JSON object keys are strings, so
integer vertices are re-keyed through the order list, which keeps native
types).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.core.maintainer import OrderedCoreMaintainer
from repro.core.simplified import SimplifiedCoreMaintainer
from repro.errors import StaleIndexError
from repro.graphs.undirected import DynamicGraph
from repro.testing.faults import inject

PathLike = Union[str, Path]

#: Engines with snapshot support (both restore through the same layout).
OrderEngine = Union[OrderedCoreMaintainer, SimplifiedCoreMaintainer]

#: Snapshot schema version; bump on layout changes.
SNAPSHOT_VERSION = 1


def to_snapshot(maintainer: OrderEngine) -> dict:
    """Serialize a maintainer's full state to a JSON-friendly dict.

    The k-order is stored as one global vertex list plus per-vertex
    ``core`` / ``deg+`` / ``mcd`` arrays aligned with it, which keeps
    vertex objects out of JSON object keys (preserving their types).
    """
    order = maintainer.order()
    korder = maintainer.korder
    return {
        "version": SNAPSHOT_VERSION,
        "engine": maintainer.name,
        "sequence": korder.sequence,
        "order": order,
        "core": [maintainer.core[v] for v in order],
        "deg_plus": [korder.deg_plus[v] for v in order],
        "mcd": [maintainer.mcd[v] for v in order],
        "edges": sorted(
            [sorted((u, v), key=repr) for u, v in maintainer.graph.edges()],
            key=repr,
        ),
    }


def from_snapshot(snapshot: dict, audit: bool = True) -> OrderEngine:
    """Rebuild a live maintainer from :func:`to_snapshot` output.

    Raises :class:`StaleIndexError` when the snapshot is malformed or its
    invariants do not hold for the stored graph.
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise StaleIndexError(
            f"snapshot field 'version' is {snapshot.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    try:
        order = snapshot["order"]
        cores = snapshot["core"]
        deg_plus = snapshot["deg_plus"]
        mcd = snapshot["mcd"]
        edges = [tuple(e) for e in snapshot["edges"]]
    except KeyError as exc:
        raise StaleIndexError(f"snapshot missing field {exc}") from exc
    if not (len(order) == len(cores) == len(deg_plus) == len(mcd)):
        raise StaleIndexError(
            "snapshot per-vertex fields have inconsistent lengths: "
            f"order={len(order)}, core={len(cores)}, "
            f"deg_plus={len(deg_plus)}, mcd={len(mcd)}"
        )

    graph = DynamicGraph(edges, vertices=order)
    # Rebuild state without triggering a fresh decomposition.
    from repro.core.korder import DEFAULT_SEQUENCE

    # Pre-backend snapshots carry no "sequence" field; restore those on
    # the current default (backend choice never affects semantics).
    sequence = snapshot.get("sequence", DEFAULT_SEQUENCE)
    # Likewise pre-"engine" snapshots restore as the default engine.
    engine = snapshot.get("engine", "order")
    try:
        if engine == "order":
            maintainer = OrderedCoreMaintainer.from_index_state(
                graph,
                order,
                dict(zip(order, cores)),
                dict(zip(order, deg_plus)),
                dict(zip(order, mcd)),
                sequence=sequence,
                seed=0,
            )
        elif engine == "order-simplified":
            maintainer = SimplifiedCoreMaintainer.from_index_state(
                graph,
                order,
                dict(zip(order, cores)),
                dict(zip(order, deg_plus)),
                # d_in + d_out = mcd, and deg_plus *is* d_out.
                {v: m - d for v, m, d in zip(order, mcd, deg_plus)},
                sequence=sequence,
                seed=0,
            )
        else:
            raise StaleIndexError(
                f"snapshot field 'engine' names unknown engine {engine!r}; "
                "this build restores: order, order-simplified"
            )
    except ValueError as exc:
        raise StaleIndexError(str(exc)) from exc
    if audit:
        try:
            maintainer.check()
        except AssertionError as exc:
            raise StaleIndexError(f"snapshot fails invariants: {exc}") from exc
    return maintainer


def write_json_atomic(payload: dict, path: PathLike) -> None:
    """Write ``payload`` as JSON via write-temp-then-rename.

    The target file is never observable half-written: a crash anywhere
    before the final rename leaves the previous snapshot (or nothing)
    in place, plus a stray ``*.tmp``.  The payload is written in two
    halves around the ``snapshot.mid_write`` crash point so the fault
    matrix can kill a snapshot mid-write and prove exactly that.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    data = json.dumps(payload).encode()
    with open(tmp, "wb") as fh:
        fh.write(data[: len(data) // 2])
        fh.flush()
        inject("snapshot.mid_write")
        fh.write(data[len(data) // 2:])
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def save_snapshot(maintainer: OrderEngine, path: PathLike) -> None:
    """Write :func:`to_snapshot` output as JSON (atomically)."""
    write_json_atomic(to_snapshot(maintainer), path)


def load_snapshot(path: PathLike, audit: bool = True) -> OrderEngine:
    """Read a JSON snapshot back into a live maintainer."""
    return from_snapshot(json.loads(Path(path).read_text()), audit=audit)

"""``OrderInsert`` — Algorithms 2 and 3 of the paper.

When edge ``(u, v)`` is inserted with ``u ≼ v`` and ``K = core(u)``, only
vertices of ``O_K`` *after* ``u`` can enter ``V*`` (Lemmas 5.2/5.3), and
only those reachable from ``u`` through forward edges (i4).  The scan walks
``O_K`` left to right but **jumps** directly between interesting vertices
using the min-heap ``B`` keyed by block order, so Case-2a ranges (vertices
with ``deg* = 0``) are skipped wholesale without being touched.

Per visited vertex ``w`` the scan compares ``deg*(w) + deg+(w)`` to ``K``:

* Case-1 (``> K``): ``w`` is a candidate — goes to ``VC`` and grants one
  ``deg*`` unit to each core-``K`` neighbor after it.
* Case-2b (``<= K``, ``deg* > 0``): ``w`` settles in place, absorbing
  ``deg*`` into ``deg+``; :func:`_remove_candidates` (Algorithm 3) then
  cascades the loss through ``VC``, and every evicted candidate is
  re-appended *after* the settled cursor (Observation 6.1 repositioning).

At termination ``V* = VC``; its members move, order preserved, to the front
of ``O_{K+1}``, and their maintained ``deg+`` values are already correct for
the new order (see the paper's rationale at the end of Section V-B).

Implementation notes
--------------------
* All order tests go through ``block.order_key`` tokens, never ``rank``:
  with the OM-list backend a token compares in O(1) (live label lookup),
  with the treap backend it is the frozen rank at grant time.  Both are
  safe for the same reason: every comparison the scan makes crosses the
  cursor (heap members and ``deg*`` recipients sit *after* it, settled
  and untouched vertices *before* it), and Observation 6.1 repositioning
  only moves evicted candidates to just behind the cursor, so relative
  positions across the cursor — and hence token comparisons — never
  change while the scan can still observe them.
* The Algorithm 3 order test ``w' ≼ w''`` between two candidates must use
  their *original* positions (the evictee may already have been
  repositioned).  Candidates are visited in original block order, so the
  visit sequence number recorded at visit time is an exact O(1) proxy
  for the original rank under either backend.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.korder import KOrder
from repro.graphs.undirected import DynamicGraph
from repro.structures.heaps import LazyMinHeap
from repro.structures.sequence import SequenceIndex

Vertex = Hashable

_VC = 1  # currently a candidate for V*
_SETTLED = 2  # definitively not in V*


def order_insert(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    u: Vertex,
    v: Vertex,
) -> tuple[list[Vertex], int, int, int]:
    """Insert ``(u, v)`` into ``graph`` and repair ``core`` and ``korder``.

    Returns ``(v_star, K, visited, evicted)`` where ``v_star`` lists the
    vertices whose core number rose by 1 (in k-order), ``K`` is the update
    level, ``visited`` is ``|V+|`` — the number of vertices the scan
    processed — and ``evicted`` counts candidates disproven by the
    Algorithm 3 cascade.

    The caller (the maintainer) is responsible for ``mcd`` upkeep.
    """
    graph.add_edge(u, v)

    # Preparing phase: orient the edge so that u ≼ v, bump deg+(u).
    if core[u] > core[v] or (core[u] == core[v] and korder.precedes(v, u)):
        u, v = v, u
    K = core[u]
    korder.deg_plus[u] += 1
    if korder.deg_plus[u] <= K:
        # O_K is still a valid k-order; no core number changes (Lemma 5.2).
        return [], K, 0, 0

    block = korder.block(K)
    deg_plus = korder.deg_plus

    heap = LazyMinHeap()
    heap.push(block.order_key(u), u)

    deg_star: dict[Vertex, int] = {}
    status: dict[Vertex, int] = {}
    visit_seq: dict[Vertex, int] = {}  # candidate -> visit (= original) order
    vc_order: list[Vertex] = []  # candidates in visit (= original) order
    visited = 0

    # Core phase: process interesting vertices in original O_K order.
    while True:
        item = heap.pop()
        if item is None:
            break
        key_v, vtx = item
        visited += 1
        if deg_star.get(vtx, 0) + deg_plus[vtx] > K:
            # Case-1: vtx may reach core K+1.
            status[vtx] = _VC
            visit_seq[vtx] = visited
            vc_order.append(vtx)
            for w in graph.adj[vtx]:
                # Every core-K vertex is still physically in the O_K block
                # during the scan, so membership tests core(w) == K exactly.
                if w in block and w not in status:
                    key_w = block.order_key(w)
                    if key_w > key_v:
                        new_star = deg_star.get(w, 0) + 1
                        deg_star[w] = new_star
                        if new_star == 1:
                            heap.push(key_w, w)
        else:
            # Case-2b: vtx settles in place with deg+ absorbing deg*.
            deg_plus[vtx] += deg_star.pop(vtx, 0)
            status[vtx] = _SETTLED
            _remove_candidates(
                graph, block, deg_plus, deg_star, status, visit_seq,
                heap, vtx, key_v, K,
            )

    # Ending phase: VC is exactly V*.
    v_star = [w for w in vc_order if status[w] == _VC]
    evicted = len(vc_order) - len(v_star)
    if v_star:
        for w in v_star:
            core[w] = K + 1
            korder.remove(w)
        korder.prepend_chain(K + 1, v_star)
    return v_star, K, visited, evicted


def _remove_candidates(
    graph: DynamicGraph,
    block: SequenceIndex,
    deg_plus: dict[Vertex, int],
    deg_star: dict[Vertex, int],
    status: dict[Vertex, int],
    visit_seq: dict[Vertex, int],
    heap: LazyMinHeap,
    settled: Vertex,
    key_cursor,
    K: int,
) -> None:
    """Algorithm 3: cascade candidate evictions after ``settled`` settled.

    ``settled`` just left the candidate pool's reach (it stays at core K),
    so each candidate neighbor loses one unit of ``deg+``; any candidate
    dropping to ``deg* + deg+ <= K`` is evicted, settles right after the
    cursor (keeping O'_K consistent), and propagates further losses.

    ``key_cursor`` is the cursor's order token (``settled``'s heap key):
    unvisited vertices still compare after it, untouched skipped ranges
    before it, under either sequence backend.
    """
    queue: deque[Vertex] = deque()
    queued: set[Vertex] = set()

    for w in graph.adj[settled]:
        if status.get(w) == _VC:
            deg_plus[w] -= 1
            if deg_star.get(w, 0) + deg_plus[w] <= K and w not in queued:
                queue.append(w)
                queued.add(w)

    anchor = settled
    while queue:
        w1 = queue.popleft()
        # Evict w1: absorb deg*, settle immediately after the anchor.
        # move_after (not remove+reinsert) so any stale heap entry still
        # keying on w1 keeps comparing by live position.
        deg_plus[w1] += deg_star.pop(w1, 0)
        status[w1] = _SETTLED
        block.move_after(anchor, w1)
        anchor = w1
        seq_w1 = visit_seq[w1]
        for w2 in graph.adj[w1]:
            if core_k_mismatch(block, w2):
                continue
            st = status.get(w2)
            if st is None:
                # Unvisited vertices sit after the cursor; untouched skipped
                # ranges sit before it and are unaffected.
                if block.order_key(w2) > key_cursor:
                    new_star = deg_star[w2] - 1
                    deg_star[w2] = new_star
                    if new_star == 0:
                        heap.discard(w2)
            elif st == _VC:
                if seq_w1 < visit_seq[w2]:
                    deg_star[w2] -= 1
                else:
                    deg_plus[w2] -= 1
                if (
                    deg_star.get(w2, 0) + deg_plus[w2] <= K
                    and w2 not in queued
                ):
                    queue.append(w2)
                    queued.add(w2)
            # settled neighbors need no adjustment


def core_k_mismatch(block: SequenceIndex, vertex: Vertex) -> bool:
    """Whether ``vertex`` is outside the block under maintenance.

    During the scan every core-``K`` vertex — untouched, candidate or
    settled — is physically present in the ``O_K`` block, so membership is
    the cheapest exact test for ``core(w) == K``.
    """
    return vertex not in block

"""Ablation variant of ``OrderInsert``: sequential scan instead of jumps.

The paper's Case-2a handling ("jump" to the next vertex with
``deg* > 0`` via the min-heap ``B``, Algorithm 2 line 15) is the part of
the design that turns a potentially ``O(|O_K|)`` sweep into work
proportional to ``|V+|``.  To measure exactly how much that buys,
:func:`order_insert_scan` implements the same algorithm but walks ``O_K``
one vertex at a time, stepping over Case-2a vertices individually.

Semantics are identical (same ``V*``, same repaired k-order — the shared
Algorithm 3 implementation is reused verbatim); only the traversal
strategy differs: the candidate heap is kept as a *live set* for the
termination test but never used to jump.  The extra return value
``scanned`` counts sequential steps, so ``scanned - visited`` is exactly
the work the jump heap eliminates.
``benchmarks/bench_ablation_jump.py`` reports the comparison.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.insertion import _SETTLED, _VC, _remove_candidates
from repro.core.korder import KOrder
from repro.graphs.undirected import DynamicGraph
from repro.structures.heaps import LazyMinHeap

Vertex = Hashable


def order_insert_scan(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    u: Vertex,
    v: Vertex,
) -> tuple[list[Vertex], int, int, int]:
    """Insert ``(u, v)`` with a sequential ``O_K`` scan (no jumps).

    Returns ``(v_star, K, visited, scanned)`` — ``visited`` matches the
    jump implementation's ``|V+|``; ``scanned`` additionally counts every
    Case-2a vertex stepped over one at a time.
    """
    graph.add_edge(u, v)
    if core[u] > core[v] or (core[u] == core[v] and korder.precedes(v, u)):
        u, v = v, u
    K = core[u]
    korder.deg_plus[u] += 1
    if korder.deg_plus[u] <= K:
        return [], K, 0, 0

    block = korder.block(K)
    deg_plus = korder.deg_plus
    # Same candidate bookkeeping as the jump version — but used only as a
    # live set for termination, never to find the next vertex.
    live = LazyMinHeap()
    deg_star: dict[Vertex, int] = {}
    status: dict[Vertex, int] = {}
    visit_seq: dict[Vertex, int] = {}
    vc_order: list[Vertex] = []
    visited = 0
    scanned = 0

    cursor: Optional[Vertex] = u
    while cursor is not None:
        vtx = cursor
        cursor = block.successor(vtx)
        if status.get(vtx) is not None:
            # Evicted candidates get re-inserted just behind the walk;
            # they are settled and must not be re-processed.
            continue
        scanned += 1
        star = deg_star.get(vtx, 0)
        if star == 0 and not (vtx == u and deg_plus[u] > K):
            # Case-2a: provably not in V*; stays in place unchanged.  The
            # jump version skips this vertex without touching it at all.
            status[vtx] = _SETTLED
            if not live:
                break
            continue
        visited += 1
        live.discard(vtx)
        key_v = block.order_key(vtx)
        if star + deg_plus[vtx] > K:
            status[vtx] = _VC
            visit_seq[vtx] = visited
            vc_order.append(vtx)
            for w in graph.adj[vtx]:
                if w in block and w not in status:
                    key_w = block.order_key(w)
                    if key_w > key_v:
                        new_star = deg_star.get(w, 0) + 1
                        deg_star[w] = new_star
                        if new_star == 1:
                            live.push(key_w, w)
        else:
            deg_plus[vtx] += deg_star.pop(vtx, 0)
            status[vtx] = _SETTLED
            _remove_candidates(
                graph, block, deg_plus, deg_star, status, visit_seq,
                live, vtx, key_v, K,
            )
        if not live:
            break

    v_star = [w for w in vc_order if status[w] == _VC]
    if v_star:
        for w in v_star:
            core[w] = K + 1
            korder.remove(w)
        korder.prepend_chain(K + 1, v_star)
    return v_star, K, visited, scanned


class ScanningOrderedCoreMaintainer:
    """A thin engine wrapper around :func:`order_insert_scan` for benches.

    Removals delegate to the production ``OrderRemoval``; only insertions
    differ.  Exposes ``total_scanned`` so the ablation can report how many
    sequential steps the jump heap would have skipped.
    """

    name = "order-scan"

    def __init__(self, graph: DynamicGraph, seed: Optional[int] = 0) -> None:
        from repro.core.maintainer import OrderedCoreMaintainer

        self._inner = OrderedCoreMaintainer(graph, policy="small", seed=seed)
        self.total_scanned = 0

    @property
    def graph(self) -> DynamicGraph:
        return self._inner.graph

    @property
    def core(self):
        return self._inner.core

    def core_numbers(self):
        return self._inner.core_numbers()

    def insert_edge(self, u: Vertex, v: Vertex):
        from repro.engine.base import UpdateResult

        inner = self._inner
        for endpoint in (u, v):
            if not inner.graph.has_vertex(endpoint):
                inner.graph.add_vertex(endpoint)
                inner._register_vertex(endpoint)
        v_star, k, visited, scanned = order_insert_scan(
            inner.graph, inner.korder, inner._core, u, v
        )
        self.total_scanned += scanned
        inner._refresh_mcd(v_star, (u, v), k + 1)
        return UpdateResult("insert", (u, v), k, tuple(v_star), visited)

    def remove_edge(self, u: Vertex, v: Vertex):
        return self._inner.remove_edge(u, v)

    def check(self) -> None:
        self._inner.check()

"""``OrderRemoval`` — Algorithm 4 of the paper — and its batch-native run.

Finding ``V*`` reuses the traversal-removal cascade: initialize
``cd(w) = mcd(w)`` lazily for touched vertices and repeatedly dispose of
core-``K`` vertices whose ``cd`` dropped below ``K`` (they cannot stay in
the ``K``-core).  That part is already cheap — ``O(sum deg over V*)``.

The paper's gain on removals is the *index* repair: instead of the 2-hop
``pcd`` maintenance of the traversal algorithm, only the k-order is
repaired: every disposed vertex is appended, in disposal order, to the end
of ``O_{K-1}``; its own ``deg+`` is recomputed from its neighborhood, and
each still-core-``K`` neighbor that preceded it loses one ``deg+`` unit
(the vertex jumped from after them to before them).  Vertices already in
``O_{K-1}`` are unaffected (the newcomers land *behind* them).

Two entry points share that repair:

* :func:`order_remove` — the per-edge Algorithm 4.  It consumes the
  maintained ``mcd`` as cascade bounds and leaves the final ``mcd``
  refresh of the touched neighborhoods to the caller (the maintainer's
  ``_refresh_mcd``), which costs one recomputation pass *per edge*.
* :func:`order_remove_run` — the batch-native run (in the spirit of Guo &
  Sekerinski 2022's simplified order-based variants).  All edges of a
  removal run leave the graph up front (``deg+`` and the early ``mcd``
  decrements of Algorithm 4 lines 3-4 applied as they go); then one joint
  ``V*`` cascade runs per affected ``K``-level, highest level first,
  seeded with *every* sub-threshold root of that level at once, so
  overlapping neighborhoods are walked once per run instead of once per
  edge.  Crucially the cascade keeps ``mcd`` exact *incrementally*: a
  demotion ``K -> K-1`` decrements ``mcd`` of the core-``K`` neighbors
  (the only ones that lose a qualifying neighbor) and recomputes the
  demoted vertex's own ``mcd`` during the adjacency scan the cascade
  already pays for.  No per-edge ``mcd`` refresh remains — the run
  charges exactly one targeted recomputation per *demotion* (the
  ``recomputed`` field, which the maintainer folds into its
  ``mcd_recomputations`` counter).

Processing levels in descending order is sound because a level-``K``
cascade can only create new sub-threshold vertices at level ``K`` (its
own queue) or ``K - 1`` (the vertices it demotes): demoting ``w`` from
``K`` to ``K-1`` changes ``mcd`` only of neighbors with core exactly
``K``, and a vertex may lose several levels in one run (batches are not
limited to the per-edge ``|delta core| <= 1`` of Theorem 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.korder import KOrder
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def order_remove(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    mcd: dict[Vertex, int],
    u: Vertex,
    v: Vertex,
) -> tuple[list[Vertex], int, int]:
    """Remove ``(u, v)`` and repair ``core`` and ``korder``.

    ``mcd`` must be the maintained max-core degrees; this function applies
    the paper's early endpoint decrements (Algorithm 4 lines 3-4) so the
    cascade sees correct bounds, but the caller performs the final ``mcd``
    refresh for ``V*`` neighborhoods.

    Returns ``(v_star, K, visited)`` with ``v_star`` in disposal order and
    ``visited`` the number of vertices whose ``cd`` was materialized.
    """
    graph.remove_edge(u, v)  # validates before any index mutation
    cu, cv = core[u], core[v]
    K = min(cu, cv)

    # The departing edge leaves the earlier endpoint's deg+ (it counted
    # the later endpoint); the order test reads the k-order, not the
    # graph, so it is unaffected by the edge already being gone.
    if cu < cv or (cu == cv and korder.precedes(u, v)):
        korder.deg_plus[u] -= 1
    else:
        korder.deg_plus[v] -= 1

    # Early mcd decrements (Algorithm 4, lines 3-4).
    if cu <= cv:
        mcd[u] -= 1
    if cv <= cu:
        mcd[v] -= 1

    # Find V* with the traversal-removal cascade (Section IV-B).
    if cu < cv:
        roots = (u,)
    elif cv < cu:
        roots = (v,)
    else:
        roots = (u, v)
    cd: dict[Vertex, int] = {}
    queued: set[Vertex] = set()
    stack: list[Vertex] = []
    for root in roots:
        cd[root] = mcd[root]
        if cd[root] < K:
            stack.append(root)
            queued.add(root)
    disposed: list[Vertex] = []
    while stack:
        w = stack.pop()
        disposed.append(w)
        core[w] = K - 1
        for z in graph.adj[w]:
            if core.get(z) != K:
                continue
            bound = cd.get(z)
            if bound is None:
                bound = mcd[z]
            bound -= 1
            cd[z] = bound
            if bound < K and z not in queued:
                stack.append(z)
                queued.add(z)

    # Repair the k-order: move V* members to the tail of O_{K-1}.
    if disposed:
        _repair_level(graph, korder, core, K, disposed)

    return disposed, K, len(cd)


def _repair_level(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    K: int,
    disposed: list[Vertex],
) -> None:
    """Move a level's ``V*`` to the tail of ``O_{K-1}`` in disposal order
    (Theorem 5.3) — the repair shared by the per-edge and run paths.

    Each mover's ``deg+`` is recomputed from its neighborhood (stayers
    plus later-disposed members, which land behind it); every
    still-core-``K`` neighbor that preceded the mover loses one ``deg+``
    unit (the mover jumped from after it to before it).  Order tests go
    through ``order_key`` tokens: O(1) label compares under the OM
    backend, rank walks under the treap.
    """
    remaining = set(disposed)
    block = korder.block(K)
    deg_plus = korder.deg_plus
    for w in disposed:
        remaining.discard(w)
        key_w = block.order_key(w)
        new_plus = 0
        for z in graph.adj[w]:
            cz = core[z]
            if cz == K and block.order_key(z) < key_w:
                deg_plus[z] -= 1
            if cz >= K or z in remaining:
                new_plus += 1
        deg_plus[w] = new_plus
        korder.remove(w)
        korder.append(K - 1, w)


@dataclass
class RemovalRunResult:
    """Aggregate outcome of one batch-native removal run.

    Attributes
    ----------
    removed:
        Edges that actually left the graph.
    changed:
        Net core delta per demoted vertex (always negative; a vertex
        demoted across ``d`` levels carries ``-d``).
    visited:
        Search-space size: distinct vertices whose ``mcd`` bound was
        examined, summed over the per-level cascades (the run-level
        analogue of the per-edge ``len(cd)``).
    recomputed:
        Per-vertex ``mcd`` recomputations the run performed — exactly one
        per demotion, i.e. one targeted pass over the run's disposed set
        (endpoint upkeep is pure decrements and charges nothing).
    levels:
        The ``K``-levels whose joint cascade disposed at least one
        vertex, in the descending order they were processed.
    """

    removed: int = 0
    changed: dict = field(default_factory=dict)
    visited: int = 0
    recomputed: int = 0
    levels: tuple = ()


def order_remove_run(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    mcd: dict[Vertex, int],
    edges: Iterable[Edge],
) -> RemovalRunResult:
    """Remove a whole run of ``edges`` and repair ``core``, ``korder``
    and ``mcd`` — the batch-native counterpart of :func:`order_remove`.

    Unlike the per-edge path, ``mcd`` is maintained *incrementally* and is
    exact when the call returns; the caller performs no refresh.  If an
    edge is invalid (absent from the graph), the run raises after first
    completing the cascades for the edges that did land, so the index
    stays fully consistent with the partially-updated graph.
    """
    deg_plus = korder.deg_plus
    # Vertices whose mcd dropped, keyed by their (stable until their
    # level is processed) core number: the joint-cascade seed sets.
    pending: dict[int, set[Vertex]] = {}
    result = RemovalRunResult()
    levels: list[int] = []
    try:
        for u, v in edges:
            graph.remove_edge(u, v)  # validates before any index mutation
            cu, cv = core[u], core[v]
            # The departing edge leaves the earlier endpoint's deg+; no
            # reorder happens during this phase, so all order tests are
            # against one stable k-order.
            if cu < cv or (cu == cv and korder.precedes(u, v)):
                deg_plus[u] -= 1
            else:
                deg_plus[v] -= 1
            # Early mcd decrements (Algorithm 4, lines 3-4), seeding any
            # endpoint that fell below its level.
            if cu <= cv:
                mcd[u] -= 1
                if mcd[u] < cu:
                    pending.setdefault(cu, set()).add(u)
            if cv <= cu:
                mcd[v] -= 1
                if mcd[v] < cv:
                    pending.setdefault(cv, set()).add(v)
            result.removed += 1
    finally:
        # Runs even when an edge op raises, so the removals that did land
        # leave core/korder/mcd consistent before the error propagates.
        changed = result.changed
        while pending:
            K = max(pending)
            seeds = pending.pop(K)
            # One joint V* cascade for the whole level: every
            # sub-threshold root enters the queue at once.
            stack: list[Vertex] = []
            queued: set[Vertex] = set()
            touched: set[Vertex] = set()
            for w in seeds:
                if core[w] != K:  # re-seeded at a lower level meanwhile
                    continue
                touched.add(w)
                if mcd[w] < K:
                    stack.append(w)
                    queued.add(w)
            disposed: list[Vertex] = []
            while stack:
                w = stack.pop()
                disposed.append(w)
                core[w] = K - 1
                changed[w] = changed.get(w, 0) - 1
                new_mcd = 0
                for z in graph.adj[w]:
                    cz = core[z]
                    if cz >= K - 1:
                        new_mcd += 1
                    if cz == K:
                        # z lost a qualifying neighbor (w fell below K).
                        touched.add(z)
                        mcd[z] -= 1
                        if mcd[z] < K and z not in queued:
                            stack.append(z)
                            queued.add(z)
                # w's own mcd now bounds against K-1; recomputed in the
                # adjacency scan the cascade pays for anyway.
                mcd[w] = new_mcd
                result.recomputed += 1
            result.visited += len(touched)
            if not disposed:
                continue
            levels.append(K)
            # Repair the k-order once for the level.
            _repair_level(graph, korder, core, K, disposed)
            # Demotions may leave vertices sub-threshold at K-1 too —
            # batches can sink a vertex through several levels.
            lower = {w for w in disposed if mcd[w] < K - 1}
            if lower:
                pending.setdefault(K - 1, set()).update(lower)
        result.levels = tuple(levels)
    return result

"""``OrderRemoval`` — Algorithm 4 of the paper.

Finding ``V*`` reuses the traversal-removal cascade: initialize
``cd(w) = mcd(w)`` lazily for touched vertices and repeatedly dispose of
core-``K`` vertices whose ``cd`` dropped below ``K`` (they cannot stay in
the ``K``-core).  That part is already cheap — ``O(sum deg over V*)``.

The paper's gain on removals is the *index* repair: instead of the 2-hop
``pcd`` maintenance of the traversal algorithm, only the k-order is
repaired: every disposed vertex is appended, in disposal order, to the end
of ``O_{K-1}``; its own ``deg+`` is recomputed from its neighborhood, and
each still-core-``K`` neighbor that preceded it loses one ``deg+`` unit
(the vertex jumped from after them to before them).  Vertices already in
``O_{K-1}`` are unaffected (the newcomers land *behind* them).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.korder import KOrder
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def order_remove(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    mcd: dict[Vertex, int],
    u: Vertex,
    v: Vertex,
) -> tuple[list[Vertex], int, int]:
    """Remove ``(u, v)`` and repair ``core`` and ``korder``.

    ``mcd`` must be the maintained max-core degrees; this function applies
    the paper's early endpoint decrements (Algorithm 4 lines 3-4) so the
    cascade sees correct bounds, but the caller performs the final ``mcd``
    refresh for ``V*`` neighborhoods.

    Returns ``(v_star, K, visited)`` with ``v_star`` in disposal order and
    ``visited`` the number of vertices whose ``cd`` was materialized.
    """
    cu, cv = core[u], core[v]
    K = min(cu, cv)

    # The departing edge leaves the earlier endpoint's deg+ (it counted the
    # later endpoint).  Must be decided before the edge leaves the graph.
    if cu < cv or (cu == cv and korder.precedes(u, v)):
        korder.deg_plus[u] -= 1
    else:
        korder.deg_plus[v] -= 1
    graph.remove_edge(u, v)

    # Early mcd decrements (Algorithm 4, lines 3-4).
    if cu <= cv:
        mcd[u] -= 1
    if cv <= cu:
        mcd[v] -= 1

    # Find V* with the traversal-removal cascade (Section IV-B).
    if cu < cv:
        roots = (u,)
    elif cv < cu:
        roots = (v,)
    else:
        roots = (u, v)
    cd: dict[Vertex, int] = {}
    queued: set[Vertex] = set()
    stack: list[Vertex] = []
    for root in roots:
        cd[root] = mcd[root]
        if cd[root] < K:
            stack.append(root)
            queued.add(root)
    disposed: list[Vertex] = []
    while stack:
        w = stack.pop()
        disposed.append(w)
        core[w] = K - 1
        for z in graph.adj[w]:
            if core.get(z) != K:
                continue
            bound = cd.get(z)
            if bound is None:
                bound = mcd[z]
            bound -= 1
            cd[z] = bound
            if bound < K and z not in queued:
                stack.append(z)
                queued.add(z)

    # Repair the k-order: move V* members to the tail of O_{K-1}.  Order
    # tests against w's neighbors go through order_key tokens: O(1) label
    # compares under the OM backend, rank walks under the treap.
    if disposed:
        remaining = set(disposed)
        block = korder.block(K)
        deg_plus = korder.deg_plus
        for w in disposed:
            remaining.discard(w)
            key_w = block.order_key(w)
            new_plus = 0
            for z in graph.adj[w]:
                cz = core[z]
                if cz == K and block.order_key(z) < key_w:
                    # z stays in O_K; w jumps from after z to before it.
                    deg_plus[z] -= 1
                if cz >= K or z in remaining:
                    new_plus += 1
            deg_plus[w] = new_plus
            korder.remove(w)
            korder.append(K - 1, w)

    return disposed, K, len(cd)

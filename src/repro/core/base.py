"""Deprecated compatibility shim: the engine interface lives in
:mod:`repro.engine`.

:class:`CoreMaintainer` and :class:`UpdateResult` moved to
:mod:`repro.engine.base` alongside the batch pipeline and the engine
registry; import them from there (or from :mod:`repro.engine`).  This
module re-exports them so existing ``from repro.core.base import …``
call sites keep working, but importing it now emits a
``DeprecationWarning`` — no in-repo code uses it anymore, and it will be
removed once external callers have had a release to migrate.
"""

import warnings

from repro.engine.base import (  # noqa: F401
    CoreMaintainer,
    Edge,
    UpdateResult,
    Vertex,
)

warnings.warn(
    "repro.core.base is deprecated; import CoreMaintainer/UpdateResult "
    "from repro.engine.base (or repro.engine) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["CoreMaintainer", "Edge", "UpdateResult", "Vertex"]

"""Compatibility shim: the engine interface moved to :mod:`repro.engine`.

:class:`CoreMaintainer` and :class:`UpdateResult` now live in
:mod:`repro.engine.base` alongside the batch pipeline and the engine
registry; import them from there (or from :mod:`repro.engine`).  This
module re-exports them so existing ``from repro.core.base import …``
call sites keep working unchanged.
"""

from repro.engine.base import (  # noqa: F401
    CoreMaintainer,
    Edge,
    UpdateResult,
    Vertex,
)

__all__ = ["CoreMaintainer", "Edge", "UpdateResult", "Vertex"]

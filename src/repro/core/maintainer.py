"""The order-based core-maintenance engine (the paper's contribution).

:class:`OrderedCoreMaintainer` glues together:

* the static k-order decomposition (Section VI generation heuristics);
* :func:`repro.core.insertion.order_insert` (Algorithms 2-3);
* :func:`repro.core.removal.order_remove` (Algorithm 4) for per-edge
  removals and :func:`repro.core.removal.order_remove_run` for
  batch-native removal runs (one joint cascade per ``K``-level,
  incremental ``mcd``);
* ``mcd`` upkeep — the order-based algorithm still maintains max-core
  degrees because the removal cascade bounds ``cd`` with them (the paper's
  Algorithm 2 line 33 / Algorithm 4 line 15), but crucially it does *not*
  maintain ``pcd``, whose 2-hop upkeep dominates the traversal algorithm.

Example
-------
>>> from repro.graphs import DynamicGraph
>>> from repro.core import OrderedCoreMaintainer
>>> g = DynamicGraph([(0, 1), (1, 2), (2, 0)])
>>> m = OrderedCoreMaintainer(g)
>>> m.core_of(0)
2
>>> result = m.insert_edge(0, 3)
>>> m.core_of(3)
1
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Mapping, Optional

from repro.core.decomposition import korder_decomposition
from repro.core.insertion import order_insert
from repro.core.korder import DEFAULT_SEQUENCE, KOrder
from repro.core.removal import RemovalRunResult, order_remove, order_remove_run
from repro.engine.base import CoreMaintainer, UpdateResult
from repro.engine.schedule import RunScheduledMaintainer
from repro.errors import InvariantViolationError
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def compute_mcd(
    graph: DynamicGraph, core: Mapping[Vertex, int]
) -> dict[Vertex, int]:
    """Max-core degree of every vertex: neighbors with ``core >= core(v)``."""
    return {
        v: sum(1 for w in nbrs if core[w] >= core[v])
        for v, nbrs in graph.adj.items()
    }


class OrderedCoreMaintainer(RunScheduledMaintainer):
    """Dynamic core maintenance via an explicitly maintained k-order.

    Parameters
    ----------
    graph:
        The graph to index; the maintainer takes ownership (all further
        updates must go through :meth:`insert_edge` / :meth:`remove_edge`).
    policy:
        k-order generation heuristic (``"small"``, ``"large"``,
        ``"random"``; Section VI — ``"small"`` is the paper's choice).
    seed:
        Makes treap priorities and the random policy deterministic.
    audit:
        When true, the full index is audited after every update; meant for
        tests (it costs ``O(m log n)`` per update).
    sequence:
        Block backend of the k-order: ``"om"`` (default — tagged
        order-maintenance lists, O(1) order tests) or ``"treap"`` (the
        original order-statistic treaps, O(log n) rank walks).  Both
        yield identical orders and cores; only the query cost differs.
    partition:
        When true, :meth:`apply_batch` first splits every batch into
        independent regions with :meth:`~repro.engine.batch.Batch.partition`
        and applies them one by one.  Off by default — the partitioner
        walks the touched components, which per-batch hot paths should
        not pay unless asked to.
    parallel:
        Opt-in worker count for region-parallel batch application
        (implies ``partition``).  ``None``/``0`` keeps the sequential
        schedule.  See :meth:`apply_batch` for what "parallel" means in
        CPython today.
    """

    name = "order"

    #: Per-vertex ``mcd`` recomputations performed by repairs — the cost
    #: the batched path amortizes.  Class-level default so engines
    #: restored from snapshots (which bypass ``__init__``) start at 0 too.
    mcd_recomputations = 0

    def __init__(
        self,
        graph: DynamicGraph,
        policy: str = "small",
        seed: Optional[int] = 0,
        audit: bool = False,
        sequence: str = DEFAULT_SEQUENCE,
        partition: bool = False,
        parallel: Optional[int] = None,
    ) -> None:
        super().__init__(graph)
        self._audit = audit
        self._rng = random.Random(seed)
        decomposition = korder_decomposition(graph, policy=policy, seed=seed)
        self._core: dict[Vertex, int] = decomposition.core
        self.korder = KOrder.from_decomposition(
            decomposition, self._rng, sequence=sequence
        )
        self._mcd = compute_mcd(graph, self._core)
        self.mcd_recomputations = 0
        self._batch_partition = bool(partition)
        self._batch_parallel = parallel if parallel else None

    @classmethod
    def from_index_state(
        cls,
        graph: DynamicGraph,
        order: Iterable[Vertex],
        core: dict[Vertex, int],
        deg_plus: Mapping[Vertex, int],
        mcd: dict[Vertex, int],
        *,
        sequence: str = DEFAULT_SEQUENCE,
        audit: bool = False,
        seed: Optional[int] = 0,
    ) -> "OrderedCoreMaintainer":
        """Rebuild a live maintainer from already-valid index state.

        ``order`` must be a valid k-order of ``graph`` with ``core`` /
        ``deg_plus`` / ``mcd`` consistent; no decomposition runs.  The
        ``core`` and ``mcd`` dicts are adopted, not copied.  This is the
        one bypass of ``__init__`` — shared by snapshot restore
        (:func:`repro.core.snapshot.from_snapshot`) and the sharded
        engine's split path, so new maintainer state only ever needs to
        be wired here.  Raises ``ValueError`` for an unknown backend.
        """
        maintainer = cls.__new__(cls)
        CoreMaintainer.__init__(maintainer, graph)
        maintainer._audit = audit
        maintainer._rng = random.Random(seed)
        maintainer._core = core
        korder = KOrder(maintainer._rng, sequence=sequence)
        for vertex in order:
            korder.append(core[vertex], vertex)
        korder.deg_plus.update(deg_plus)
        maintainer.korder = korder
        maintainer._mcd = mcd
        maintainer.mcd_recomputations = 0
        return maintainer

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def core(self) -> Mapping[Vertex, int]:
        return self._core

    @property
    def mcd(self) -> Mapping[Vertex, int]:
        """Maintained max-core degrees (read-only)."""
        return self._mcd

    def mcd_of(self, vertex: Vertex) -> int:
        """``mcd`` of one vertex — the per-vertex accessor shared with
        the simplified engine (which derives it instead of storing it)."""
        return self._mcd[vertex]

    @property
    def _aux_degrees(self) -> dict[Vertex, int]:
        """The per-vertex auxiliary degree store the sharded engine
        merges and splits alongside ``core``/``deg+`` — here the
        maintained ``mcd`` (the simplified engine's is ``d_in``)."""
        return self._mcd

    @property
    def sequence(self) -> str:
        """The k-order's block backend (``"om"`` or ``"treap"``)."""
        return self.korder.sequence

    @property
    def sequence_stats(self):
        """Cumulative :class:`~repro.structures.sequence.SequenceStats`
        of the k-order's blocks (order queries, relabels, rank walks)."""
        return self.korder.stats

    def order(self) -> list[Vertex]:
        """The maintained k-order as a list."""
        return self.korder.order()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> bool:
        if not self._graph.add_vertex(vertex):
            return False
        self._register_vertex(vertex)
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """OrderInsert: insert ``(u, v)``, repair cores, k-order and mcd."""
        for endpoint in (u, v):
            if not self._graph.has_vertex(endpoint):
                self._graph.add_vertex(endpoint)
                self._register_vertex(endpoint)
        v_star, k, visited, evicted = order_insert(
            self._graph, self.korder, self._core, u, v
        )
        self._refresh_mcd(v_star, (u, v), k + 1)
        if self._audit:
            self.check()
        return UpdateResult(
            "insert", (u, v), k, tuple(v_star), visited, evicted
        )

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """OrderRemoval: remove ``(u, v)``, repair cores, k-order and mcd."""
        v_star, k, visited = order_remove(
            self._graph, self.korder, self._core, self._mcd, u, v
        )
        self._refresh_mcd(v_star, (u, v), k)
        if self._audit:
            self.check()
        return UpdateResult("remove", (u, v), k, tuple(v_star), visited)

    # The batch pipeline (``apply_batch`` / ``insert_edges_bulk`` and the
    # region scheduler) is inherited from
    # :class:`~repro.engine.schedule.RunScheduledMaintainer`; this class
    # contributes the ``mcd``-maintaining run commits below.

    def _batch_counters(self) -> dict[str, int]:
        """Cumulative instrumentation (sequence stats + ``mcd`` repairs)."""
        counters = self.korder.stats.as_dict()
        counters["mcd_recomputations"] = self.mcd_recomputations
        return counters

    def _insert_run(self, edges) -> list[UpdateResult]:
        """Insert a run of edges with one coalesced ``mcd`` repair.

        During the run only cores and the k-order are maintained;
        ``old_core`` records each changed vertex's core *before* its first
        promotion so the boundary repair can tell which neighbors' levels
        the vertex crossed over the whole run.
        """
        graph, core, mcd = self._graph, self._core, self._mcd
        endpoints: set[Vertex] = set()
        old_core: dict[Vertex, int] = {}
        results = []
        try:
            for u, v in edges:
                for endpoint in (u, v):
                    if not graph.has_vertex(endpoint):
                        graph.add_vertex(endpoint)
                        self._register_vertex(endpoint)
                v_star, k, visited, evicted = order_insert(
                    graph, self.korder, core, u, v
                )
                for w in v_star:
                    # order_insert already bumped core[w]; remember the value
                    # it had before its first promotion in this run.
                    old_core.setdefault(w, core[w] - 1)
                endpoints.update((u, v))
                results.append(
                    UpdateResult(
                        "insert", (u, v), k, tuple(v_star), visited, evicted
                    )
                )
        finally:
            # Boundary repair: endpoints and promoted vertices from scratch
            # (adjacency or core changed); any other neighbor z of a promoted
            # vertex gains +1 for each neighbor whose core crossed core(z).
            # Runs even when an op raises (e.g. EdgeExistsError) so the
            # edges that did land leave mcd consistent.
            recomputed = endpoints | old_core.keys()
            for w in recomputed:
                cw = core[w]
                mcd[w] = sum(1 for x in graph.adj[w] if core[x] >= cw)
            self.mcd_recomputations += len(recomputed)
            for w, before in old_core.items():
                after = core[w]
                for z in graph.adj[w]:
                    if z in recomputed:
                        continue
                    if before < core[z] <= after:
                        mcd[z] += 1
        if self._audit:
            self.check()
        return results

    def _remove_run(self, edges) -> RemovalRunResult:
        """Remove a run of edges through the batch-native joint cascade.

        ``mcd`` is maintained incrementally inside
        :func:`~repro.core.removal.order_remove_run`, so the run charges
        exactly one targeted recomputation per demotion (one pass over
        the run's disposed set) instead of the per-edge path's
        ``V* + endpoints`` refresh for every edge.
        """
        run = order_remove_run(
            self._graph, self.korder, self._core, self._mcd, edges
        )
        self.mcd_recomputations += run.recomputed
        if self._audit:
            self.check()
        return run

    def degeneracy_order(self) -> list[Vertex]:
        """The maintained k-order read as a degeneracy ordering.

        Reversed, it is a *degeneracy order*: every vertex has at most
        ``degeneracy`` neighbors earlier in it (its ``deg+`` neighbors),
        which is what greedy coloring and clique heuristics consume (see
        :func:`repro.applications.coloring.greedy_coloring`).
        """
        return self.korder.order()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _register_vertex(self, vertex: Vertex) -> None:
        self._core[vertex] = 0
        self.korder.append(0, vertex)
        self.korder.deg_plus[vertex] = 0
        self._mcd[vertex] = 0

    def _forget_vertex(self, vertex: Vertex) -> None:
        if self._core.pop(vertex, None) is None:
            return
        self.korder.forget(vertex)
        self._mcd.pop(vertex, None)

    def _refresh_mcd(
        self,
        changed: list[Vertex],
        endpoints: tuple[Vertex, Vertex],
        crossing_level: int,
    ) -> None:
        """Repair ``mcd`` after an update.

        ``V*`` members and the edge endpoints are recomputed from scratch
        (their own core or adjacency changed).  For any other neighbor
        ``z`` of a ``V*`` member, the member's core crossed ``core(z)``
        exactly when ``core(z) == crossing_level`` — ``K+1`` for inserts
        (the member rose from below ``z`` to its level), ``K`` for removals
        (the member fell from ``z``'s level to below it).
        """
        graph = self._graph
        core = self._core
        mcd = self._mcd
        recomputed = set(changed)
        recomputed.update(endpoints)
        for w in recomputed:
            cw = core[w]
            mcd[w] = sum(1 for x in graph.adj[w] if core[x] >= cw)
        self.mcd_recomputations += len(recomputed)
        if not changed:
            return
        delta = 1 if core[changed[0]] == crossing_level else -1
        for w in changed:
            for z in graph.adj[w]:
                if z in recomputed:
                    continue
                if core[z] == crossing_level:
                    mcd[z] += delta

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Audit the whole index; raises on violation (used in tests)."""
        self.korder.audit(self._graph, self._core)
        expected = compute_mcd(self._graph, self._core)
        if expected != self._mcd:
            bad = {
                v: (self._mcd.get(v), expected[v])
                for v in expected
                if self._mcd.get(v) != expected[v]
            }
            raise InvariantViolationError(f"mcd out of sync: {bad}")

"""Static core decomposition and k-order generation (Algorithm 1 + §VI).

``CoreDecomp`` peels vertices whose remaining degree is below the current
``k``; the removal sequence *is* a k-order, and the remaining degree of a
vertex at its removal *is* its ``deg+`` (Section VI: "append u to O_{k-1};
deg+(u) <- deg(u)").

Three tie-breaking heuristics decide which removable vertex goes next:

* ``"small"`` — smallest remaining degree first.  This is the canonical
  Batagelj–Zaversnik order and the heuristic the paper recommends, because
  vertices with small ``deg+`` placed early are less likely to enter
  Case-1 of ``OrderInsert`` later (fewer candidates, smaller ``V+``).
* ``"large"`` — largest remaining degree below ``k`` first.
* ``"random"`` — uniformly random removable vertex.

Figure 9 of the paper compares the three; :mod:`repro.bench.experiments`
reproduces that comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.graphs.undirected import DynamicGraph
from repro.structures.buckets import DegreeBuckets

Vertex = Hashable

#: Valid k-order generation heuristics.
POLICIES = ("small", "large", "random")


@dataclass
class KOrderDecomposition:
    """Result of a k-order producing core decomposition.

    Attributes
    ----------
    core:
        Vertex -> core number.
    order:
        All vertices in k-order (non-decreasing core number; a valid
        ``CoreDecomp`` removal sequence).
    deg_plus:
        Vertex -> remaining degree at removal time, i.e. the number of its
        neighbors that appear *after* it in ``order``.
    """

    core: dict[Vertex, int] = field(default_factory=dict)
    order: list[Vertex] = field(default_factory=list)
    deg_plus: dict[Vertex, int] = field(default_factory=dict)


def core_numbers(graph: DynamicGraph) -> dict[Vertex, int]:
    """Core number of every vertex, via linear bucket peeling."""
    return korder_decomposition(graph, policy="small").core


def korder_decomposition(
    graph: DynamicGraph,
    policy: str = "small",
    seed: Optional[int] = None,
) -> KOrderDecomposition:
    """Core decomposition that also emits a k-order and ``deg+`` values.

    Parameters
    ----------
    graph:
        The input graph (not modified).
    policy:
        One of :data:`POLICIES`.
    seed:
        RNG seed, used only by the ``"random"`` policy.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    if policy == "small":
        return _peel_small(graph)
    return _peel_staged(graph, policy, random.Random(seed))


def _peel_small(graph: DynamicGraph) -> KOrderDecomposition:
    """Always remove a globally minimum-degree vertex.

    With this policy the core number of a vertex is the running maximum of
    removal-time degrees, which saves the explicit ``k`` loop and keeps the
    whole peel ``O(m + n)`` (amortized bucket scans).
    """
    result = KOrderDecomposition()
    adj = graph.adj
    buckets = DegreeBuckets({v: len(nbrs) for v, nbrs in adj.items()})
    k = 0
    while buckets:
        vertex, degree = buckets.pop_min()
        if degree > k:
            k = degree
        result.core[vertex] = k
        result.deg_plus[vertex] = degree
        result.order.append(vertex)
        for w in adj[vertex]:
            if w in buckets:
                buckets.decrease(w)
    return result


def _peel_staged(
    graph: DynamicGraph,
    policy: str,
    rng: random.Random,
) -> KOrderDecomposition:
    """Stage-by-stage peel (explicit ``k`` loop of Algorithm 1).

    At stage ``k`` every vertex with remaining degree below ``k`` is
    removable; the policy picks which removable vertex goes next.
    """
    result = KOrderDecomposition()
    adj = graph.adj
    buckets = DegreeBuckets({v: len(nbrs) for v, nbrs in adj.items()})
    k = 1
    while buckets:
        while True:
            if policy == "large":
                item = buckets.pop_max_below(k)
            else:
                item = buckets.pop_random_below(k, rng)
            if item is None:
                break
            vertex, degree = item
            result.core[vertex] = k - 1
            result.deg_plus[vertex] = degree
            result.order.append(vertex)
            for w in adj[vertex]:
                if w in buckets:
                    buckets.decrease(w)
        k += 1
    return result


def is_valid_korder(
    graph: DynamicGraph,
    core: dict[Vertex, int],
    order: list[Vertex],
) -> bool:
    """Check Lemma 5.1: an order is a k-order iff cores are non-decreasing
    along it and every vertex has at most ``core(v)`` neighbors after it."""
    position = {v: i for i, v in enumerate(order)}
    if len(position) != graph.n:
        return False
    previous = None
    for v in order:
        if previous is not None and core[v] < previous:
            return False
        previous = core[v]
        later = sum(1 for w in graph.adj[v] if position[w] > position[v])
        if later > core[v]:
            return False
    return True

"""The simplified order-based engine (Guo & Sekerinski, arXiv 2201.07103).

*Simplified Algorithms for Order-Based Core Maintenance* reformulates
Zhang et al.'s order-based maintenance directly on the order-maintenance
(OM) list: instead of the maintained max-core degrees (``mcd``) that the
paper's ``OrderRemoval`` consumes — and the per-update repair passes the
:class:`~repro.core.maintainer.OrderedCoreMaintainer` charges as
``mcd_recomputations`` — every vertex carries just two *order-local*
counters:

``d_out(v)``
    Neighbors appearing **after** ``v`` in the global k-order.  This is
    exactly the paper's ``deg+`` (Definition 5.2), so the insertion scan
    is unchanged in shape; it is stored in ``korder.deg_plus`` so the
    k-order audit validates it for free.
``d_in(v)``
    Neighbors appearing **before** ``v`` in the global k-order *with the
    same core number* (i.e. earlier in ``v``'s own block).

The load-bearing identity: because the k-order is sorted by core number,
every successor of ``v`` has ``core >= core(v)`` and every same-block
predecessor has ``core == core(v)``, so

    ``d_in(v) + d_out(v) == mcd(v)``    (always)

The removal cascade can therefore bound ``cd`` with ``d_in + d_out``
directly and **no separate ``mcd`` structure exists**: both counters are
repaired by O(1) adjustments at the exact points where the k-order
changes, so the per-update "refresh the touched neighborhoods" pass of
the default engine — and with it the whole ``pcd``-flavoured bookkeeping
layer — disappears.  What remains chargeable is the candidate scan
itself, reported as the ``candidate_visits`` counter (the engine's
analogue of ``|V+|`` / ``|V'|``), which replaces ``mcd_recomputations``
in :class:`~repro.engine.batch.BatchResult` counters.

Correctness of the ``d_in`` upkeep piggybacks on the proven ``deg+``
maintenance: for every vertex that keeps its core number, ``mcd`` is
untouched by an update's promotions/demotions (the moving vertices stay
``>=`` its level), so mirroring every scan-time ``d_out`` adjustment
with the opposite ``d_in`` adjustment preserves the identity — and the
identity plus correct ``d_out`` *is* correct ``d_in``.  Only the
vertices whose core changes (and, on insertion, the old members of the
level above) need a targeted repair, folded into the adjacency pass the
ending phase already pays for.  See :meth:`SimplifiedCoreMaintainer.check`,
which audits both counters from scratch under ``audit=True``.

The engine runs on the same pluggable
:class:`~repro.structures.sequence.SequenceIndex` block backends as the
default engine (``sequence="om"`` tagged order list, ``"treap"`` as the
rank-walking oracle) and registers as ``make_engine("order-simplified")``
with the standard family aliases.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable, Iterable, Mapping, Optional

from repro.core.decomposition import korder_decomposition
from repro.core.korder import DEFAULT_SEQUENCE, KOrder
from repro.core.removal import RemovalRunResult
from repro.engine.base import CoreMaintainer, UpdateResult
from repro.engine.schedule import RunScheduledMaintainer
from repro.errors import InvariantViolationError
from repro.graphs.undirected import DynamicGraph
from repro.structures.heaps import LazyMinHeap

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

_VC = 1  # currently a candidate for V*
_SETTLED = 2  # definitively not in V*


def compute_d_in(
    graph: DynamicGraph, core: Mapping[Vertex, int], order: Iterable[Vertex]
) -> dict[Vertex, int]:
    """``d_in`` from scratch: same-core neighbors earlier in ``order``."""
    position = {v: i for i, v in enumerate(order)}
    return {
        v: sum(
            1
            for w in nbrs
            if core[w] == core[v] and position[w] < position[v]
        )
        for v, nbrs in graph.adj.items()
    }


def simplified_insert(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    d_in: dict[Vertex, int],
    u: Vertex,
    v: Vertex,
) -> tuple[list[Vertex], int, int, int]:
    """Insert ``(u, v)`` and repair ``core``, the k-order, ``d_out``/``d_in``.

    Returns ``(v_star, K, visited, evicted)`` like
    :func:`repro.core.insertion.order_insert`; unlike it, the caller has
    nothing left to repair — both order-local degrees are exact on
    return.
    """
    graph.add_edge(u, v)

    # Preparing phase: orient the edge so that u ≼ v.  The new successor
    # raises d_out(u); it raises d_in(v) only when u sits in v's block.
    if core[u] > core[v] or (core[u] == core[v] and korder.precedes(v, u)):
        u, v = v, u
    K = core[u]
    d_out = korder.deg_plus
    d_out[u] += 1
    if core[v] == K:
        d_in[v] += 1
    if d_out[u] <= K:
        return [], K, 0, 0

    block = korder.block(K)

    heap = LazyMinHeap()
    heap.push(block.order_key(u), u)

    deg_star: dict[Vertex, int] = {}
    status: dict[Vertex, int] = {}
    visit_seq: dict[Vertex, int] = {}
    vc_order: list[Vertex] = []
    visited = 0

    # Core phase: identical jump scan to Algorithm 2, with every d_out
    # adjustment mirrored on d_in (d_in + d_out is invariant for any
    # vertex that stays at core K, because promotions never leave its
    # mcd).  Candidates' d_in is garbage during the scan and is rebuilt
    # in the ending phase.
    while True:
        item = heap.pop()
        if item is None:
            break
        key_v, vtx = item
        visited += 1
        if deg_star.get(vtx, 0) + d_out[vtx] > K:
            status[vtx] = _VC
            visit_seq[vtx] = visited
            vc_order.append(vtx)
            for w in graph.adj[vtx]:
                if w in block and w not in status:
                    key_w = block.order_key(w)
                    if key_w > key_v:
                        new_star = deg_star.get(w, 0) + 1
                        deg_star[w] = new_star
                        if new_star == 1:
                            heap.push(key_w, w)
        else:
            absorbed = deg_star.pop(vtx, 0)
            d_out[vtx] += absorbed
            d_in[vtx] -= absorbed
            status[vtx] = _SETTLED
            _settle_candidates(
                graph, block, d_out, d_in, deg_star, status, visit_seq,
                heap, vtx, key_v, K,
            )

    v_star = [w for w in vc_order if status[w] == _VC]
    evicted = len(vc_order) - len(v_star)
    if v_star:
        # Ending phase.  V* moves, order preserved, to the *front* of
        # O_{K+1}: a promoted vertex's only same-block predecessors are
        # earlier V* members, and each old O_{K+1} member gains every
        # promoted neighbor as a new same-core predecessor (its mcd grew
        # by exactly those neighbors).  d_out needs nothing — the scan
        # maintained it for the promoted position already (the paper's
        # Section V-B rationale).
        promoted = set(v_star)
        earlier: set[Vertex] = set()
        for w in v_star:
            d_in[w] = sum(1 for z in graph.adj[w] if z in earlier)
            earlier.add(w)
            core[w] = K + 1
            korder.remove(w)
        for w in v_star:
            for z in graph.adj[w]:
                if core[z] == K + 1 and z not in promoted:
                    d_in[z] += 1
        korder.prepend_chain(K + 1, v_star)
    return v_star, K, visited, evicted


def _settle_candidates(
    graph: DynamicGraph,
    block,
    d_out: dict[Vertex, int],
    d_in: dict[Vertex, int],
    deg_star: dict[Vertex, int],
    status: dict[Vertex, int],
    visit_seq: dict[Vertex, int],
    heap: LazyMinHeap,
    settled: Vertex,
    key_cursor,
    K: int,
) -> None:
    """Algorithm 3's eviction cascade with mirrored ``d_in`` upkeep.

    Same control flow as
    :func:`repro.core.insertion._remove_candidates`; each ``d_out``
    change on a vertex that may stay at core ``K`` carries the opposite
    ``d_in`` change, keeping ``d_in + d_out`` equal to its (unchanged)
    ``mcd``.  ``deg_star`` is scan-local bookkeeping and needs no
    mirror.
    """
    queue: deque[Vertex] = deque()
    queued: set[Vertex] = set()

    for w in graph.adj[settled]:
        if status.get(w) == _VC:
            d_out[w] -= 1
            d_in[w] += 1
            if deg_star.get(w, 0) + d_out[w] <= K and w not in queued:
                queue.append(w)
                queued.add(w)

    anchor = settled
    while queue:
        w1 = queue.popleft()
        absorbed = deg_star.pop(w1, 0)
        d_out[w1] += absorbed
        d_in[w1] -= absorbed
        status[w1] = _SETTLED
        block.move_after(anchor, w1)
        anchor = w1
        seq_w1 = visit_seq[w1]
        for w2 in graph.adj[w1]:
            if w2 not in block:
                continue
            st = status.get(w2)
            if st is None:
                if block.order_key(w2) > key_cursor:
                    new_star = deg_star[w2] - 1
                    deg_star[w2] = new_star
                    if new_star == 0:
                        heap.discard(w2)
            elif st == _VC:
                if seq_w1 < visit_seq[w2]:
                    deg_star[w2] -= 1
                else:
                    d_out[w2] -= 1
                    d_in[w2] += 1
                if (
                    deg_star.get(w2, 0) + d_out[w2] <= K
                    and w2 not in queued
                ):
                    queue.append(w2)
                    queued.add(w2)
            # settled neighbors need no adjustment (Observation 6.1:
            # the eviction lands after the cursor, preserving their
            # already-absorbed accounting).


def simplified_remove(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    d_in: dict[Vertex, int],
    u: Vertex,
    v: Vertex,
) -> tuple[list[Vertex], int, int]:
    """Remove ``(u, v)`` and repair ``core``, the k-order, ``d_out``/``d_in``.

    The cascade is Algorithm 4's, except the ``cd`` bound materializes
    from ``d_in + d_out`` — the identity makes the maintained ``mcd``
    (and its early endpoint decrements *and* its final refresh pass)
    unnecessary.  Returns ``(v_star, K, visited)`` with ``v_star`` in
    disposal order.
    """
    graph.remove_edge(u, v)  # validates before any index mutation
    cu, cv = core[u], core[v]
    K = min(cu, cv)
    d_out = korder.deg_plus

    # The departing edge leaves exactly one counter per endpoint at the
    # update level: the earlier endpoint loses a successor, the later
    # one loses a same-block predecessor only when the blocks coincide.
    if cu < cv or (cu == cv and korder.precedes(u, v)):
        d_out[u] -= 1
        if cu == cv:
            d_in[v] -= 1
    else:
        d_out[v] -= 1
        if cu == cv:
            d_in[u] -= 1

    if cu < cv:
        roots = (u,)
    elif cv < cu:
        roots = (v,)
    else:
        roots = (u, v)
    cd: dict[Vertex, int] = {}
    queued: set[Vertex] = set()
    stack: list[Vertex] = []
    for root in roots:
        cd[root] = d_in[root] + d_out[root]
        if cd[root] < K:
            stack.append(root)
            queued.add(root)
    disposed: list[Vertex] = []
    while stack:
        w = stack.pop()
        disposed.append(w)
        core[w] = K - 1
        for z in graph.adj[w]:
            if core.get(z) != K:
                continue
            bound = cd.get(z)
            if bound is None:
                bound = d_in[z] + d_out[z]
            bound -= 1
            cd[z] = bound
            if bound < K and z not in queued:
                stack.append(z)
                queued.add(z)

    if disposed:
        _repair_level(graph, korder, core, d_in, K, disposed)
    return disposed, K, len(cd)


def _repair_level(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    d_in: dict[Vertex, int],
    K: int,
    disposed: list[Vertex],
) -> None:
    """Move a level's ``V*`` to the tail of ``O_{K-1}`` in disposal order,
    repairing both order-local degrees in the same adjacency pass.

    A mover lands *before* every remaining core-``K`` vertex, so each
    such neighbor loses one unit — from ``d_out`` if it preceded the
    mover, from ``d_in`` otherwise (together these are the ``mcd``
    decrements the default engine pays a separate pass for).  The
    mover's own degrees are recomputed against its new tail position:
    stayers, higher cores and later movers follow it; old ``O_{K-1}``
    members and earlier movers precede it in its new block.
    """
    remaining = set(disposed)
    block = korder.block(K)
    d_out = korder.deg_plus
    for w in disposed:
        remaining.discard(w)
        key_w = block.order_key(w)
        new_out = 0
        new_in = 0
        for z in graph.adj[w]:
            cz = core[z]
            if cz == K:
                if block.order_key(z) < key_w:
                    d_out[z] -= 1
                else:
                    d_in[z] -= 1
            if cz >= K or z in remaining:
                new_out += 1
            elif cz == K - 1:
                new_in += 1
        d_out[w] = new_out
        d_in[w] = new_in
        korder.remove(w)
        korder.append(K - 1, w)


def simplified_remove_run(
    graph: DynamicGraph,
    korder: KOrder,
    core: dict[Vertex, int],
    d_in: dict[Vertex, int],
    edges: Iterable[Edge],
) -> RemovalRunResult:
    """Remove a whole run of ``edges`` and repair ``core``, ``korder``
    and both order-local degrees — the batch-native counterpart of
    :func:`simplified_remove`, mirroring
    :func:`repro.core.removal.order_remove_run` on the ``d_in``/``d_out``
    bookkeeping.

    All edges leave the graph up front: each departing edge costs the
    O(1) orientation-based decrements of the per-edge path (the earlier
    endpoint loses a successor; the later one loses a same-block
    predecessor when the blocks coincide), and any endpoint whose
    ``d_in + d_out`` bound — its ``mcd``, by the module invariant —
    fell below its core number seeds the joint cascade of its level.
    Then one joint ``V*`` cascade runs per affected ``K``-level, highest
    level first, with every sub-threshold root of the level queued at
    once, so overlapping neighborhoods are walked once per run instead
    of once per edge.

    Where :func:`~repro.core.removal.order_remove_run` must keep ``mcd``
    incrementally exact inside the cascade (decrement the stayers,
    recompute each mover), here that whole step collapses into state the
    engine already maintains: the cascade bounds candidates with a
    scan-local ``cd`` materialized from ``d_in + d_out``, and the
    level's single :func:`_repair_level` pass repairs both degrees for
    stayers and movers alike — after it, a mover's ``d_in + d_out`` *is*
    its ``mcd`` at ``K - 1``, which is exactly the bound the next-lower
    level's re-seed check needs (batches may sink a vertex through
    several levels).  ``recomputed`` therefore stays 0: the simplified
    run has no ``mcd`` passes to charge, only the candidate scan
    (``visited``).

    If an edge is invalid (absent from the graph), the run raises after
    first completing the cascades for the edges that did land, so the
    index stays fully consistent with the partially-updated graph.
    """
    d_out = korder.deg_plus
    # Endpoints whose bound dropped, keyed by their (stable until their
    # level is processed) core number: the joint-cascade seed sets.
    pending: dict[int, set[Vertex]] = {}
    result = RemovalRunResult()
    levels: list[int] = []
    try:
        for u, v in edges:
            graph.remove_edge(u, v)  # validates before any index mutation
            cu, cv = core[u], core[v]
            # No reorder happens during this phase, so all order tests
            # are against one stable k-order.
            if cu < cv or (cu == cv and korder.precedes(u, v)):
                d_out[u] -= 1
                if cu == cv:
                    d_in[v] -= 1
            else:
                d_out[v] -= 1
                if cu == cv:
                    d_in[u] -= 1
            # Seed any endpoint that fell below its level; d_in + d_out
            # plays the role of Algorithm 4's early mcd decrements.
            if cu <= cv and d_in[u] + d_out[u] < cu:
                pending.setdefault(cu, set()).add(u)
            if cv <= cu and d_in[v] + d_out[v] < cv:
                pending.setdefault(cv, set()).add(v)
            result.removed += 1
    finally:
        # Runs even when an edge op raises, so the removals that did land
        # leave core/korder/degrees consistent before the error
        # propagates.
        changed = result.changed
        while pending:
            K = max(pending)
            seeds = pending.pop(K)
            # One joint V* cascade for the whole level: every
            # sub-threshold root enters the queue at once.  cd is
            # scan-local — permanent degree repair is _repair_level's.
            cd: dict[Vertex, int] = {}
            queued: set[Vertex] = set()
            stack: list[Vertex] = []
            for w in seeds:
                if core[w] != K:  # re-seeded at a lower level meanwhile
                    continue
                cd[w] = d_in[w] + d_out[w]
                if cd[w] < K:
                    stack.append(w)
                    queued.add(w)
            disposed: list[Vertex] = []
            while stack:
                w = stack.pop()
                disposed.append(w)
                core[w] = K - 1
                changed[w] = changed.get(w, 0) - 1
                for z in graph.adj[w]:
                    if core.get(z) != K:
                        continue
                    bound = cd.get(z)
                    if bound is None:
                        bound = d_in[z] + d_out[z]
                    bound -= 1
                    cd[z] = bound
                    if bound < K and z not in queued:
                        stack.append(z)
                        queued.add(z)
            result.visited += len(cd)
            if not disposed:
                continue
            levels.append(K)
            # Repair the k-order — and both degrees — once for the level.
            _repair_level(graph, korder, core, d_in, K, disposed)
            # Demotions may leave vertices sub-threshold at K-1 too —
            # batches can sink a vertex through several levels.
            lower = {w for w in disposed if d_in[w] + d_out[w] < K - 1}
            if lower:
                pending.setdefault(K - 1, set()).update(lower)
        result.levels = tuple(levels)
    return result


class SimplifiedCoreMaintainer(RunScheduledMaintainer):
    """Guo–Sekerinski simplified order-based core maintenance.

    Drop-in alternative to
    :class:`~repro.core.maintainer.OrderedCoreMaintainer` with the same
    k-order index but no ``mcd``/``pcd`` bookkeeping: two order-local
    counters (``d_out`` — the paper's ``deg+`` — and ``d_in``) replace
    the maintained max-core degrees, so no repair pass runs after the
    cascades.  Created as ``make_engine("order-simplified")`` (aliases
    ``order-simplified-{small,large,random,om,treap}``).

    Parameters match the default order engine's, batch-scheduler options
    included: ``policy`` picks the Section VI generation heuristic,
    ``sequence`` the block backend, ``audit`` re-checks every invariant
    after each update (tests only), and ``partition`` / ``parallel``
    set the :meth:`apply_batch` region-schedule defaults (see
    :class:`~repro.engine.schedule.RunScheduledMaintainer`).  Batches
    commit run-natively: removal runs go through
    :func:`simplified_remove_run` (one joint cascade per affected
    level), insertion runs through one coalesced loop with a single
    boundary audit — the simplified insert leaves nothing deferred, so
    the run is the per-edge scan minus per-edge overheads.
    """

    name = "order-simplified"

    #: Vertices examined by the insertion scan / removal cascade — the
    #: engine's cost driver, replacing ``mcd_recomputations`` in batch
    #: counters.  Class-level default so snapshot restores start at 0.
    candidate_visits = 0

    def __init__(
        self,
        graph: DynamicGraph,
        policy: str = "small",
        seed: Optional[int] = 0,
        audit: bool = False,
        sequence: str = DEFAULT_SEQUENCE,
        partition: bool = False,
        parallel: Optional[int] = None,
    ) -> None:
        super().__init__(graph)
        self._audit = audit
        self._rng = random.Random(seed)
        decomposition = korder_decomposition(graph, policy=policy, seed=seed)
        self._core: dict[Vertex, int] = decomposition.core
        self.korder = KOrder.from_decomposition(
            decomposition, self._rng, sequence=sequence
        )
        self._d_in = compute_d_in(graph, self._core, decomposition.order)
        self.candidate_visits = 0
        self._batch_partition = bool(partition)
        self._batch_parallel = parallel if parallel else None

    @classmethod
    def from_index_state(
        cls,
        graph: DynamicGraph,
        order: Iterable[Vertex],
        core: dict[Vertex, int],
        deg_plus: Mapping[Vertex, int],
        d_in: dict[Vertex, int],
        *,
        sequence: str = DEFAULT_SEQUENCE,
        audit: bool = False,
        seed: Optional[int] = 0,
    ) -> "SimplifiedCoreMaintainer":
        """Rebuild a live maintainer from already-valid index state.

        Mirrors
        :meth:`~repro.core.maintainer.OrderedCoreMaintainer.from_index_state`
        with ``d_in`` in place of ``mcd``; used by snapshot restore.
        The ``core`` and ``d_in`` dicts are adopted, not copied.
        """
        maintainer = cls.__new__(cls)
        CoreMaintainer.__init__(maintainer, graph)
        maintainer._audit = audit
        maintainer._rng = random.Random(seed)
        maintainer._core = core
        korder = KOrder(maintainer._rng, sequence=sequence)
        for vertex in order:
            korder.append(core[vertex], vertex)
        korder.deg_plus.update(deg_plus)
        maintainer.korder = korder
        maintainer._d_in = d_in
        maintainer.candidate_visits = 0
        return maintainer

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def core(self) -> Mapping[Vertex, int]:
        return self._core

    @property
    def d_in(self) -> Mapping[Vertex, int]:
        """Maintained same-block predecessor counts (read-only)."""
        return self._d_in

    @property
    def d_out(self) -> Mapping[Vertex, int]:
        """Maintained successor counts — the paper's ``deg+`` (read-only)."""
        return self.korder.deg_plus

    @property
    def mcd(self) -> dict[Vertex, int]:
        """Max-core degrees, *derived* on demand as ``d_in + d_out``.

        The engine never stores or repairs this mapping — the property
        exists so snapshots and analysis helpers written against the
        default engine keep working.
        """
        d_in, d_out = self._d_in, self.korder.deg_plus
        return {v: d_in[v] + d_out[v] for v in d_in}

    def mcd_of(self, vertex: Vertex) -> int:
        """``mcd`` of one vertex, derived O(1) as ``d_in + d_out`` —
        per-vertex readers (the sharded engine's union view) must use
        this instead of :attr:`mcd`, which builds the whole dict."""
        return self._d_in[vertex] + self.korder.deg_plus[vertex]

    @property
    def _aux_degrees(self) -> dict[Vertex, int]:
        """The per-vertex auxiliary degree store the sharded engine
        merges and splits alongside ``core``/``deg+`` — here ``d_in``
        (the default engine's counterpart is ``mcd``).  Valid to move
        between disjoint components untouched: absorbed blocks land
        behind the survivor's, so no same-block predecessor changes."""
        return self._d_in

    @property
    def sequence(self) -> str:
        """The k-order's block backend (``"om"`` or ``"treap"``)."""
        return self.korder.sequence

    @property
    def sequence_stats(self):
        """Cumulative :class:`~repro.structures.sequence.SequenceStats`
        of the k-order's blocks (order queries, relabels, rank walks)."""
        return self.korder.stats

    def order(self) -> list[Vertex]:
        """The maintained k-order as a list."""
        return self.korder.order()

    def degeneracy_order(self) -> list[Vertex]:
        """The maintained k-order read as a degeneracy ordering."""
        return self.korder.order()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> bool:
        if not self._graph.add_vertex(vertex):
            return False
        self._register_vertex(vertex)
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Simplified ``OrderInsert``: cores, k-order and both degrees."""
        for endpoint in (u, v):
            if not self._graph.has_vertex(endpoint):
                self._graph.add_vertex(endpoint)
                self._register_vertex(endpoint)
        v_star, k, visited, evicted = simplified_insert(
            self._graph, self.korder, self._core, self._d_in, u, v
        )
        self.candidate_visits += visited
        if self._audit:
            self.check()
        return UpdateResult(
            "insert", (u, v), k, tuple(v_star), visited, evicted
        )

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        """Simplified ``OrderRemoval``: cores, k-order and both degrees."""
        v_star, k, visited = simplified_remove(
            self._graph, self.korder, self._core, self._d_in, u, v
        )
        self.candidate_visits += visited
        if self._audit:
            self.check()
        return UpdateResult("remove", (u, v), k, tuple(v_star), visited)

    # ------------------------------------------------------------------
    # Run commits (the RunScheduledMaintainer hooks)
    # ------------------------------------------------------------------

    def _insert_run(self, edges) -> list[UpdateResult]:
        """Insert a run of edges with one boundary audit.

        The simplified insert repairs both order-local degrees inside
        its own scan — unlike the default engine there is no ``mcd``
        boundary repair to coalesce — so the run is a plain loop over
        :func:`simplified_insert`, paying per-edge dispatch and (under
        ``audit=True``) the full-index audit once per run instead of
        once per edge.
        """
        graph, core, d_in = self._graph, self._core, self._d_in
        results = []
        for u, v in edges:
            for endpoint in (u, v):
                if not graph.has_vertex(endpoint):
                    graph.add_vertex(endpoint)
                    self._register_vertex(endpoint)
            v_star, k, visited, evicted = simplified_insert(
                graph, self.korder, core, d_in, u, v
            )
            self.candidate_visits += visited
            results.append(
                UpdateResult(
                    "insert", (u, v), k, tuple(v_star), visited, evicted
                )
            )
        if self._audit:
            self.check()
        return results

    def _remove_run(self, edges) -> RemovalRunResult:
        """Remove a run of edges through the batch-native joint cascade.

        Both degrees are maintained inside
        :func:`simplified_remove_run`, so the run's chargeable work is
        the candidate scan alone (``visited``, folded into
        ``candidate_visits``); ``recomputed`` is structurally 0 — the
        simplified engine has no ``mcd`` passes to count.
        """
        run = simplified_remove_run(
            self._graph, self.korder, self._core, self._d_in, edges
        )
        self.candidate_visits += run.visited
        if self._audit:
            self.check()
        return run

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _register_vertex(self, vertex: Vertex) -> None:
        self._core[vertex] = 0
        self.korder.append(0, vertex)
        self.korder.deg_plus[vertex] = 0
        self._d_in[vertex] = 0

    def _forget_vertex(self, vertex: Vertex) -> None:
        if self._core.pop(vertex, None) is None:
            return
        self.korder.forget(vertex)
        self._d_in.pop(vertex, None)

    def _batch_counters(self) -> dict[str, int]:
        """Sequence stats plus the scan counter; no ``mcd`` concept here,
        so batch results carry ``candidate_visits`` in its place."""
        counters = self.korder.stats.as_dict()
        counters["candidate_visits"] = self.candidate_visits
        return counters

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Audit the whole index; raises on violation (used in tests).

        :meth:`KOrder.audit` already validates ``d_out`` (it *is*
        ``deg+``) and Lemma 5.1; on top of that, ``d_in`` is recomputed
        from the live order and compared.
        """
        self.korder.audit(self._graph, self._core)
        expected = compute_d_in(self._graph, self._core, self.order())
        if expected != self._d_in:
            bad = {
                v: (self._d_in.get(v), expected[v])
                for v in expected
                if self._d_in.get(v) != expected[v]
            }
            raise InvariantViolationError(f"d_in out of sync: {bad}")

"""The paper's contribution: k-order based core maintenance.

Public entry points:

* :func:`~repro.core.decomposition.core_numbers` — static core
  decomposition (Algorithm 1, ``O(m + n)``).
* :func:`~repro.core.decomposition.korder_decomposition` — decomposition
  that also emits a k-order and remaining degrees, under one of the three
  generation heuristics of Section VI.
* :class:`~repro.core.korder.KOrder` — the maintained order index.
* :class:`~repro.core.maintainer.OrderedCoreMaintainer` — the dynamic
  engine (``OrderInsert`` / ``OrderRemoval``).
* :class:`~repro.core.simplified.SimplifiedCoreMaintainer` — the
  Guo–Sekerinski simplified variant (no ``mcd``; two order-local
  degrees replace it).
"""

from repro.engine.base import CoreMaintainer, UpdateResult
from repro.core.decomposition import (
    KOrderDecomposition,
    core_numbers,
    korder_decomposition,
)
from repro.core.korder import KOrder
from repro.core.maintainer import OrderedCoreMaintainer
from repro.core.simplified import SimplifiedCoreMaintainer
from repro.core.snapshot import (
    from_snapshot,
    load_snapshot,
    save_snapshot,
    to_snapshot,
)

__all__ = [
    "CoreMaintainer",
    "KOrder",
    "KOrderDecomposition",
    "OrderedCoreMaintainer",
    "SimplifiedCoreMaintainer",
    "UpdateResult",
    "core_numbers",
    "from_snapshot",
    "korder_decomposition",
    "load_snapshot",
    "save_snapshot",
    "to_snapshot",
]

"""Engagement analysis: the k-core as an equilibrium of departures.

A classic social-network model: every user stays engaged while at least
``k`` of their friends are engaged; users below the threshold leave, which
may push others below it.  The stable set that remains is exactly the
``k``-core, and the order of departures is a peeling order.  This module
simulates the cascade explicitly (useful for narratives and tests) and
reads the survivors from a maintained decomposition (useful at scale).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.engine.base import CoreMaintainer
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def departure_cascade(
    graph: DynamicGraph, k: int
) -> tuple[list[Vertex], set[Vertex]]:
    """Simulate the engagement cascade at threshold ``k``.

    Returns ``(departures, survivors)`` where ``departures`` lists leaving
    users in order (degree below ``k`` at leave time) and ``survivors`` is
    the stable set — provably the ``k``-core.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    departures: list[Vertex] = []
    queue = [v for v, d in degrees.items() if d < k]
    gone: set[Vertex] = set(queue)
    while queue:
        v = queue.pop()
        departures.append(v)
        for w in graph.adj[v]:
            if w not in gone:
                degrees[w] -= 1
                if degrees[w] < k:
                    gone.add(w)
                    queue.append(w)
    survivors = {v for v in graph.vertices() if v not in gone}
    return departures, survivors


def engagement_core(maintainer: CoreMaintainer, k: int) -> set[Vertex]:
    """Survivors of the threshold-``k`` cascade, read from maintained cores."""
    return maintainer.k_core(k)


def engagement_strength(
    graph: DynamicGraph, core: Mapping[Vertex, int], vertex: Vertex
) -> int:
    """How many same-or-higher-core neighbors support ``vertex``.

    This is ``mcd`` seen through the engagement lens: the number of
    neighbors whose own engagement level is at least the vertex's.  A
    vertex with strength equal to its core number is *fragile*: losing one
    supporting edge can start a cascade.
    """
    k = core[vertex]
    return sum(1 for w in graph.adj[vertex] if core[w] >= k)


def fragile_vertices(
    graph: DynamicGraph, core: Mapping[Vertex, int]
) -> set[Vertex]:
    """Vertices whose engagement strength equals their core number.

    Exactly the vertices with ``mcd(v) == core(v)`` — the ones ``pcd``
    excludes, and the first to fall when the graph erodes.
    """
    return {
        v
        for v in graph.vertices()
        if engagement_strength(graph, core, v) == core[v]
    }

"""k-core community search.

Given a query vertex ``q``, the k-core community of ``q`` is the connected
component containing ``q`` of the subgraph induced by the ``k``-core —
a standard cohesive "community" answer (Sozio & Gionis style), and one of
the paper's motivating applications.  With a maintainer keeping core
numbers current, these queries stay O(answer size) on evolving graphs.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.engine.base import CoreMaintainer
from repro.errors import VertexNotFoundError

Vertex = Hashable


def kcore_community(
    maintainer: CoreMaintainer, query: Vertex, k: int
) -> set[Vertex]:
    """Connected component of ``query`` inside the ``k``-core.

    Returns the empty set when the query vertex is outside the ``k``-core.
    """
    graph = maintainer.graph
    if not graph.has_vertex(query):
        raise VertexNotFoundError(query)
    core = maintainer.core
    if core[query] < k:
        return set()
    seen = {query}
    frontier = [query]
    while frontier:
        x = frontier.pop()
        for w in graph.adj[x]:
            if w not in seen and core[w] >= k:
                seen.add(w)
                frontier.append(w)
    return seen


def best_community(
    maintainer: CoreMaintainer,
    query: Vertex,
    min_size: int = 2,
) -> tuple[int, set[Vertex]]:
    """The most cohesive community of ``query``: the largest ``k`` whose
    k-core component containing ``query`` still has at least ``min_size``
    members.  Returns ``(k, community)``; ``(0, whole component)`` when
    even ``k = 1`` is too demanding."""
    best_k = 0
    best: Optional[set[Vertex]] = None
    for k in range(maintainer.core_of(query), 0, -1):
        community = kcore_community(maintainer, query, k)
        if len(community) >= min_size:
            best_k, best = k, community
            break
    if best is None:
        best = kcore_community(maintainer, query, 0)
    return best_k, best


def community_timeline(
    maintainer: CoreMaintainer,
    query: Vertex,
    k: int,
    edges: list[tuple[Vertex, Vertex]],
) -> list[int]:
    """Sizes of ``query``'s k-core community after each edge insertion.

    A miniature of the streaming scenario from the paper's introduction:
    edges arrive, the maintainer repairs core numbers incrementally, and
    the community answer is re-read.
    """
    sizes: list[int] = []
    for u, v in edges:
        maintainer.insert_edge(u, v)
        if maintainer.graph.has_vertex(query):
            sizes.append(len(kcore_community(maintainer, query, k)))
        else:
            sizes.append(0)
    return sizes

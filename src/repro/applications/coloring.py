"""Greedy coloring on the maintained degeneracy order.

A classic dividend of keeping a k-order around: processing vertices in
*reverse* k-order, every vertex sees at most ``deg+(v) <= core(v) <=
degeneracy`` already-colored neighbors, so greedy coloring needs at most
``degeneracy + 1`` colors — the best general bound obtainable in linear
time, available here **without recomputing any ordering** because the
maintainer keeps it current under updates.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.maintainer import OrderedCoreMaintainer
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def greedy_coloring_in_order(
    graph: DynamicGraph, order: list[Vertex]
) -> dict[Vertex, int]:
    """Greedy color assignment processing ``order`` left to right."""
    colors: dict[Vertex, int] = {}
    for v in order:
        taken = {colors[w] for w in graph.adj[v] if w in colors}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def greedy_coloring(maintainer: OrderedCoreMaintainer) -> dict[Vertex, int]:
    """Color the maintained graph with at most ``degeneracy + 1`` colors.

    Processes vertices in reverse k-order; each vertex then has at most
    ``deg+`` (≤ its core number) colored neighbors, which bounds its color.
    """
    order = maintainer.degeneracy_order()
    return greedy_coloring_in_order(maintainer.graph, list(reversed(order)))


def verify_coloring(
    graph: DynamicGraph, colors: dict[Vertex, int]
) -> bool:
    """Whether ``colors`` is a proper coloring of ``graph``."""
    for v in graph.vertices():
        if v not in colors:
            return False
        for w in graph.adj[v]:
            if colors[v] == colors.get(w):
                return False
    return True


def chromatic_upper_bound(maintainer: OrderedCoreMaintainer) -> int:
    """The degeneracy+1 bound certified by the maintained order."""
    return maintainer.degeneracy() + 1

"""Densest-subgraph approximation via core peeling.

Charikar's peeling algorithm — repeatedly remove a minimum-degree vertex,
return the densest prefix — is a 1/2-approximation to the densest subgraph
(max average degree / 2).  The peel order is exactly a k-order, so the
machinery already exists; a maintained core decomposition additionally
gives a certified upper bound, since the density of any subgraph is at
most its degeneracy:

    max_density <= degeneracy <= 2 * max_density.

:func:`dynamic_densest` tracks a maintained bound and re-peels lazily only
when the bound moved — the pattern [8] of the paper's related work
motivates for evolving graphs.
"""

from __future__ import annotations

from typing import Hashable

from repro.engine.base import CoreMaintainer
from repro.core.decomposition import korder_decomposition
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def density(graph: DynamicGraph, vertices: set[Vertex]) -> float:
    """Average edge density ``|E(S)| / |S|`` of an induced subgraph."""
    if not vertices:
        return 0.0
    inner = 0
    for v in vertices:
        for w in graph.adj[v]:
            if w in vertices:
                inner += 1
    return (inner // 2) / len(vertices)


def densest_subgraph_peel(graph: DynamicGraph) -> tuple[set[Vertex], float]:
    """Charikar's 1/2-approximation: densest suffix of a min-degree peel.

    Returns ``(vertex set, density)``; the empty graph yields
    ``(set(), 0.0)``.
    """
    if graph.n == 0:
        return set(), 0.0
    order = korder_decomposition(graph, policy="small").order
    # Walking the peel backwards, track density of every suffix.
    position = {v: i for i, v in enumerate(order)}
    best_density = -1.0
    best_cut = len(order)
    members = 0
    inner_edges = 0
    for i in range(len(order) - 1, -1, -1):
        v = order[i]
        members += 1
        for w in graph.adj[v]:
            if position[w] > i:
                inner_edges += 1
        current = inner_edges / members
        if current > best_density:
            best_density = current
            best_cut = i
    return set(order[best_cut:]), max(best_density, 0.0)


class dynamic_densest:
    """Lazily maintained densest-subgraph approximation.

    Wraps a :class:`CoreMaintainer`; after every update the caller asks for
    :meth:`current`, which re-peels only when the degeneracy bound changed
    since the last peel (density can only have moved if the bound did not
    certify it anymore).  The answer is always within the peel's 1/2
    guarantee for the *current* graph because a stale answer is re-checked
    against the live bound.
    """

    def __init__(self, maintainer: CoreMaintainer) -> None:
        self._maintainer = maintainer
        self._cached: tuple[set[Vertex], float] | None = None
        self._cached_degeneracy = -1

    def invalidate(self) -> None:
        """Force the next :meth:`current` call to re-peel."""
        self._cached = None
        self._cached_degeneracy = -1

    def current(self) -> tuple[set[Vertex], float]:
        """The current approximate densest subgraph and its density."""
        bound = self._maintainer.degeneracy()
        if self._cached is not None and bound == self._cached_degeneracy:
            vertices, _ = self._cached
            if all(self._maintainer.graph.has_vertex(v) for v in vertices):
                # Density may have drifted with edge updates: recompute the
                # number only (cheap), keep the vertex set.
                fresh = density(self._maintainer.graph, vertices)
                if 2.0 * fresh >= bound:
                    self._cached = (vertices, fresh)
                    return self._cached
        self._cached = densest_subgraph_peel(self._maintainer.graph)
        self._cached_degeneracy = bound
        return self._cached

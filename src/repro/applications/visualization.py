"""Core-decomposition fingerprints: text-mode graph visualization.

The paper's first motivating application is large-graph visualization via
the k-core decomposition (its refs [2, 3]: onion-ring fingerprints of
internet topology).  This module renders those fingerprints without any
plotting dependency:

* :func:`shell_layout` — polar coordinates placing each vertex on a ring
  whose radius shrinks as coreness grows (the classic k-core fingerprint);
* :func:`render_shell_histogram` — a terminal bar chart of shell sizes;
* :func:`render_fingerprint` — an ASCII density canvas of the layout,
  suitable for logging snapshots of an evolving graph.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Mapping, Optional

from repro.analysis.kcore_views import core_spectrum, degeneracy

Vertex = Hashable


def shell_layout(
    core: Mapping[Vertex, int],
    seed: Optional[int] = 0,
) -> dict[Vertex, tuple[float, float]]:
    """Place vertices on concentric rings by coreness.

    The max-core sits at the center (radius 0..), each lower shell on a
    proportionally larger ring; angles are randomized but deterministic
    for a given seed.  Returns ``{vertex: (x, y)}`` with coordinates in
    ``[-1, 1]``.
    """
    rng = random.Random(seed)
    top = max(degeneracy(core), 1)
    layout: dict[Vertex, tuple[float, float]] = {}
    for v, k in core.items():
        radius = 1.0 - (k / top) * 0.9  # max-core near center, shell 0 at rim
        angle = rng.random() * 2.0 * math.pi
        jitter = 1.0 + (rng.random() - 0.5) * 0.08
        r = radius * jitter
        layout[v] = (r * math.cos(angle), r * math.sin(angle))
    return layout


def render_shell_histogram(
    core: Mapping[Vertex, int], width: int = 50
) -> str:
    """Terminal bar chart: one row per k-shell, bar length ∝ shell size."""
    spectrum = core_spectrum(core)
    if not spectrum:
        return "(empty graph)"
    peak = max(spectrum.values())
    lines = []
    for k in sorted(spectrum):
        count = spectrum[k]
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"k={k:<3d} {bar} {count}")
    return "\n".join(lines)


def render_fingerprint(
    core: Mapping[Vertex, int],
    rows: int = 21,
    cols: int = 43,
    seed: Optional[int] = 0,
) -> str:
    """ASCII density canvas of the shell layout.

    Each cell shows the highest coreness that landed in it (as a digit,
    ``*`` for 10+), giving the onion-ring fingerprint at a glance: dense
    high-k nucleus in the middle, sparse shells at the rim.
    """
    if not core:
        return "(empty graph)"
    layout = shell_layout(core, seed=seed)
    canvas = [[-1] * cols for _ in range(rows)]
    for v, (x, y) in layout.items():
        col = int((x + 1.0) / 2.0 * (cols - 1))
        row = int((y + 1.0) / 2.0 * (rows - 1))
        col = min(max(col, 0), cols - 1)
        row = min(max(row, 0), rows - 1)
        canvas[row][col] = max(canvas[row][col], core[v])
    def glyph(k: int) -> str:
        if k < 0:
            return " "
        if k >= 10:
            return "*"
        return str(k)
    return "\n".join("".join(glyph(k) for k in line) for line in canvas)

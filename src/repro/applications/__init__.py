"""Application layer: the use cases the paper's introduction motivates.

Each module consumes a maintained core decomposition, demonstrating why
fast core *maintenance* matters: these queries are answered continuously
over evolving graphs.

* :mod:`repro.applications.community` — k-core community search;
* :mod:`repro.applications.densest` — densest-subgraph approximation;
* :mod:`repro.applications.engagement` — engagement cascades / unraveling;
* :mod:`repro.applications.resilience` — core resilience under failures.
"""

from repro.applications.coloring import greedy_coloring, verify_coloring
from repro.applications.community import best_community, kcore_community
from repro.applications.densest import densest_subgraph_peel, dynamic_densest
from repro.applications.engagement import departure_cascade, engagement_core
from repro.applications.resilience import core_resilience_profile
from repro.applications.visualization import (
    render_fingerprint,
    render_shell_histogram,
    shell_layout,
)

__all__ = [
    "best_community",
    "core_resilience_profile",
    "greedy_coloring",
    "verify_coloring",
    "densest_subgraph_peel",
    "departure_cascade",
    "dynamic_densest",
    "engagement_core",
    "kcore_community",
    "render_fingerprint",
    "render_shell_histogram",
    "shell_layout",
]

"""Core resilience: how the coreness structure degrades under edge loss.

Built directly on ``OrderRemoval``: edges fail one by one (randomly or
adversarially targeting the densest region) and the maintainer repairs
core numbers incrementally — the removal-heavy workload where the paper's
algorithm shines (Table II, right half).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.engine.base import CoreMaintainer

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass
class ResilienceProfile:
    """Trajectory of the core structure as edges fail."""

    removed_edges: list[Edge] = field(default_factory=list)
    degeneracy: list[int] = field(default_factory=list)
    max_core_size: list[int] = field(default_factory=list)
    total_demotions: int = 0

    def steps(self) -> int:
        return len(self.removed_edges)


def _targeted_order(maintainer: CoreMaintainer, edges: list[Edge]) -> list[Edge]:
    """Edges sorted to hit the densest structure first: descending by the
    smaller endpoint coreness (ties broken deterministically)."""
    core = maintainer.core
    return sorted(
        edges,
        key=lambda e: (-min(core[e[0]], core[e[1]]), repr(e)),
    )


def core_resilience_profile(
    maintainer: CoreMaintainer,
    failures: int,
    mode: str = "random",
    seed: Optional[int] = 0,
) -> ResilienceProfile:
    """Remove ``failures`` edges and record the structural decay.

    Parameters
    ----------
    maintainer:
        Any engine; its graph is modified in place.
    failures:
        Number of edge removals (capped at the number of edges).
    mode:
        ``"random"`` (uniform failures) or ``"targeted"`` (densest-first
        attack, re-sorted once up front).
    seed:
        RNG seed for random mode.
    """
    if mode not in ("random", "targeted"):
        raise ValueError(f"unknown failure mode {mode!r}")
    edges = list(maintainer.graph.edges())
    failures = min(failures, len(edges))
    if mode == "targeted":
        plan = _targeted_order(maintainer, edges)[:failures]
    else:
        rng = random.Random(seed)
        rng.shuffle(edges)
        plan = edges[:failures]
    profile = ResilienceProfile()
    for u, v in plan:
        result = maintainer.remove_edge(u, v)
        profile.removed_edges.append((u, v))
        profile.total_demotions += len(result.changed)
        top = maintainer.degeneracy()
        profile.degeneracy.append(top)
        profile.max_core_size.append(len(maintainer.k_core(top)) if top else 0)
    return profile

"""Command-line interface: ``repro <experiment> [options]``.

Examples
--------
List the datasets and their stand-in statistics::

    repro table1

Reproduce the Fig. 2 search-space ratios on three datasets with a larger
update stream::

    repro fig2 --datasets patents,pokec,ca --updates 2000

Run the whole evaluation at double scale::

    repro all --scale 2.0
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench import experiments, reporting
from repro.engine.registry import DEFAULT_ENGINE
from repro.graphs.datasets import dataset_names


def _engine_name(value: str) -> str:
    from repro.engine.registry import available_engines, is_engine_name

    if is_engine_name(value):
        return value
    raise argparse.ArgumentTypeError(
        f"unknown engine {value!r}; known: "
        f"{', '.join(available_engines())} (plus any 'trav-<h>', h >= 2)"
    )


def _positive_int(value: str) -> int:
    workers = int(value)
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {workers}"
        )
    return workers


def _dataset_list(value: str) -> list[str]:
    names = [n.strip() for n in value.split(",") if n.strip()]
    known = set(dataset_names())
    for name in names:
        if name not in known:
            raise argparse.ArgumentTypeError(
                f"unknown dataset {name!r}; known: {', '.join(sorted(known))}"
            )
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'A Fast Order-Based "
        "Approach for Core Maintenance' (ICDE 2017).",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "list", "table1", "table2", "table3",
            "fig1", "fig2", "fig5", "fig9", "fig10", "fig11", "fig12",
            "ablation", "batch", "validate", "recover", "log-stat",
            "serve", "gen", "replay", "all",
        ],
        help="which table/figure (or utility) to run",
    )
    parser.add_argument(
        "--engine", default=DEFAULT_ENGINE, type=_engine_name,
        help="engine registry name for 'batch'/'validate' "
        "(order, order-om, order-treap, order-large, order-random, "
        "order-sharded, naive, trav-<h>)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=100,
        help="batch: ops per batch in the batched replay",
    )
    parser.add_argument(
        "--mix", type=float, default=0.2,
        help="batch: probability of a removal after each insertion",
    )
    parser.add_argument(
        "--partition", action="store_true",
        help="batch: split each batch into independent regions before "
        "applying (order engines)",
    )
    parser.add_argument(
        "--parallel", type=_positive_int, default=None, metavar="WORKERS",
        help="batch: opt-in region-parallel worker pool for the order "
        "engines (implies --partition; with --engine order-sharded the "
        "workers commit per-shard, without the engine-wide lock)",
    )
    parser.add_argument(
        "--datasets",
        type=_dataset_list,
        default=None,
        help="comma-separated dataset names (default: all 11)",
    )
    parser.add_argument(
        "--updates", type=int, default=experiments.DEFAULT_UPDATES,
        help="update edges per dataset (paper: 100000)",
    )
    parser.add_argument(
        "--hops", type=lambda s: tuple(int(h) for h in s.split(",")),
        default=(2, 3), help="traversal hop counts, e.g. 2,3,4,5,6",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset size multiplier (default: REPRO_SCALE or 1.0)",
    )
    parser.add_argument(
        "--log", default=None, metavar="PATH",
        help="recover/log-stat: path to a write-ahead commit log",
    )
    parser.add_argument(
        "--compact", action="store_true",
        help="recover: snapshot the recovered state and truncate the log",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="recover/log-stat: machine-readable JSON on stdout",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="serve: bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="serve: TCP port (default 0 = pick a free port)",
    )
    parser.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help="serve: directory for per-session commit logs (durable, "
        "recoverable sessions; omit for memory-only sessions)",
    )
    parser.add_argument(
        "--fsync", default="always", choices=["always", "interval", "never"],
        help="serve: WAL fsync policy for session logs",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None,
        help="serve: stop after this many seconds (default: run forever)",
    )
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="gen: scenario family to generate (see repro.scenarios; "
        "e.g. burst, sliding-window, flash-crowd, relabel-storm, "
        "shard-merge-storm, mixed)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="gen: write the trace here (default: stdout, for piping "
        "into 'repro replay')",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay: read the trace here (default: stdin)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="replay: verify the trace end to end, replay it across "
        "--engines asserting identical per-tick core maps, and — for a "
        "registered scenario family — regenerate from the header and "
        "assert the bytes match",
    )
    parser.add_argument(
        "--engines", default="order,order-simplified", metavar="NAMES",
        help="replay --check: comma-separated engine list that must "
        "agree (default: order,order-simplified)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--groups", type=int, default=10, help="fig12: number of groups"
    )
    parser.add_argument(
        "--group-size", type=int, default=100, help="fig12: edges per group"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = args.datasets or list(dataset_names())
    common = dict(scale=args.scale, seed=args.seed)

    if args.experiment == "list":
        rows = experiments.table1(names, scale=args.scale, seed=args.seed)
        print(reporting.render_table1(rows))
        return 0
    if args.experiment == "table1":
        print(reporting.render_table1(
            experiments.table1(names, **common)))
        return 0
    if args.experiment in ("fig1", "fig2"):
        results = [
            experiments.insertion_visits(n, args.updates, **common)
            for n in names
        ]
        renderer = (
            reporting.render_fig1
            if args.experiment == "fig1"
            else reporting.render_fig2
        )
        print(renderer(results))
        return 0
    if args.experiment == "fig5":
        pair = args.datasets or ["patents", "orkut"]
        print(reporting.render_fig5(
            [experiments.fig5(n, **common) for n in pair]))
        return 0
    if args.experiment == "fig9":
        print(reporting.render_fig9(
            [experiments.fig9(n, args.updates, **common) for n in names]))
        return 0
    if args.experiment == "fig10":
        print(reporting.render_fig10(
            [experiments.fig10a(n, **common) for n in names],
            "core CDF"))
        print()
        print(reporting.render_fig10(
            [experiments.fig10b(n, args.updates, **common) for n in names],
            "K CDF"))
        return 0
    if args.experiment == "table2":
        print(reporting.render_table2([
            experiments.table2(n, args.updates, args.hops, **common)
            for n in names
        ]))
        return 0
    if args.experiment == "table3":
        print(reporting.render_table3(
            [experiments.table3(n, args.hops, **common) for n in names]))
        return 0
    if args.experiment == "fig11":
        trio = args.datasets or ["patents", "orkut", "livejournal"]
        print(reporting.render_fig11([
            experiments.fig11(n, n_updates=args.updates, **common)
            for n in trio
        ]))
        return 0
    if args.experiment == "fig12":
        target = (args.datasets or ["patents"])[0]
        print(reporting.render_fig12([
            experiments.fig12(
                target, args.groups, args.group_size, p, **common
            )
            for p in (0.0, 0.1, 0.2)
        ]))
        return 0
    if args.experiment == "ablation":
        from repro.bench.reporting import format_table

        rows = []
        for name in names:
            result = experiments.ablation_jump(name, args.updates, **common)
            rows.append(
                [
                    name,
                    result.visited,
                    result.scanned,
                    result.steps_saved,
                    f"{result.jump_seconds:.3f}",
                    f"{result.scan_seconds:.3f}",
                ]
            )
        print(
            format_table(
                ["dataset", "|V+|", "scan steps", "steps saved",
                 "jump s", "scan s"],
                rows,
            )
        )
        return 0
    if args.experiment == "batch":
        targets = args.datasets or ["patents", "gowalla", "ca"]
        engines = ["order", "trav-2", "naive"]
        if args.engine not in engines:
            engines.append(args.engine)
        engine_opts = {}
        if args.partition:
            engine_opts["partition"] = True
        if args.parallel:
            engine_opts["parallel"] = args.parallel
        print(reporting.render_batch([
            experiments.batch_throughput(
                n, args.updates, args.batch_size, p=args.mix,
                engines=engines, engine_opts=engine_opts or None, **common,
            )
            for n in targets
        ]))
        return 0
    if args.experiment == "validate":
        from repro.analysis.validation import validate_maintainer
        from repro.bench.workloads import make_workload
        from repro.graphs.datasets import load_dataset
        from repro.service import CoreService

        from repro.bench.runner import run_updates

        failures = 0
        for name in names:
            dataset = load_dataset(name, scale=args.scale, seed=args.seed)
            workload = make_workload(dataset, args.updates, seed=args.seed)
            service = CoreService.open(
                workload.base_graph(), engine=args.engine, seed=args.seed
            )
            # Per-edge replay on service.engine on purpose: validate
            # exercises the paper's per-edge OrderInsert/OrderRemoval
            # paths, which the batch pipeline's coalesced runs bypass.
            run_updates(service.engine, workload.update_edges, "insert")
            run_updates(
                service.engine,
                list(reversed(workload.update_edges)),
                "remove",
            )
            report = validate_maintainer(service.engine)
            status = "ok" if report.ok else "FAILED"
            print(f"{name}: {status}")
            if not report.ok:
                failures += 1
        return 1 if failures else 0
    if args.experiment in ("recover", "log-stat"):
        # Exit codes (scriptable health checks): 0 clean log, 3 torn
        # tail (recoverable: crash mid-append), 4 corruption beyond the
        # tail (LogCorruptionError), 1 other failures, 2 usage error.
        if not args.log:
            print(
                f"{args.experiment}: --log PATH is required", file=sys.stderr
            )
            return 2
        import json as _json

        from repro.errors import LogCorruptionError, ServiceError
        from repro.service import CoreService, log_stat

        if args.experiment == "log-stat":
            try:
                stat = log_stat(args.log)
            except LogCorruptionError as exc:
                if args.json:
                    print(_json.dumps(
                        {"path": args.log, "error": str(exc),
                         "corrupt": True}
                    ))
                print(f"log-stat: {exc}", file=sys.stderr)
                return 4
            except (OSError, ServiceError) as exc:
                print(f"log-stat: {exc}", file=sys.stderr)
                return 1
            if args.json:
                print(_json.dumps(stat))
            else:
                for key, value in stat.items():
                    print(f"{key}: {value}")
            return 3 if stat["torn_bytes"] else 0
        try:
            service = CoreService.recover(args.log)
        except LogCorruptionError as exc:
            if args.json:
                print(_json.dumps(
                    {"path": args.log, "error": str(exc), "corrupt": True}
                ))
            print(f"recover: {exc}", file=sys.stderr)
            return 4
        except (OSError, ServiceError) as exc:
            print(f"recover: {exc}", file=sys.stderr)
            return 1
        report = service.recovery
        if args.json:
            payload = {
                "path": args.log,
                "engine": service.engine.name,
                "replayed": report.replayed,
                "skipped": report.skipped,
                "torn_bytes": report.torn_bytes,
                "from_snapshot": report.from_snapshot,
                "vertices": service.engine.graph.n,
                "edges": service.engine.graph.m,
                "degeneracy": service.engine.degeneracy(),
            }
            if args.compact:
                payload["snapshot"] = str(service.compact())
            print(_json.dumps(payload))
            service.close()
            return 3 if report.torn_bytes else 0
        print(f"recovered: {args.log}")
        print(f"engine: {service.engine.name}")
        print(
            f"replayed: {report.replayed}  skipped: {report.skipped}  "
            f"torn bytes: {report.torn_bytes}  "
            f"from snapshot: {report.from_snapshot}"
        )
        print(
            f"graph: {service.engine.graph.n} vertices, "
            f"{service.engine.graph.m} edges, "
            f"degeneracy {service.engine.degeneracy()}"
        )
        if args.compact:
            snapshot = service.compact()
            print(f"compacted: snapshot at {snapshot}")
        service.close()
        return 3 if report.torn_bytes else 0
    if args.experiment == "serve":
        import asyncio

        from repro.service import CoreServer

        async def _serve() -> int:
            async with CoreServer(
                engine=args.engine,
                seed=args.seed,
                log_dir=args.log_dir,
                fsync=args.fsync,
            ) as server:
                host, port = await server.start(args.host, args.port)
                durability = (
                    f"log_dir={args.log_dir} fsync={args.fsync}"
                    if args.log_dir
                    else "memory-only (no --log-dir: crashes degrade "
                    "sessions permanently)"
                )
                print(
                    f"repro serve: listening on {host}:{port} "
                    f"(engine={args.engine}, {durability})",
                    flush=True,
                )
                try:
                    if args.max_seconds is not None:
                        await asyncio.sleep(args.max_seconds)
                    else:
                        await asyncio.Event().wait()
                except asyncio.CancelledError:
                    pass
            return 0

        try:
            return asyncio.run(_serve())
        except KeyboardInterrupt:
            return 0
    if args.experiment == "gen":
        import json as _json

        from repro import scenarios as sc
        from repro.errors import ScenarioError

        if not args.scenario:
            print(
                "gen: --scenario NAME is required (known: "
                f"{', '.join(sc.available_scenarios())})",
                file=sys.stderr,
            )
            return 2
        try:
            scenario = sc.make_scenario(
                args.scenario, seed=args.seed, scale=args.scale or 1.0
            )
        except ScenarioError as exc:
            print(f"gen: {exc}", file=sys.stderr)
            return 2
        written = sc.record(scenario, args.out or sys.stdout.buffer)
        summary = dict(
            scenario.describe(), bytes=written, target=args.out or "<stdout>"
        )
        if args.json and args.out:
            print(_json.dumps(summary))
        else:
            # stdout may be carrying the trace — the summary goes to
            # stderr so 'repro gen | repro replay' pipes stay clean.
            print(
                f"gen: {scenario.name} seed={scenario.seed} "
                f"ticks={scenario.n_ticks} ops={scenario.n_ops} "
                f"bytes={written} -> {summary['target']}",
                file=sys.stderr,
            )
        return 0
    if args.experiment == "replay":
        import json as _json
        from pathlib import Path

        from repro import scenarios as sc
        from repro.engine.registry import is_engine_name
        from repro.errors import ScenarioError, TraceError

        # Exit codes (scriptable, mirroring recover/log-stat): 0 ok,
        # 2 usage error, 4 bad trace bytes, 5 replay disagreement.
        try:
            if args.trace:
                data = Path(args.trace).read_bytes()
                origin = repr(args.trace)
            else:
                data = sys.stdin.buffer.read()
                origin = "<stdin>"
        except OSError as exc:
            print(f"replay: {exc}", file=sys.stderr)
            return 1
        try:
            scenario = sc.loads(data, origin=origin)
        except TraceError as exc:
            print(f"replay: {exc}", file=sys.stderr)
            return 4
        if args.check:
            engines = [
                e.strip() for e in args.engines.split(",") if e.strip()
            ]
        else:
            engines = [args.engine]
        bad = [e for e in engines if not is_engine_name(e)]
        if bad or not engines:
            print(
                f"replay: unknown engines {', '.join(bad) or '(none)'}",
                file=sys.stderr,
            )
            return 2
        try:
            reports = sc.replay_all(
                scenario, engines, seed=args.seed, check=args.check
            )
        except ScenarioError as exc:
            print(f"replay: {exc}", file=sys.stderr)
            return 5
        if args.check and scenario.name in sc.SCENARIOS:
            regenerated = sc.make_scenario(
                scenario.name, seed=scenario.seed, **scenario.params
            )
            if sc.dumps(regenerated) != data:
                print(
                    f"replay: trace bytes do not match regenerating "
                    f"{scenario.name!r} with seed {scenario.seed}",
                    file=sys.stderr,
                )
                return 5
        primary = reports[engines[0]]
        if args.json:
            payload = primary.summary()
            payload["engines"] = engines
            payload["checked"] = bool(args.check)
            print(_json.dumps(payload))
        else:
            s = primary.summary()
            checked = (
                f" (agreement across {', '.join(engines)} checked)"
                if args.check
                else ""
            )
            print(
                f"replay: {s['scenario']} via {s['engine']}: "
                f"{s['ticks']} ticks, {s['ops']} ops "
                f"({s['inserts']} ins / {s['removes']} rm) in "
                f"{s['elapsed_seconds']:.3f}s — "
                f"{s['ops_per_second']:.0f} ops/s, final digest "
                f"{s['final_digest']}{checked}"
            )
        return 0
    if args.experiment == "all":
        results = experiments.run_all(
            names, args.updates, args.hops, **common
        )
        print(reporting.render_table1(results["table1"]))
        print()
        print(reporting.render_fig1(results["fig1_fig2"]))
        print()
        print(reporting.render_fig2(results["fig1_fig2"]))
        print()
        print(reporting.render_fig5(results["fig5"]))
        print()
        print(reporting.render_fig9(results["fig9"]))
        print()
        print(reporting.render_fig10(results["fig10a"], "core CDF"))
        print()
        print(reporting.render_fig10(results["fig10b"], "K CDF"))
        print()
        print(reporting.render_table2(results["table2"]))
        print()
        print(reporting.render_table3(results["table3"]))
        print()
        print(reporting.render_fig11(results["fig11"]))
        print()
        print(reporting.render_fig12(results["fig12"]))
        print()
        print(f"total: {results['elapsed_seconds']:.1f}s")
        return 0
    return 1  # pragma: no cover - argparse guards choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

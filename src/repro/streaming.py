"""Sliding-window core monitoring over timestamped edge streams.

The paper motivates core maintenance with continuously evolving graphs;
the canonical deployment shape is a **sliding window**: an edge is live
for ``window`` time units after it arrives, then expires.  Every arrival
is an ``OrderInsert``, every expiry an ``OrderRemoval`` — precisely the
mixed workload of Fig. 12, driven by time instead of probability.

:class:`SlidingWindowCoreMonitor` wraps an engine with that lifecycle and
exposes the live core structure plus per-event statistics.  Duplicate
arrivals of a live edge refresh its expiry instead of inserting twice
(multigraphs are out of k-core scope).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.core.maintainer import OrderedCoreMaintainer
from repro.errors import WorkloadError
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def _norm(u: Vertex, v: Vertex) -> Edge:
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class WindowStats:
    """Counters accumulated over a monitor's lifetime."""

    arrivals: int = 0
    refreshes: int = 0
    expiries: int = 0
    promotions: int = 0
    demotions: int = 0
    degeneracy_timeline: list[tuple[float, int]] = field(default_factory=list)


class SlidingWindowCoreMonitor:
    """Maintain core numbers of the last ``window`` time units of edges.

    Parameters
    ----------
    window:
        Lifetime of an edge after its (re-)arrival.
    seed:
        Seed for the underlying order-based engine.

    Events must be fed in non-decreasing timestamp order via
    :meth:`observe`; :meth:`advance_to` expires edges without an arrival.
    """

    def __init__(self, window: float, seed: Optional[int] = 0) -> None:
        if window <= 0:
            raise WorkloadError(f"window must be positive, got {window}")
        self.window = window
        self._engine = OrderedCoreMaintainer(DynamicGraph(), seed=seed)
        #: live edge -> expiry time
        self._expiry: dict[Edge, float] = {}
        #: expiry queue: (expiry_time, edge); stale entries skipped lazily
        self._queue: collections.deque[tuple[float, Edge]] = collections.deque()
        self._now = float("-inf")
        self.stats = WindowStats()

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Timestamp of the most recent event."""
        return self._now

    @property
    def engine(self) -> OrderedCoreMaintainer:
        """The underlying maintainer (read-only use)."""
        return self._engine

    def live_edges(self) -> int:
        """Number of edges currently inside the window."""
        return len(self._expiry)

    def core_of(self, vertex: Vertex) -> int:
        """Current core number (0 for unseen vertices)."""
        core = self._engine.core
        return core[vertex] if vertex in core else 0

    def k_core(self, k: int) -> set[Vertex]:
        """Vertices currently in the ``k``-core of the window graph."""
        return self._engine.k_core(k)

    def degeneracy(self) -> int:
        """Current maximum core number."""
        return self._engine.degeneracy()

    # ------------------------------------------------------------------

    def observe(self, u: Vertex, v: Vertex, t: float) -> None:
        """Feed one edge arrival at time ``t`` (non-decreasing).

        Expires due edges first, then inserts (or refreshes) ``(u, v)``.
        """
        if t < self._now:
            raise WorkloadError(
                f"events must be time-ordered: {t} after {self._now}"
            )
        self.advance_to(t)
        edge = _norm(u, v)
        if edge in self._expiry:
            self.stats.refreshes += 1
        else:
            result = self._engine.insert_edge(*edge)
            self.stats.arrivals += 1
            self.stats.promotions += len(result.changed)
        expiry = t + self.window
        self._expiry[edge] = expiry
        self._queue.append((expiry, edge))
        self.stats.degeneracy_timeline.append((t, self.degeneracy()))

    def advance_to(self, t: float) -> int:
        """Expire every edge whose lifetime ended by time ``t``.

        Returns the number of edges removed.
        """
        if t < self._now:
            raise WorkloadError(
                f"cannot rewind time from {self._now} to {t}"
            )
        self._now = t
        removed = 0
        queue = self._queue
        while queue and queue[0][0] <= t:
            expiry, edge = queue.popleft()
            if self._expiry.get(edge) != expiry:
                continue  # refreshed since this entry was queued
            del self._expiry[edge]
            result = self._engine.remove_edge(*edge)
            self.stats.expiries += 1
            self.stats.demotions += len(result.changed)
            removed += 1
        return removed

    def drain(self) -> int:
        """Expire everything (end of stream); returns edges removed."""
        return self.advance_to(
            max((e for e, _ in self._queue), default=self._now)
        )

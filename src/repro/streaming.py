"""Sliding-window core monitoring over timestamped edge streams.

The paper motivates core maintenance with continuously evolving graphs;
the canonical deployment shape is a **sliding window**: an edge is live
for ``window`` time units after it arrives, then expires.  Every arrival
is an insertion, every expiry a removal — precisely the mixed workload of
Fig. 12, driven by time instead of probability.

:class:`SlidingWindowCoreMonitor` is a *driver* over the service façade
(:class:`repro.service.CoreService` — the one public entry point): each
tick's arrivals and expiries commit as one service transaction, and the
monitor's promotion/demotion statistics are a plain event **subscriber**
on the service's core-event stream — the same
:meth:`~repro.service.CoreService.subscribe` hook any application can
use.  Feed batched ticks with :meth:`SlidingWindowCoreMonitor.observe_many`
(see :meth:`repro.graphs.temporal.TemporalEdgeStream.ticks` for grouping
a stream at its natural tick granularity).  Duplicate arrivals of a live
edge refresh its expiry instead of inserting twice (multigraphs are out
of k-core scope).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

from repro.engine.base import CoreMaintainer
from repro.engine.registry import DEFAULT_ENGINE
from repro.engine.batch import Batch, normalize_edge
from repro.errors import WorkloadError
from repro.service import CoreEvent, CoreService

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def _norm(u: Vertex, v: Vertex) -> Edge:
    """Stable canonical orientation of a stream edge.

    Delegates to :func:`repro.engine.batch.normalize_edge`: vertex
    ordering when comparable, a ``(type name, repr)`` key otherwise —
    never bare ``repr``, whose formatting must not decide edge identity.
    """
    return normalize_edge(u, v)


@dataclass
class WindowStats:
    """Counters accumulated over a monitor's lifetime."""

    arrivals: int = 0
    refreshes: int = 0
    expiries: int = 0
    promotions: int = 0
    demotions: int = 0
    degeneracy_timeline: list[tuple[float, int]] = field(default_factory=list)


class SlidingWindowCoreMonitor:
    """Maintain core numbers of the last ``window`` time units of edges.

    Parameters
    ----------
    window:
        Lifetime of an edge after its (re-)arrival.
    seed:
        Seed for engines that use randomness (ignored by the rest).
    engine:
        Registry name of the maintenance engine (default
        :data:`~repro.engine.registry.DEFAULT_ENGINE`);
        any extra keyword arguments are passed to the engine factory.
    service:
        An already-open :class:`~repro.service.CoreService` to drive
        instead of opening one (its graph must still be edgeless — the
        window starts empty).  Mutually exclusive with engine options.

    Events must be fed in non-decreasing timestamp order via
    :meth:`observe` / :meth:`observe_many`; :meth:`advance_to` expires
    edges without an arrival.  The promotion/demotion stats are driven
    by a service subscription, so they stay exact under any engine and
    batch schedule.
    """

    def __init__(
        self,
        window: float,
        seed: Optional[int] = 0,
        engine: str = DEFAULT_ENGINE,
        service: Optional[CoreService] = None,
        **engine_opts,
    ) -> None:
        if window <= 0:
            raise WorkloadError(f"window must be positive, got {window}")
        self.window = window
        if service is None:
            service = CoreService.open(engine=engine, seed=seed, **engine_opts)
        elif engine != DEFAULT_ENGINE or seed != 0 or engine_opts:
            # An adopted service already has its engine; silently
            # ignoring configuration here would be exactly the option
            # swallowing make_engine refuses.
            raise WorkloadError(
                "pass either service= or engine configuration "
                "(engine/seed/engine options), not both"
            )
        elif service.graph.m:
            raise WorkloadError(
                "the window starts empty: the adopted service already "
                f"holds {service.graph.m} edges"
            )
        self._service = service
        self._subscription = service.subscribe(self._count_event)
        #: live edge -> expiry time
        self._expiry: dict[Edge, float] = {}
        #: expiry queue: (expiry_time, edge); stale entries skipped lazily
        self._queue: collections.deque[tuple[float, Edge]] = collections.deque()
        self._now = float("-inf")
        self.stats = WindowStats()

    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Timestamp of the most recent event."""
        return self._now

    @property
    def service(self) -> CoreService:
        """The underlying service session (subscribe, query, save)."""
        return self._service

    @property
    def engine(self) -> CoreMaintainer:
        """The service's engine (read-only use; kept for compatibility)."""
        return self._service.engine

    def live_edges(self) -> int:
        """Number of edges currently inside the window."""
        return len(self._expiry)

    def core_of(self, vertex: Vertex) -> int:
        """Current core number (0 for unseen vertices)."""
        return self._service.core(vertex, 0)

    def k_core(self, k: int) -> set[Vertex]:
        """Vertices currently in the ``k``-core of the window graph."""
        return self._service.kcore(k).vertices()

    def degeneracy(self) -> int:
        """Current maximum core number."""
        return self._service.degeneracy()

    def _count_event(self, event: CoreEvent) -> None:
        """The stats subscriber: fold each commit's net core deltas in."""
        if event.new_core > event.old_core:
            self.stats.promotions += event.new_core - event.old_core
        else:
            self.stats.demotions += event.old_core - event.new_core

    # ------------------------------------------------------------------

    def observe(self, u: Vertex, v: Vertex, t: float) -> None:
        """Feed one edge arrival at time ``t`` (non-decreasing).

        Expires due edges first, then inserts (or refreshes) ``(u, v)``.
        """
        self.observe_many([(u, v)], t)

    def observe_many(self, pairs: Iterable[tuple[Vertex, Vertex]], t: float) -> None:
        """Feed several arrivals sharing timestamp ``t`` as one batch.

        Expiry of due edges and insertion of the genuinely new arrivals
        each commit through one service transaction — one engine batch
        per tick, however many edges arrive.
        """
        if t < self._now:
            raise WorkloadError(
                f"events must be time-ordered: {t} after {self._now}"
            )
        self.advance_to(t)
        expiry = t + self.window
        # Normalize (and thereby validate) every pair before committing
        # any monitor state: a bad pair mid-list must not leave edges
        # queued for expiry that the engine never saw.
        edges = [_norm(u, v) for u, v in pairs]
        fresh: list[Edge] = []
        fresh_set: set[Edge] = set()
        for edge in edges:
            if edge in self._expiry or edge in fresh_set:
                self.stats.refreshes += 1
            else:
                fresh.append(edge)
                fresh_set.add(edge)
            self._expiry[edge] = expiry
            self._queue.append((expiry, edge))
        if fresh:
            self._service.apply(Batch.inserts(fresh))
            self.stats.arrivals += len(fresh)
        self.stats.degeneracy_timeline.append((t, self.degeneracy()))

    def advance_to(self, t: float) -> int:
        """Expire every edge whose lifetime ended by time ``t``.

        All due edges leave the engine as one removal commit.  Returns
        the number of edges removed.
        """
        if t < self._now:
            raise WorkloadError(
                f"cannot rewind time from {self._now} to {t}"
            )
        self._now = t
        due: list[Edge] = []
        queue = self._queue
        while queue and queue[0][0] <= t:
            expiry, edge = queue.popleft()
            if self._expiry.get(edge) != expiry:
                continue  # refreshed since this entry was queued
            del self._expiry[edge]
            due.append(edge)
        if due:
            self._service.apply(Batch.removes(due))
            self.stats.expiries += len(due)
        return len(due)

    def drain(self) -> int:
        """Expire everything (end of stream); returns edges removed."""
        return self.advance_to(
            max((e for e, _ in self._queue), default=self._now)
        )

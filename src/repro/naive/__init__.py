"""Recompute-from-scratch engine: correctness oracle and cost floor."""

from repro.naive.maintainer import NaiveCoreMaintainer

__all__ = ["NaiveCoreMaintainer"]

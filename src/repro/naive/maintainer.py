"""Core "maintenance" by full recomputation.

Runs ``CoreDecomp`` after every update — ``O(m + n)`` per edge, which is
exactly the cost the maintenance algorithms exist to avoid.  It serves two
purposes here:

* the correctness oracle for the test-suite (every other engine must agree
  with it after every update);
* the from-scratch baseline the paper's introduction argues against.

Its :meth:`~NaiveCoreMaintainer.apply_batch` is the one place recomputation
is genuinely competitive: all of a batch's mutations are applied first and
``CoreDecomp`` runs **once per batch** instead of once per edge, which also
makes it a cheap oracle for whole-batch agreement tests.
"""

from __future__ import annotations

import time
from typing import Hashable, Mapping

from repro.core.decomposition import core_numbers
from repro.engine.base import CoreMaintainer, UpdateResult
from repro.engine.batch import Batch, BatchResult
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


class NaiveCoreMaintainer(CoreMaintainer):
    """Recompute all core numbers from scratch after each update."""

    name = "naive"

    def __init__(self, graph: DynamicGraph) -> None:
        super().__init__(graph)
        self._core: dict[Vertex, int] = core_numbers(graph)
        #: Full ``CoreDecomp`` passes since construction (one per update,
        #: one per batch through :meth:`apply_batch`).
        self.recomputations = 0

    @property
    def core(self) -> Mapping[Vertex, int]:
        return self._core

    def add_vertex(self, vertex: Vertex) -> bool:
        if not self._graph.add_vertex(vertex):
            return False
        self._core[vertex] = 0
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        self._graph.add_vertex(u)
        self._graph.add_vertex(v)
        k = min(self._core.get(u, 0), self._core.get(v, 0))
        self._graph.add_edge(u, v)
        return self._recompute("insert", (u, v), k)

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        k = min(self._core[u], self._core[v])
        self._graph.remove_edge(u, v)
        return self._recompute("remove", (u, v), k)

    def apply_batch(self, batch: Batch) -> BatchResult:
        """Apply all mutations, then run ``CoreDecomp`` once.

        One ``O(m + n)`` pass per *batch* instead of per edge makes the
        naive engine a practical oracle for batched workloads.  Per-edge
        attribution is impossible under this schedule, so
        ``BatchResult.results`` is ``None``; ``changed`` carries the net
        core delta of every vertex over the whole batch.
        """
        started = time.perf_counter()
        graph = self._graph
        old_core = dict(self._core)
        inserts = removes = 0
        try:
            for op in batch:
                u, v = op.edge
                if op.kind == "insert":
                    graph.add_edge(u, v)
                    inserts += 1
                else:
                    graph.remove_edge(u, v)
                    removes += 1
        finally:
            # Recompute even when an op raises mid-batch: the mutations
            # that did land must not leave the core map out of sync.
            new_core = core_numbers(graph)
            self._core = new_core
            self.recomputations += 1
        changed = {
            v: new_core.get(v, 0) - old_core.get(v, 0)
            for v in old_core.keys() | new_core.keys()
            if new_core.get(v, 0) != old_core.get(v, 0)
        }
        return BatchResult(
            engine=self.name,
            inserts=inserts,
            removes=removes,
            changed=changed,
            visited=graph.n,
            seconds=time.perf_counter() - started,
            results=None,
            counters={"recomputations": 1},
        )

    def _batch_counters(self) -> dict[str, int]:
        return {"recomputations": self.recomputations}

    def _recompute(self, kind: str, edge: tuple, k: int) -> UpdateResult:
        new_core = core_numbers(self._graph)
        self.recomputations += 1
        changed = tuple(
            v for v, c in new_core.items() if self._core.get(v) != c
        )
        self._core = new_core
        # The whole graph is "visited" by a recomputation.
        return UpdateResult(kind, edge, k, changed, self._graph.n)

    def _forget_vertex(self, vertex: Vertex) -> None:
        self._core.pop(vertex, None)

"""Core "maintenance" by full recomputation.

Runs ``CoreDecomp`` after every update — ``O(m + n)`` per edge, which is
exactly the cost the maintenance algorithms exist to avoid.  It serves two
purposes here:

* the correctness oracle for the test-suite (every other engine must agree
  with it after every update);
* the from-scratch baseline the paper's introduction argues against.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.core.base import CoreMaintainer, UpdateResult
from repro.core.decomposition import core_numbers
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


class NaiveCoreMaintainer(CoreMaintainer):
    """Recompute all core numbers from scratch after each update."""

    name = "naive"

    def __init__(self, graph: DynamicGraph) -> None:
        super().__init__(graph)
        self._core: dict[Vertex, int] = core_numbers(graph)

    @property
    def core(self) -> Mapping[Vertex, int]:
        return self._core

    def add_vertex(self, vertex: Vertex) -> bool:
        if not self._graph.add_vertex(vertex):
            return False
        self._core[vertex] = 0
        return True

    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        self._graph.add_vertex(u)
        self._graph.add_vertex(v)
        k = min(self._core.get(u, 0), self._core.get(v, 0))
        self._graph.add_edge(u, v)
        return self._recompute("insert", (u, v), k)

    def remove_edge(self, u: Vertex, v: Vertex) -> UpdateResult:
        k = min(self._core[u], self._core[v])
        self._graph.remove_edge(u, v)
        return self._recompute("remove", (u, v), k)

    def _recompute(self, kind: str, edge: tuple, k: int) -> UpdateResult:
        new_core = core_numbers(self._graph)
        changed = tuple(
            v for v, c in new_core.items() if self._core.get(v) != c
        )
        self._core = new_core
        # The whole graph is "visited" by a recomputation.
        return UpdateResult(kind, edge, k, changed, self._graph.n)

    def _forget_vertex(self, vertex: Vertex) -> None:
        self._core.pop(vertex, None)

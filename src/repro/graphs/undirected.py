"""A dynamic, simple, undirected graph.

This is the substrate every maintenance engine operates on: adjacency sets
with O(1) expected edge insertion/removal/lookup, no parallel edges, no
self-loops (k-core semantics are defined on simple graphs; a self-loop
contributes 2 to a vertex's degree in most conventions and breaks the
peeling invariants, so we reject them outright).

Vertices may be any hashable object; the bundled datasets use integers.

Hot paths in the algorithms read :attr:`DynamicGraph.adj` directly — a
``dict`` mapping each vertex to its neighbor ``set``.  Callers must treat it
as read-only; all mutation goes through the methods so that edge counts stay
consistent.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class DynamicGraph:
    """Simple undirected graph under edge/vertex insertions and removals."""

    __slots__ = ("_adj", "_m")

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        vertices: Iterable[Vertex] = (),
    ) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._m = 0
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "DynamicGraph":
        """Build a graph from an edge iterable (duplicates rejected)."""
        return cls(edges=edges)

    def copy(self) -> "DynamicGraph":
        """An independent deep copy of the adjacency structure."""
        clone = DynamicGraph()
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._m = self._m
        return clone

    def subgraph(self, vertices: Iterable[Vertex]) -> "DynamicGraph":
        """The subgraph induced by ``vertices`` (unknown vertices ignored)."""
        keep = {v for v in vertices if v in self._adj}
        sub = DynamicGraph(vertices=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep and not sub.has_edge(u, v):
                    sub.add_edge(u, v)
        return sub

    # ------------------------------------------------------------------
    # Size / membership
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def adj(self) -> dict[Vertex, set[Vertex]]:
        """The adjacency map.  **Read-only** for callers."""
        return self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicGraph(n={self.n}, m={self.m})"

    def has_vertex(self, vertex: Vertex) -> bool:
        """Whether ``vertex`` is in the graph."""
        return vertex in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether edge ``(u, v)`` is in the graph."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def degree(self, vertex: Vertex) -> int:
        """Degree of ``vertex``.  Raises :class:`VertexNotFoundError`."""
        try:
            return len(self._adj[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterator over the neighbors of ``vertex``."""
        try:
            return iter(self._adj[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertices(self) -> Iterator[Vertex]:
        """Iterator over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterator over all edges, each reported once."""
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def average_degree(self) -> float:
        """``2m / n`` (0.0 for an empty graph)."""
        return (2.0 * self._m / self.n) if self.n else 0.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> bool:
        """Add an isolated vertex; returns ``False`` if already present."""
        if vertex in self._adj:
            return False
        self._adj[vertex] = set()
        return True

    def remove_vertex(self, vertex: Vertex) -> list[Edge]:
        """Remove ``vertex`` and all incident edges.

        Returns the list of removed edges (useful for engines that simulate
        vertex removal as a sequence of edge removals).
        """
        try:
            nbrs = self._adj.pop(vertex)
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        removed = []
        for w in nbrs:
            self._adj[w].discard(vertex)
            removed.append((vertex, w))
        self._m -= len(removed)
        return removed

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert edge ``(u, v)``, creating missing endpoints.

        Raises :class:`SelfLoopError` for ``u == v`` and
        :class:`EdgeExistsError` for duplicates.
        """
        if u == v:
            raise SelfLoopError(u)
        adj = self._adj
        nbrs_u = adj.get(u)
        if nbrs_u is None:
            nbrs_u = adj[u] = set()
        elif v in nbrs_u:
            raise EdgeExistsError(u, v)
        nbrs_v = adj.get(v)
        if nbrs_v is None:
            nbrs_v = adj[v] = set()
        nbrs_u.add(v)
        nbrs_v.add(u)
        self._m += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove edge ``(u, v)``.  Raises :class:`EdgeNotFoundError`."""
        nbrs_u = self._adj.get(u)
        if nbrs_u is None or v not in nbrs_u:
            raise EdgeNotFoundError(u, v)
        nbrs_u.discard(v)
        self._adj[v].discard(u)
        self._m -= 1

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------

    def connected_component(self, start: Vertex) -> set[Vertex]:
        """Vertices reachable from ``start`` (including ``start``)."""
        if start not in self._adj:
            raise VertexNotFoundError(start)
        seen = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for w in self._adj[u]:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return seen

    def degree_histogram(self) -> dict[int, int]:
        """Map degree -> number of vertices with that degree."""
        hist: dict[int, int] = {}
        for nbrs in self._adj.values():
            d = len(nbrs)
            hist[d] = hist.get(d, 0) + 1
        return hist

"""Registry of the 11 evaluation datasets (synthetic stand-ins).

The paper evaluates on 11 public graphs (Table I).  Offline we substitute
each with a generator from :mod:`repro.graphs.generators` whose structural
profile — degree distribution, clustering, coreness — matches the original
(see DESIGN.md §2 for the substitution rationale).  Sizes default to a few
thousand vertices so pure-Python experiments finish quickly; pass a larger
``scale`` to grow any dataset proportionally, or set the ``REPRO_SCALE``
environment variable to rescale every experiment at once.

Each spec also records the *paper's* published statistics so Table I can be
reproduced side by side (paper numbers vs stand-in numbers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DatasetError
from repro.graphs import generators
from repro.graphs.temporal import TemporalEdgeStream
from repro.graphs.undirected import DynamicGraph

Edge = tuple[int, int]


@dataclass(frozen=True)
class PaperStats:
    """Statistics of the original dataset as published in Table I."""

    n: int
    m: int
    avg_deg: float
    max_k: int


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset: generator recipe + published statistics."""

    name: str
    kind: str
    temporal: bool
    builder: Callable[[float, int], list[Edge]]
    paper: PaperStats
    description: str = ""


@dataclass
class LoadedDataset:
    """A generated dataset instance."""

    spec: DatasetSpec
    edges: list[Edge] = field(repr=False)
    seed: int
    scale: float

    @property
    def name(self) -> str:
        return self.spec.name

    def graph(self) -> DynamicGraph:
        """The full graph."""
        return DynamicGraph.from_edges(self.edges)

    def stream(self) -> TemporalEdgeStream:
        """The dataset as a temporal stream (generation order = time)."""
        return TemporalEdgeStream.from_edges(self.edges)


def _env_scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


def _sz(base: int, scale: float) -> int:
    return max(16, int(base * scale))


# ----------------------------------------------------------------------
# Builders: one per dataset.  ``scale`` multiplies vertex counts; degree
# parameters stay fixed so the degree distribution is scale-invariant.
# ----------------------------------------------------------------------

def _facebook(scale: float, seed: int) -> list[Edge]:
    return generators.powerlaw_cluster(
        n=_sz(3000, scale), m_attach=13, triangle_prob=0.6, seed=seed
    )


def _youtube(scale: float, seed: int) -> list[Edge]:
    return generators.chung_lu(
        n=_sz(9000, scale), avg_deg=5.8, exponent=2.2, seed=seed
    )


def _dblp(scale: float, seed: int) -> list[Edge]:
    n = _sz(5000, scale)
    return generators.affiliation_collaboration(
        n=n, n_events=int(n * 1.4), max_event_size=6, seed=seed
    )


def _patents(scale: float, seed: int) -> list[Edge]:
    return generators.layered_citation(n=_sz(8000, scale), refs_mean=4.4, seed=seed)


def _orkut(scale: float, seed: int) -> list[Edge]:
    return generators.powerlaw_cluster(
        n=_sz(2500, scale), m_attach=38, triangle_prob=0.3, seed=seed
    )


def _livejournal(scale: float, seed: int) -> list[Edge]:
    return generators.barabasi_albert(n=_sz(6000, scale), m_attach=9, seed=seed)


def _gowalla(scale: float, seed: int) -> list[Edge]:
    return generators.chung_lu(
        n=_sz(4000, scale), avg_deg=9.7, exponent=2.4, seed=seed
    )


def _ca(scale: float, seed: int) -> list[Edge]:
    rows = _sz(45, scale**0.5)
    cols = _sz(44, scale**0.5)
    return generators.road_grid(
        rows=rows, cols=cols, keep_prob=0.72, diagonal_prob=0.08, seed=seed
    )


def _pokec(scale: float, seed: int) -> list[Edge]:
    return generators.barabasi_albert(n=_sz(5000, scale), m_attach=14, seed=seed)


def _berkstan(scale: float, seed: int) -> list[Edge]:
    return generators.copying_model(
        n=_sz(4000, scale), out_degree=10, copy_prob=0.75, seed=seed
    )


def _google(scale: float, seed: int) -> list[Edge]:
    return generators.copying_model(
        n=_sz(5000, scale), out_degree=5, copy_prob=0.6, seed=seed
    )


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            "facebook", "social (temporal)", True, _facebook,
            PaperStats(63_731, 817_035, 25.64, 52),
            "Dense friendship network with timestamps.",
        ),
        DatasetSpec(
            "youtube", "social (temporal)", True, _youtube,
            PaperStats(3_223_589, 9_375_374, 5.82, 88),
            "Sparse heavy-tailed subscription network.",
        ),
        DatasetSpec(
            "dblp", "collaboration (temporal)", True, _dblp,
            PaperStats(1_314_050, 5_362_414, 8.16, 118),
            "Co-authorship cliques accreted paper by paper.",
        ),
        DatasetSpec(
            "patents", "citation", False, _patents,
            PaperStats(3_774_768, 16_518_947, 8.75, 64),
            "Layered citation graph; the traversal algorithm's worst case.",
        ),
        DatasetSpec(
            "orkut", "social", False, _orkut,
            PaperStats(3_072_441, 117_185_083, 76.28, 253),
            "Very dense social network.",
        ),
        DatasetSpec(
            "livejournal", "social", False, _livejournal,
            PaperStats(4_846_609, 42_851_237, 17.68, 372),
            "Large blogging community graph.",
        ),
        DatasetSpec(
            "gowalla", "location-based social", False, _gowalla,
            PaperStats(196_591, 950_327, 9.67, 51),
            "Check-in friendship network.",
        ),
        DatasetSpec(
            "ca", "road", False, _ca,
            PaperStats(1_965_206, 2_766_607, 2.82, 3),
            "California road network; near-planar, max coreness 3.",
        ),
        DatasetSpec(
            "pokec", "social", False, _pokec,
            PaperStats(1_632_803, 22_301_964, 27.32, 47),
            "Slovak social network.",
        ),
        DatasetSpec(
            "berkstan", "web", False, _berkstan,
            PaperStats(685_230, 6_649_470, 19.41, 201),
            "Berkeley/Stanford web crawl; dense nucleus.",
        ),
        DatasetSpec(
            "google", "web", False, _google,
            PaperStats(875_713, 4_322_051, 9.87, 44),
            "Google web graph.",
        ),
    )
}

#: The three graphs the paper uses for scalability/stability experiments.
LARGEST_THREE = ("patents", "orkut", "livejournal")

#: The two graphs used for the pc/sc/oc distribution study (Fig. 5).
FIG5_PAIR = ("patents", "orkut")


def dataset_names() -> tuple[str, ...]:
    """Names of all registered datasets, in Table I order."""
    return tuple(DATASETS)


def load_dataset(
    name: str,
    scale: Optional[float] = None,
    seed: int = 42,
) -> LoadedDataset:
    """Generate a dataset stand-in.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    scale:
        Multiplier on the base vertex count; defaults to the ``REPRO_SCALE``
        environment variable (itself defaulting to 1.0).
    seed:
        RNG seed — the same (name, scale, seed) triple always yields the
        identical edge list.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(name, dataset_names()) from None
    if scale is None:
        scale = _env_scale()
    edges = spec.builder(scale, seed)
    return LoadedDataset(spec=spec, edges=edges, seed=seed, scale=scale)

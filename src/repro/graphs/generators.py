"""Synthetic graph generators used as stand-ins for the paper's datasets.

The paper evaluates on 11 real graphs downloaded from SNAP and Konect.
Those are not available offline, so :mod:`repro.graphs.datasets` maps each
one to a generator below whose output matches the *structural profile* that
drives the algorithms' behaviour: degree distribution, clustering (which
controls how large subcores/purecores get), and coreness profile.

Every generator:

* returns a ``list[(u, v)]`` of unique undirected edges with integer
  vertices ``0..n-1``, in **generation order** (which doubles as the
  timestamp order for temporal datasets);
* is deterministic given its ``seed``;
* never emits self-loops or duplicate edges.
"""

from __future__ import annotations

import bisect
import random
from typing import Optional

Edge = tuple[int, int]


def _norm(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def erdos_renyi_gnm(n: int, m: int, seed: Optional[int] = None) -> list[Edge]:
    """Uniform random graph with ``n`` vertices and ``m`` distinct edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges among {n} vertices")
    rng = random.Random(seed)
    chosen: set[Edge] = set()
    edges: list[Edge] = []
    while len(edges) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = _norm(u, v)
        if e in chosen:
            continue
        chosen.add(e)
        edges.append(e)
    return edges


def barabasi_albert(n: int, m_attach: int, seed: Optional[int] = None) -> list[Edge]:
    """Preferential attachment (scale-free social-network profile).

    Each arriving vertex attaches to ``m_attach`` distinct existing vertices
    chosen proportionally to their current degree.
    """
    if n <= m_attach:
        raise ValueError("n must exceed m_attach")
    rng = random.Random(seed)
    edges: list[Edge] = []
    # Seed clique-ish nucleus: a path over the first m_attach + 1 vertices.
    repeated: list[int] = []  # one entry per degree unit
    for v in range(1, m_attach + 1):
        edges.append((v - 1, v))
        repeated.extend((v - 1, v))
    for v in range(m_attach + 1, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            targets.add(repeated[rng.randrange(len(repeated))])
        for t in targets:
            edges.append(_norm(t, v))
            repeated.append(t)
            repeated.append(v)
    return edges


def powerlaw_cluster(
    n: int,
    m_attach: int,
    triangle_prob: float,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Holme–Kim model: preferential attachment plus triangle closure.

    Like :func:`barabasi_albert` but after each preferential link, with
    probability ``triangle_prob`` the next link closes a triangle by
    attaching to a random neighbor of the previous target.  High clustering
    plus a power-law tail — the profile of dense social networks (Facebook,
    Orkut) whose purecores the paper shows to be large.
    """
    if n <= m_attach:
        raise ValueError("n must exceed m_attach")
    rng = random.Random(seed)
    edges: list[Edge] = []
    adj: dict[int, list[int]] = {v: [] for v in range(n)}
    repeated: list[int] = []

    def connect(u: int, v: int) -> bool:
        if u == v or v in adj[u]:
            return False
        edges.append(_norm(u, v))
        adj[u].append(v)
        adj[v].append(u)
        repeated.append(u)
        repeated.append(v)
        return True

    for v in range(1, m_attach + 1):
        connect(v - 1, v)
    for v in range(m_attach + 1, n):
        made = 0
        last_target: Optional[int] = None
        guard = 0
        while made < m_attach and guard < 50 * m_attach:
            guard += 1
            if (
                last_target is not None
                and adj[last_target]
                and rng.random() < triangle_prob
            ):
                candidate = adj[last_target][rng.randrange(len(adj[last_target]))]
            else:
                candidate = repeated[rng.randrange(len(repeated))]
            if connect(v, candidate):
                made += 1
                last_target = candidate
    return edges


def chung_lu(
    n: int,
    avg_deg: float,
    exponent: float = 2.3,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Expected-degree (Chung–Lu) power-law graph.

    Vertex ``i`` gets weight ``(i + i0) ** (-1 / (exponent - 1))``; edges are
    sampled with endpoint probability proportional to weight until
    ``round(n * avg_deg / 2)`` distinct edges exist.  Matches sparse
    heavy-tailed graphs such as Youtube and Gowalla.
    """
    if exponent <= 2.0:
        raise ValueError("exponent must exceed 2 for a proper Chung-Lu graph")
    rng = random.Random(seed)
    target_m = max(1, round(n * avg_deg / 2.0))
    alpha = 1.0 / (exponent - 1.0)
    weights = [(i + 1.0) ** (-alpha) for i in range(n)]
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    total = cumulative[-1]

    def draw() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    chosen: set[Edge] = set()
    edges: list[Edge] = []
    attempts = 0
    limit = 200 * target_m
    while len(edges) < target_m and attempts < limit:
        attempts += 1
        u, v = draw(), draw()
        if u == v:
            continue
        e = _norm(u, v)
        if e in chosen:
            continue
        chosen.add(e)
        edges.append(e)
    return edges


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Small-world ring lattice with rewiring probability ``beta``."""
    if k % 2 or k >= n:
        raise ValueError("k must be even and smaller than n")
    rng = random.Random(seed)
    chosen: set[Edge] = set()
    edges: list[Edge] = []
    for u in range(n):
        for step in range(1, k // 2 + 1):
            v = (u + step) % n
            if rng.random() < beta:
                guard = 0
                while guard < 100:
                    guard += 1
                    w = rng.randrange(n)
                    if w != u and _norm(u, w) not in chosen:
                        v = w
                        break
            e = _norm(u, v)
            if e not in chosen:
                chosen.add(e)
                edges.append(e)
    return edges


def copying_model(
    n: int,
    out_degree: int,
    copy_prob: float,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Web-graph copying model (Kumar et al. profile).

    Each new vertex picks a random prototype; each of its ``out_degree``
    links copies a random neighbor of the prototype with probability
    ``copy_prob`` and otherwise links to a uniform existing vertex.
    Produces the dense nuclei and high max-coreness of web crawls
    (BerkStan, Google).
    """
    rng = random.Random(seed)
    edges: list[Edge] = []
    adj: dict[int, list[int]] = {v: [] for v in range(n)}

    def connect(u: int, v: int) -> bool:
        if u == v or v in adj[u]:
            return False
        edges.append(_norm(u, v))
        adj[u].append(v)
        adj[v].append(u)
        return True

    nucleus = min(out_degree + 1, n)
    for u in range(nucleus):
        for v in range(u + 1, nucleus):
            connect(u, v)
    for v in range(nucleus, n):
        prototype = rng.randrange(v)
        made = 0
        guard = 0
        while made < out_degree and guard < 50 * out_degree:
            guard += 1
            if adj[prototype] and rng.random() < copy_prob:
                candidate = adj[prototype][rng.randrange(len(adj[prototype]))]
            else:
                candidate = rng.randrange(v)
            if connect(v, candidate):
                made += 1
    return edges


def affiliation_collaboration(
    n: int,
    n_events: int,
    max_event_size: int = 6,
    activity_exponent: float = 2.1,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Collaboration network built from co-authorship "events" (DBLP-like).

    ``n_events`` papers are generated in timestamp order; each paper selects
    2..``max_event_size`` authors with power-law activity weights and adds a
    clique among them.  Cliques make subcores chunky, mirroring DBLP's
    coreness profile (max k = 118 comes from one huge author list).
    """
    rng = random.Random(seed)
    alpha = 1.0 / (activity_exponent - 1.0)
    weights = [(i + 1.0) ** (-alpha) for i in range(n)]
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    total = cumulative[-1]

    def draw_author() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    chosen: set[Edge] = set()
    edges: list[Edge] = []
    sizes = list(range(2, max_event_size + 1))
    size_weights = [1.0 / (s * s) for s in sizes]  # small papers dominate
    for _ in range(n_events):
        size = rng.choices(sizes, weights=size_weights)[0]
        authors: set[int] = set()
        guard = 0
        while len(authors) < size and guard < 50 * size:
            guard += 1
            authors.add(draw_author())
        team = sorted(authors)
        for i, u in enumerate(team):
            for v in team[i + 1 :]:
                e = _norm(u, v)
                if e not in chosen:
                    chosen.add(e)
                    edges.append(e)
    return edges


def layered_citation(
    n: int,
    refs_mean: float,
    recency_bias: float = 0.05,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Citation-network profile (Patents-like).

    Vertices arrive in order; vertex ``v`` cites ``Poisson(refs_mean)``
    earlier vertices, drawn from a mix of a recency-biased window and
    uniform history.  Citation graphs have moderate degree, weak clustering
    and mid-sized cores — the regime where the traversal algorithm's
    purecores explode (Fig. 5a of the paper).
    """
    rng = random.Random(seed)
    chosen: set[Edge] = set()
    edges: list[Edge] = []
    window = max(2, int(n * recency_bias))
    for v in range(1, n):
        # Poisson draw via Knuth's method (refs_mean is small).
        refs = 0
        threshold = 2.718281828459045 ** (-refs_mean)
        p = rng.random()
        while p > threshold:
            refs += 1
            p *= rng.random()
        refs = max(1, refs)
        guard = 0
        made = 0
        while made < refs and guard < 50 * refs:
            guard += 1
            if rng.random() < 0.5 and v > 1:
                lo = max(0, v - window)
                u = rng.randrange(lo, v)
            else:
                u = rng.randrange(v)
            e = _norm(u, v)
            if e not in chosen:
                chosen.add(e)
                edges.append(e)
                made += 1
    return edges


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
) -> list[Edge]:
    """R-MAT recursive-matrix generator (Graph500 profile).

    ``2**scale`` vertices and about ``edge_factor * 2**scale`` distinct
    undirected edges, placed by recursively descending a 2x2 probability
    matrix ``[[a, b], [c, 1-a-b-c]]``.  Produces the skewed, community-ish
    structure common in large-graph benchmarking suites.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must lie strictly between 0 and 1")
    rng = random.Random(seed)
    n = 1 << scale
    target = edge_factor * n
    chosen: set[Edge] = set()
    edges: list[Edge] = []
    attempts = 0
    limit = 50 * target
    while len(edges) < target and attempts < limit:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u == v:
            continue
        e = _norm(u, v)
        if e in chosen:
            continue
        chosen.add(e)
        edges.append(e)
    return edges


def forest_fire(
    n: int,
    forward_prob: float = 0.35,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Forest-fire model (Leskovec et al.): densifying temporal growth.

    Each new vertex links to a random ambassador, then "burns" outward:
    from each burned vertex a geometric number of unburned neighbors catch
    fire and also receive links.  Produces shrinking diameters and heavy
    densification — a good stress profile for maintenance algorithms
    because later insertions land in increasingly dense regions.
    """
    if not 0.0 <= forward_prob < 1.0:
        raise ValueError("forward_prob must be in [0, 1)")
    rng = random.Random(seed)
    edges: list[Edge] = []
    adj: dict[int, set[int]] = {0: set()}
    for v in range(1, n):
        ambassador = rng.randrange(v)
        burned = {ambassador}
        frontier = [ambassador]
        links = [ambassador]
        while frontier:
            x = frontier.pop()
            # Geometric burn count with mean p / (1 - p).
            burn = 0
            while rng.random() < forward_prob:
                burn += 1
            if not burn:
                continue
            candidates = [w for w in adj[x] if w not in burned]
            rng.shuffle(candidates)
            for w in candidates[:burn]:
                burned.add(w)
                frontier.append(w)
                links.append(w)
        adj[v] = set()
        for t in links:
            if t not in adj[v]:
                edges.append(_norm(t, v))
                adj[v].add(t)
                adj[t].add(v)
    return edges


def road_grid(
    rows: int,
    cols: int,
    keep_prob: float = 0.72,
    diagonal_prob: float = 0.05,
    dense_cell_prob: float = 0.01,
    seed: Optional[int] = None,
) -> list[Edge]:
    """Road-network profile (the paper's CA dataset: avg deg 2.8, max k 3).

    A ``rows x cols`` lattice where each lattice edge survives with
    ``keep_prob`` (roads are sparser than a full grid), occasional
    diagonals add triangles, and rare fully-braced cells (all four sides
    plus both diagonals — interchanges) form 4-cliques, matching CA's max
    coreness of 3.
    """
    rng = random.Random(seed)
    chosen: set[Edge] = set()
    edges: list[Edge] = []

    def vid(r: int, c: int) -> int:
        return r * cols + c

    def connect(a: int, b: int) -> None:
        e = _norm(a, b)
        if e not in chosen:
            chosen.add(e)
            edges.append(e)

    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            if c + 1 < cols and rng.random() < keep_prob:
                connect(v, vid(r, c + 1))
            if r + 1 < rows and rng.random() < keep_prob:
                connect(v, vid(r + 1, c))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_prob
            ):
                connect(v, vid(r + 1, c + 1))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < dense_cell_prob
            ):
                corners = (v, vid(r, c + 1), vid(r + 1, c), vid(r + 1, c + 1))
                for i, a in enumerate(corners):
                    for b in corners[i + 1 :]:
                        connect(a, b)
    return edges

"""Timestamped edge streams.

The paper's temporal datasets (Facebook, Youtube, DBLP) carry edge
timestamps; the insertion workload replays the *latest* 100,000 edges in
timestamp order.  :class:`TemporalEdgeStream` models exactly that: an edge
sequence sorted by timestamp with cheap suffix/prefix slicing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import WorkloadError
from repro.graphs.undirected import DynamicGraph

Edge = tuple[int, int]
TimedEdge = tuple[int, int, float]


class TemporalEdgeStream:
    """An edge sequence ordered by timestamp."""

    def __init__(self, timed_edges: Iterable[TimedEdge]) -> None:
        self._edges: list[TimedEdge] = list(timed_edges)
        for earlier, later in zip(self._edges, self._edges[1:]):
            if earlier[2] > later[2]:
                self._edges.sort(key=lambda e: e[2])
                break

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "TemporalEdgeStream":
        """Wrap plain edges; position in the sequence becomes the timestamp."""
        return cls((u, v, float(t)) for t, (u, v) in enumerate(edges))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[TimedEdge]:
        return iter(self._edges)

    def __getitem__(self, index: int) -> TimedEdge:
        return self._edges[index]

    def edges(self) -> list[Edge]:
        """All edges (timestamps dropped), oldest first."""
        return [(u, v) for u, v, _ in self._edges]

    def latest(self, k: int) -> list[Edge]:
        """The ``k`` most recent edges, oldest-of-the-k first.

        This is the paper's workload for the temporal graphs: "select the
        latest 100,000 edges".
        """
        if k < 0 or k > len(self._edges):
            raise WorkloadError(
                f"cannot take latest {k} of {len(self._edges)} edges"
            )
        return [(u, v) for u, v, _ in self._edges[len(self._edges) - k :]]

    def ticks(
        self, every: Optional[float] = None
    ) -> Iterator[tuple[float, list[Edge]]]:
        """Group the stream into arrival *ticks* for batched replay.

        Yields ``(t, edges)`` pairs in time order, where every edge of one
        tick shares the tick's timestamp bucket — the unit
        :meth:`repro.streaming.SlidingWindowCoreMonitor.observe_many`
        consumes, so all of a tick's arrivals land on the engine as one
        batch.

        With ``every=None`` a tick is a maximal run of *identical*
        timestamps (the dataset's own granularity).  With ``every > 0``
        timestamps are bucketed into windows of that width — the knob for
        stand-in datasets whose timestamps are dense event indices, where
        a bucket models the burst of arrivals a real feed would deliver
        with one timestamp.  Each tick reports the *latest* timestamp it
        contains, so consecutive ticks are strictly increasing and can be
        fed to a time-ordered consumer directly.
        """
        if every is not None and every <= 0:
            raise WorkloadError(f"tick width must be positive, got {every}")
        pending_key: Optional[float] = None
        pending_t = 0.0
        pending: list[Edge] = []
        for u, v, t in self._edges:
            key = t if every is None else t // every
            if pending and key != pending_key:
                yield pending_t, pending
                pending = []
            pending_key = key
            pending_t = t
            pending.append((u, v))
        if pending:
            yield pending_t, pending

    def split_at(self, index: int) -> tuple[list[Edge], list[Edge]]:
        """Split into (history, future) at ``index``."""
        if index < 0 or index > len(self._edges):
            raise WorkloadError(f"split index {index} out of range")
        history = [(u, v) for u, v, _ in self._edges[:index]]
        future = [(u, v) for u, v, _ in self._edges[index:]]
        return history, future

    def time_range(self) -> Optional[tuple[float, float]]:
        """(min timestamp, max timestamp), or ``None`` when empty."""
        if not self._edges:
            return None
        return self._edges[0][2], self._edges[-1][2]

    def graph(self) -> DynamicGraph:
        """Materialize the full stream as a graph."""
        return DynamicGraph.from_edges((u, v) for u, v, _ in self._edges)

    def graph_before(self, index: int) -> DynamicGraph:
        """Graph of the first ``index`` edges; vertices of later edges are
        included as isolated vertices so maintainers know about them."""
        history, future = self.split_at(index)
        g = DynamicGraph.from_edges(history)
        for u, v in future:
            g.add_vertex(u)
            g.add_vertex(v)
        return g

"""Timestamped edge streams.

The paper's temporal datasets (Facebook, Youtube, DBLP) carry edge
timestamps; the insertion workload replays the *latest* 100,000 edges in
timestamp order.  :class:`TemporalEdgeStream` models exactly that: an edge
sequence sorted by timestamp with cheap suffix/prefix slicing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import WorkloadError
from repro.graphs.undirected import DynamicGraph

Edge = tuple[int, int]
TimedEdge = tuple[int, int, float]


class TemporalEdgeStream:
    """An edge sequence ordered by timestamp."""

    def __init__(self, timed_edges: Iterable[TimedEdge]) -> None:
        self._edges: list[TimedEdge] = list(timed_edges)
        for earlier, later in zip(self._edges, self._edges[1:]):
            if earlier[2] > later[2]:
                self._edges.sort(key=lambda e: e[2])
                break

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "TemporalEdgeStream":
        """Wrap plain edges; position in the sequence becomes the timestamp."""
        return cls((u, v, float(t)) for t, (u, v) in enumerate(edges))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[TimedEdge]:
        return iter(self._edges)

    def __getitem__(self, index: int) -> TimedEdge:
        return self._edges[index]

    def edges(self) -> list[Edge]:
        """All edges (timestamps dropped), oldest first."""
        return [(u, v) for u, v, _ in self._edges]

    def latest(self, k: int) -> list[Edge]:
        """The ``k`` most recent edges, oldest-of-the-k first.

        This is the paper's workload for the temporal graphs: "select the
        latest 100,000 edges".
        """
        if k < 0 or k > len(self._edges):
            raise WorkloadError(
                f"cannot take latest {k} of {len(self._edges)} edges"
            )
        return [(u, v) for u, v, _ in self._edges[len(self._edges) - k :]]

    def ticks(
        self,
        every: Optional[float] = None,
        *,
        every_seconds: Optional[float] = None,
        count: Optional[int] = None,
    ) -> Iterator[tuple[float, list[Edge]]]:
        """Group the stream into arrival *ticks* for batched replay.

        Yields ``(t, edges)`` pairs in time order, where every edge of one
        tick shares the tick's bucket — the unit
        :meth:`repro.streaming.SlidingWindowCoreMonitor.observe_many`
        consumes, so all of a tick's arrivals land on the engine as one
        batch.  The three grouping knobs are mutually exclusive:

        ``every=None`` (and no other knob)
            A tick is a maximal run of *identical* timestamps (the
            dataset's own granularity).
        ``every > 0``
            Timestamps are bucketed into width-``every`` windows by
            absolute value (``t // every``) — the knob for stand-in
            datasets whose timestamps are dense event indices.  Each
            tick reports the *latest* timestamp it contains.
        ``every_seconds > 0``
            Wall-clock windows **aligned to the stream's first
            timestamp**: window ``i`` covers
            ``[t0 + i*w, t0 + (i+1)*w)`` and the tick reports the
            window's *closing* time — the shape of a real feed flushed
            every ``w`` seconds.  Empty windows (including the
            empty *final* window that opens when the last edge sits
            exactly on a boundary) are never emitted.
        ``count >= 1``
            Count-based ticks of exactly ``count`` edges each (the last
            may be shorter), stamped with the latest timestamp they
            contain; stamps are non-decreasing but may repeat when a
            timestamp run spans groups.

        Apart from ``count`` grouping, consecutive tick timestamps are
        strictly increasing and can be fed to a time-ordered consumer
        directly.
        """
        knobs = [k for k in (every, every_seconds, count) if k is not None]
        if len(knobs) > 1:
            raise WorkloadError(
                "pass at most one of every=, every_seconds=, count="
            )
        if count is not None:
            if count < 1:
                raise WorkloadError(
                    f"tick count must be >= 1, got {count}"
                )
            for start in range(0, len(self._edges), count):
                group = self._edges[start : start + count]
                yield group[-1][2], [(u, v) for u, v, _ in group]
            return
        if every_seconds is not None:
            if every_seconds <= 0:
                raise WorkloadError(
                    f"tick width must be positive, got {every_seconds}"
                )
            if not self._edges:
                return
            t0 = self._edges[0][2]
            width = every_seconds
            window: Optional[int] = None
            pending: list[Edge] = []
            for u, v, t in self._edges:
                key = int((t - t0) // width)
                if pending and key != window:
                    yield t0 + (window + 1) * width, pending
                    pending = []
                window = key
                pending.append((u, v))
            if pending:  # never a trailing empty window
                yield t0 + (window + 1) * width, pending
            return
        if every is not None and every <= 0:
            raise WorkloadError(f"tick width must be positive, got {every}")
        pending_key: Optional[float] = None
        pending_t = 0.0
        pending = []
        for u, v, t in self._edges:
            key = t if every is None else t // every
            if pending and key != pending_key:
                yield pending_t, pending
                pending = []
            pending_key = key
            pending_t = t
            pending.append((u, v))
        if pending:
            yield pending_t, pending

    def split_at(self, index: int) -> tuple[list[Edge], list[Edge]]:
        """Split into (history, future) at ``index``."""
        if index < 0 or index > len(self._edges):
            raise WorkloadError(f"split index {index} out of range")
        history = [(u, v) for u, v, _ in self._edges[:index]]
        future = [(u, v) for u, v, _ in self._edges[index:]]
        return history, future

    def time_range(self) -> Optional[tuple[float, float]]:
        """(min timestamp, max timestamp), or ``None`` when empty."""
        if not self._edges:
            return None
        return self._edges[0][2], self._edges[-1][2]

    def graph(self) -> DynamicGraph:
        """Materialize the full stream as a graph."""
        return DynamicGraph.from_edges((u, v) for u, v, _ in self._edges)

    def graph_before(self, index: int) -> DynamicGraph:
        """Graph of the first ``index`` edges; vertices of later edges are
        included as isolated vertices so maintainers know about them."""
        history, future = self.split_at(index)
        g = DynamicGraph.from_edges(history)
        for u, v in future:
            g.add_vertex(u)
            g.add_vertex(v)
        return g

"""Edge-list readers and writers (SNAP and Konect formats).

The paper's datasets ship as plain-text edge lists:

* SNAP format — ``u<TAB>v`` per line, ``#`` comments;
* Konect format — ``u v [weight [timestamp]]`` per line, ``%`` comments.

Both are supported, with transparent gzip based on the ``.gz`` suffix.
Directed inputs are converted to undirected simple graphs the same way the
paper does: direction dropped, duplicates and self-loops skipped.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

from repro.graphs.temporal import TemporalEdgeStream
from repro.graphs.undirected import DynamicGraph

Edge = tuple[int, int]
PathLike = Union[str, Path]

_COMMENT_PREFIXES = ("#", "%")


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode, encoding="utf-8")


def iter_edge_lines(path: PathLike) -> Iterator[list[str]]:
    """Yield whitespace-split fields of every non-comment, non-blank line."""
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            yield line.split()


def read_edge_list(path: PathLike) -> list[Edge]:
    """Read a (possibly directed) edge list as undirected simple edges.

    Duplicate edges (in either direction) and self-loops are dropped,
    matching the paper's preprocessing of the SNAP graphs.
    """
    seen: set[Edge] = set()
    edges: list[Edge] = []
    for fields in iter_edge_lines(path):
        u, v = int(fields[0]), int(fields[1])
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e in seen:
            continue
        seen.add(e)
        edges.append(e)
    return edges


def read_temporal_edge_list(path: PathLike, time_column: int = 3) -> TemporalEdgeStream:
    """Read a Konect-style temporal edge list.

    ``time_column`` is the 0-based field index of the timestamp (Konect uses
    ``u v weight timestamp``, i.e. column 3).  Duplicate undirected edges
    keep their earliest occurrence.
    """
    seen: set[Edge] = set()
    timed: list[tuple[int, int, float]] = []
    for fields in iter_edge_lines(path):
        u, v = int(fields[0]), int(fields[1])
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e in seen:
            continue
        seen.add(e)
        t = float(fields[time_column]) if len(fields) > time_column else float(len(timed))
        timed.append((e[0], e[1], t))
    return TemporalEdgeStream(timed)


def write_edge_list(path: PathLike, edges: Iterable[Edge], header: str = "") -> int:
    """Write edges one per line; returns the number written."""
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u}\t{v}\n")
            count += 1
    return count


def write_graph(path: PathLike, graph: DynamicGraph) -> int:
    """Write a graph's edge set (isolated vertices are not preserved)."""
    return write_edge_list(path, graph.edges())


def read_graph(path: PathLike) -> DynamicGraph:
    """Read an edge list straight into a :class:`DynamicGraph`."""
    return DynamicGraph.from_edges(read_edge_list(path))


# ----------------------------------------------------------------------
# METIS adjacency format (used by partitioners and several core-
# decomposition artifact repositories).
# ----------------------------------------------------------------------

def write_metis(path: PathLike, graph: DynamicGraph) -> int:
    """Write a graph in METIS format (1-based adjacency lines).

    METIS requires contiguous integer vertex ids; arbitrary hashable
    vertices are mapped to ``1..n`` in sorted-by-repr order.  Returns the
    number of vertices written.
    """
    ordered = sorted(graph.vertices(), key=repr)
    index = {v: i + 1 for i, v in enumerate(ordered)}
    with _open_text(path, "w") as handle:
        handle.write(f"{graph.n} {graph.m}\n")
        for v in ordered:
            neighbors = sorted(index[w] for w in graph.adj[v])
            handle.write(" ".join(str(w) for w in neighbors) + "\n")
    return graph.n


def read_metis(path: PathLike) -> DynamicGraph:
    """Read a METIS adjacency file into a graph (vertices ``1..n``).

    Only the plain unweighted format is supported; a format code other
    than ``0``/absent raises :class:`ValueError`.
    """
    graph = DynamicGraph()
    header: Optional[tuple[int, int]] = None
    vertex = 0
    for fields in iter_edge_lines(path):
        if header is None:
            if len(fields) >= 3 and fields[2] not in ("0", "00"):
                raise ValueError(
                    f"unsupported METIS format code {fields[2]!r}"
                )
            header = (int(fields[0]), int(fields[1]))
            for v in range(1, header[0] + 1):
                graph.add_vertex(v)
            continue
        vertex += 1
        for token in fields:
            w = int(token)
            if not graph.has_edge(vertex, w) and vertex != w:
                graph.add_edge(vertex, w)
    if header is not None and graph.m != header[1]:
        raise ValueError(
            f"METIS header declares {header[1]} edges, found {graph.m}"
        )
    return graph

"""Edge-list readers and writers (SNAP and Konect formats).

The paper's datasets ship as plain-text edge lists:

* SNAP format — ``u<TAB>v`` per line, ``#`` comments;
* Konect format — ``u v [weight [timestamp]]`` per line, ``%`` comments.

Both are supported, with transparent gzip based on the ``.gz`` suffix.
Directed inputs are converted to undirected simple graphs the same way the
paper does: direction dropped, duplicates and self-loops skipped.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

from repro.errors import EdgeListFormatError
from repro.graphs.temporal import TemporalEdgeStream
from repro.graphs.undirected import DynamicGraph

Edge = tuple[int, int]
PathLike = Union[str, Path]

_COMMENT_PREFIXES = ("#", "%")

#: Accepted duplicate-edge policies for temporal reads.
DUPLICATE_POLICIES = ("first", "last", "error")


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode, encoding="utf-8")


def iter_numbered_edge_lines(
    path: PathLike,
) -> Iterator[tuple[int, list[str]]]:
    """Yield ``(1-based line number, whitespace-split fields)`` of every
    non-comment, non-blank line.  ``#`` (SNAP) and ``%`` (Konect)
    comments and gzip (``.gz``) inputs are handled transparently."""
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            yield lineno, line.split()


def iter_edge_lines(path: PathLike) -> Iterator[list[str]]:
    """Yield whitespace-split fields of every non-comment, non-blank line."""
    for _, fields in iter_numbered_edge_lines(path):
        yield fields


def read_edge_list(path: PathLike) -> list[Edge]:
    """Read a (possibly directed) edge list as undirected simple edges.

    Duplicate edges (in either direction) and self-loops are dropped,
    matching the paper's preprocessing of the SNAP graphs.
    """
    seen: set[Edge] = set()
    edges: list[Edge] = []
    for fields in iter_edge_lines(path):
        u, v = int(fields[0]), int(fields[1])
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e in seen:
            continue
        seen.add(e)
        edges.append(e)
    return edges


def read_temporal_edge_list(
    path: PathLike,
    time_column: int = 3,
    *,
    strict: bool = False,
    duplicates: str = "first",
) -> TemporalEdgeStream:
    """Read a temporal edge list (Konect or SNAP column conventions).

    ``time_column`` is the 0-based field index of the timestamp — Konect
    uses ``u v weight timestamp`` (column 3, the default), SNAP temporal
    networks use ``u v timestamp`` (column 2).  Lines whose timestamp
    column is absent fall back to their arrival index.  ``#``/``%``
    comments, blank lines and gzip (``.gz``) inputs are tolerated.

    A malformed line (non-integer endpoints, unparsable timestamp)
    raises :class:`~repro.errors.EdgeListFormatError` naming the file
    and 1-based line number.  With ``strict=True`` out-of-order
    timestamps raise too (the file must already be time-sorted); the
    default sorts them.

    ``duplicates`` picks the policy for repeated undirected edges:
    ``"first"`` keeps the earliest occurrence (the paper's
    preprocessing), ``"last"`` keeps the latest timestamp, ``"error"``
    raises on the first repeat.
    """
    if duplicates not in DUPLICATE_POLICIES:
        raise EdgeListFormatError(
            path, 0,
            f"unknown duplicate policy {duplicates!r}; choose from "
            f"{', '.join(DUPLICATE_POLICIES)}",
        )
    occurrence: dict[Edge, int] = {}
    timed: list[tuple[int, int, float]] = []
    last_t: Optional[float] = None
    for lineno, fields in iter_numbered_edge_lines(path):
        if len(fields) < 2:
            raise EdgeListFormatError(
                path, lineno,
                f"expected at least 2 fields, found {len(fields)}",
            )
        try:
            u, v = int(fields[0]), int(fields[1])
        except ValueError:
            raise EdgeListFormatError(
                path, lineno,
                f"endpoints must be integers, got {fields[0]!r} "
                f"{fields[1]!r}",
            ) from None
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if len(fields) > time_column:
            try:
                t = float(fields[time_column])
            except ValueError:
                raise EdgeListFormatError(
                    path, lineno,
                    f"timestamp column {time_column} is not a number: "
                    f"{fields[time_column]!r}",
                ) from None
        else:
            t = float(len(timed))
        if strict and last_t is not None and t < last_t:
            raise EdgeListFormatError(
                path, lineno,
                f"timestamps out of order under strict=True: {t} "
                f"after {last_t}",
            )
        last_t = t
        slot = occurrence.get(e)
        if slot is not None:
            if duplicates == "error":
                raise EdgeListFormatError(
                    path, lineno, f"duplicate edge {e}"
                )
            if duplicates == "last":
                timed[slot] = (e[0], e[1], t)
            continue
        occurrence[e] = len(timed)
        timed.append((e[0], e[1], t))
    return TemporalEdgeStream(timed)


def write_edge_list(path: PathLike, edges: Iterable[Edge], header: str = "") -> int:
    """Write edges one per line; returns the number written."""
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u}\t{v}\n")
            count += 1
    return count


def write_graph(path: PathLike, graph: DynamicGraph) -> int:
    """Write a graph's edge set (isolated vertices are not preserved)."""
    return write_edge_list(path, graph.edges())


def read_graph(path: PathLike) -> DynamicGraph:
    """Read an edge list straight into a :class:`DynamicGraph`."""
    return DynamicGraph.from_edges(read_edge_list(path))


# ----------------------------------------------------------------------
# METIS adjacency format (used by partitioners and several core-
# decomposition artifact repositories).
# ----------------------------------------------------------------------

def write_metis(path: PathLike, graph: DynamicGraph) -> int:
    """Write a graph in METIS format (1-based adjacency lines).

    METIS requires contiguous integer vertex ids; arbitrary hashable
    vertices are mapped to ``1..n`` in sorted-by-repr order.  Returns the
    number of vertices written.
    """
    ordered = sorted(graph.vertices(), key=repr)
    index = {v: i + 1 for i, v in enumerate(ordered)}
    with _open_text(path, "w") as handle:
        handle.write(f"{graph.n} {graph.m}\n")
        for v in ordered:
            neighbors = sorted(index[w] for w in graph.adj[v])
            handle.write(" ".join(str(w) for w in neighbors) + "\n")
    return graph.n


def read_metis(path: PathLike) -> DynamicGraph:
    """Read a METIS adjacency file into a graph (vertices ``1..n``).

    Only the plain unweighted format is supported; a format code other
    than ``0``/absent raises :class:`ValueError`.
    """
    graph = DynamicGraph()
    header: Optional[tuple[int, int]] = None
    vertex = 0
    for fields in iter_edge_lines(path):
        if header is None:
            if len(fields) >= 3 and fields[2] not in ("0", "00"):
                raise ValueError(
                    f"unsupported METIS format code {fields[2]!r}"
                )
            header = (int(fields[0]), int(fields[1]))
            for v in range(1, header[0] + 1):
                graph.add_vertex(v)
            continue
        vertex += 1
        for token in fields:
            w = int(token)
            if not graph.has_edge(vertex, w) and vertex != w:
                graph.add_edge(vertex, w)
    if header is not None and graph.m != header[1]:
        raise ValueError(
            f"METIS header declares {header[1]} edges, found {graph.m}"
        )
    return graph

"""Graph substrate: dynamic undirected graphs, generators, IO, datasets."""

from repro.graphs.undirected import DynamicGraph
from repro.graphs.temporal import TemporalEdgeStream
from repro.graphs.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "DynamicGraph",
    "TemporalEdgeStream",
    "dataset_names",
    "load_dataset",
]

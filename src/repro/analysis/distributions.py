"""Distribution helpers backing the paper's figures.

* :func:`bucket_proportions` — the stacked-bar buckets of Fig. 1
  (≤3, ≤10, ≤100, ≤1000, >1000 vertices visited per insertion);
* :func:`cumulative_distribution` — the CDF curves of Figs. 5 and 10;
* :func:`ratio_sum` — the aggregate ratio of Fig. 2
  (``sum |V'| / sum |V*|`` over an insertion stream).
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Fig. 1's bucket boundaries.
FIG1_BOUNDS: tuple[int, ...] = (3, 10, 100, 1000)

#: Human-readable labels for :data:`FIG1_BOUNDS` buckets.
FIG1_LABELS: tuple[str, ...] = ("<=3", "<=10", "<=100", "<=1000", ">1000")


def bucket_proportions(
    values: Iterable[int],
    bounds: Sequence[int] = FIG1_BOUNDS,
) -> list[float]:
    """Proportion of values in each bucket ``(-inf, b0], (b0, b1], ...,
    (b_last, inf)``.  Returns ``len(bounds) + 1`` proportions summing to 1
    (all zeros for empty input)."""
    counts = [0] * (len(bounds) + 1)
    total = 0
    for value in values:
        total += 1
        for i, bound in enumerate(bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    if total == 0:
        return [0.0] * len(counts)
    return [c / total for c in counts]


def cumulative_distribution(
    values: Iterable[float],
) -> tuple[list[float], list[float]]:
    """Empirical CDF: returns ``(xs, fractions)`` where ``fractions[i]`` is
    the fraction of values ``<= xs[i]``; ``xs`` are the distinct values in
    ascending order."""
    ordered = sorted(values)
    n = len(ordered)
    xs: list[float] = []
    fractions: list[float] = []
    for i, value in enumerate(ordered):
        if i + 1 < n and ordered[i + 1] == value:
            continue
        xs.append(value)
        fractions.append((i + 1) / n)
    return xs, fractions


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of values ``<= threshold`` (0.0 for empty input)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def ratio_sum(numerators: Iterable[int], denominators: Iterable[int]) -> float:
    """``sum(numerators) / sum(denominators)``; the Fig. 2 statistic.

    A zero denominator sum (no core number ever changed) returns
    ``float('inf')`` if any vertex was visited, else 1.0 — matching the
    paper's convention that an ideal algorithm visits exactly ``V*``.
    """
    num = sum(numerators)
    den = sum(denominators)
    if den == 0:
        return float("inf") if num else 1.0
    return num / den


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by nearest-rank; raises on empty input."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]

"""Views over a core decomposition: k-cores, shells, onion layers.

These are the read-side products that make core maintenance useful —
the paper's motivating applications (community search, visualization,
topology analysis) all consume them.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def k_core_vertices(core: Mapping[Vertex, int], k: int) -> set[Vertex]:
    """Vertices of the ``k``-core (``core(v) >= k``)."""
    return {v for v, c in core.items() if c >= k}


def k_core_subgraph(
    graph: DynamicGraph, core: Mapping[Vertex, int], k: int
) -> DynamicGraph:
    """The ``k``-core as an induced subgraph."""
    return graph.subgraph(k_core_vertices(core, k))


def k_shell_vertices(core: Mapping[Vertex, int], k: int) -> set[Vertex]:
    """Vertices with core number exactly ``k`` (the ``k``-shell)."""
    return {v for v, c in core.items() if c == k}


def degeneracy(core: Mapping[Vertex, int]) -> int:
    """Maximum core number (0 for an empty graph)."""
    return max(core.values(), default=0)


def core_spectrum(core: Mapping[Vertex, int]) -> dict[int, int]:
    """Map ``k -> |k-shell|`` for every non-empty shell."""
    spectrum: dict[int, int] = {}
    for c in core.values():
        spectrum[c] = spectrum.get(c, 0) + 1
    return spectrum


def onion_layers(graph: DynamicGraph) -> dict[Vertex, int]:
    """Onion decomposition: the peeling round in which each vertex leaves.

    Refines the k-shell view used by the paper's visualization citations:
    within a shell, layers order vertices from the periphery inward.
    Round ``r`` removes every vertex whose remaining degree is below the
    current core level ``k`` simultaneously.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    remaining = set(degrees)
    layer: dict[Vertex, int] = {}
    round_no = 0
    k = 1
    while remaining:
        peel = [v for v in remaining if degrees[v] < k]
        if not peel:
            k += 1
            continue
        round_no += 1
        for v in peel:
            layer[v] = round_no
            remaining.discard(v)
        for v in peel:
            for w in graph.adj[v]:
                if w in remaining:
                    degrees[w] -= 1
    return layer


def densest_core(
    graph: DynamicGraph, core: Mapping[Vertex, int]
) -> tuple[set[Vertex], float]:
    """The max-core vertex set and its edge density (``m' / n'``).

    The max-core is a classical 2-approximation seed for the densest
    subgraph; :mod:`repro.applications.densest` refines it.
    """
    top = degeneracy(core)
    vertices = k_core_vertices(core, top)
    if not vertices:
        return set(), 0.0
    inner_edges = 0
    for v in vertices:
        for w in graph.adj[v]:
            if w in vertices:
                inner_edges += 1
    inner_edges //= 2
    return vertices, inner_edges / len(vertices)

"""Views over a core decomposition: k-cores, shells, onion layers.

These are the read-side products that make core maintenance useful —
the paper's motivating applications (community search, visualization,
topology analysis) all consume them.  :class:`repro.service.CoreService`
answers every query through this module, so reads never reach into
maintainer internals.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterator, Mapping, Optional

from repro.engine.batch import vertex_sort_key
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def k_core_vertices(core: Mapping[Vertex, int], k: int) -> set[Vertex]:
    """Vertices of the ``k``-core (``core(v) >= k``)."""
    return {v for v, c in core.items() if c >= k}


class KCoreView:
    """A lazy, *live* membership view of one ``k``-core.

    Wraps a core-number mapping (typically an engine's read-only ``core``
    accessor) without copying it: membership tests are O(1) lookups,
    iteration and ``len`` scan on demand, and the view always reflects
    the mapping's **current** state — commit an update and the same view
    answers for the new cores.  Call :meth:`vertices` to pin a frozen
    set, or :meth:`subgraph` for the induced graph.
    """

    __slots__ = ("_core", "_k", "_graph")

    def __init__(
        self,
        core: Mapping[Vertex, int],
        k: int,
        graph: Optional[DynamicGraph] = None,
    ) -> None:
        self._core = core
        self._k = k
        self._graph = graph

    @property
    def k(self) -> int:
        """The view's core level."""
        return self._k

    def __contains__(self, vertex: object) -> bool:
        c = self._core.get(vertex)
        return c is not None and c >= self._k

    def __iter__(self) -> Iterator[Vertex]:
        k = self._k
        return (v for v, c in self._core.items() if c >= k)

    def __len__(self) -> int:
        k = self._k
        return sum(1 for c in self._core.values() if c >= k)

    def __bool__(self) -> bool:
        return any(True for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KCoreView(k={self._k}, size={len(self)})"

    def vertices(self) -> set[Vertex]:
        """Materialize the current membership as a frozen-in-time set."""
        return set(self)

    def subgraph(self) -> DynamicGraph:
        """The ``k``-core as an induced subgraph of the view's graph."""
        if self._graph is None:
            raise ValueError(
                "this KCoreView was built without a graph; "
                "use k_core_subgraph(graph, core, k) instead"
            )
        return self._graph.subgraph(self.vertices())


def top_cores(
    core: Mapping[Vertex, int], n: int
) -> list[tuple[Vertex, int]]:
    """The ``n`` vertices with the highest core numbers.

    Returns ``(vertex, core)`` pairs in descending core order; ties are
    broken by the stable :func:`~repro.engine.batch.vertex_sort_key`, so
    the answer is deterministic for any vertex types.  A heap selection
    (``O(N log n)``), not a full sort — this is a per-query read on the
    service's hot path.
    """
    if n <= 0:
        return []
    return heapq.nsmallest(
        n, core.items(), key=lambda item: (-item[1], vertex_sort_key(item[0]))
    )


def k_core_subgraph(
    graph: DynamicGraph, core: Mapping[Vertex, int], k: int
) -> DynamicGraph:
    """The ``k``-core as an induced subgraph."""
    return graph.subgraph(k_core_vertices(core, k))


def k_shell_vertices(core: Mapping[Vertex, int], k: int) -> set[Vertex]:
    """Vertices with core number exactly ``k`` (the ``k``-shell)."""
    return {v for v, c in core.items() if c == k}


def degeneracy(core: Mapping[Vertex, int]) -> int:
    """Maximum core number (0 for an empty graph)."""
    return max(core.values(), default=0)


def core_spectrum(core: Mapping[Vertex, int]) -> dict[int, int]:
    """Map ``k -> |k-shell|`` for every non-empty shell."""
    spectrum: dict[int, int] = {}
    for c in core.values():
        spectrum[c] = spectrum.get(c, 0) + 1
    return spectrum


def onion_layers(graph: DynamicGraph) -> dict[Vertex, int]:
    """Onion decomposition: the peeling round in which each vertex leaves.

    Refines the k-shell view used by the paper's visualization citations:
    within a shell, layers order vertices from the periphery inward.
    Round ``r`` removes every vertex whose remaining degree is below the
    current core level ``k`` simultaneously.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    remaining = set(degrees)
    layer: dict[Vertex, int] = {}
    round_no = 0
    k = 1
    while remaining:
        peel = [v for v in remaining if degrees[v] < k]
        if not peel:
            k += 1
            continue
        round_no += 1
        for v in peel:
            layer[v] = round_no
            remaining.discard(v)
        for v in peel:
            for w in graph.adj[v]:
                if w in remaining:
                    degrees[w] -= 1
    return layer


def densest_core(
    graph: DynamicGraph, core: Mapping[Vertex, int]
) -> tuple[set[Vertex], float]:
    """The max-core vertex set and its edge density (``m' / n'``).

    The max-core is a classical 2-approximation seed for the densest
    subgraph; :mod:`repro.applications.densest` refines it.
    """
    top = degeneracy(core)
    vertices = k_core_vertices(core, top)
    if not vertices:
        return set(), 0.0
    inner_edges = 0
    for v in vertices:
        for w in graph.adj[v]:
            if w in vertices:
                inner_edges += 1
    inner_edges //= 2
    return vertices, inner_edges / len(vertices)

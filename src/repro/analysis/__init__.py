"""Measurement substrate: structural sets, distributions, k-core views."""

from repro.analysis.subcore import order_core, pure_core, sub_core
from repro.analysis.distributions import (
    bucket_proportions,
    cumulative_distribution,
    ratio_sum,
)
from repro.analysis.kcore_views import (
    core_spectrum,
    degeneracy,
    k_core_subgraph,
    k_shell_vertices,
    onion_layers,
)
from repro.analysis.metrics import UpdateLog
from repro.analysis.validation import (
    ValidationReport,
    validate_against_reference,
    validate_maintainer,
)

__all__ = [
    "UpdateLog",
    "ValidationReport",
    "validate_against_reference",
    "validate_maintainer",
    "bucket_proportions",
    "core_spectrum",
    "cumulative_distribution",
    "degeneracy",
    "k_core_subgraph",
    "k_shell_vertices",
    "onion_layers",
    "order_core",
    "pure_core",
    "ratio_sum",
    "sub_core",
]

"""Aggregation of per-update measurements across a workload.

The experiments repeatedly need the same reductions over a stream of
:class:`~repro.engine.base.UpdateResult` + wall-clock samples: totals,
visited/changed ratios (Fig. 2), visited-size histograms (Fig. 1) and
accumulated times (Table II).  :class:`UpdateLog` collects them once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.distributions import FIG1_BOUNDS, bucket_proportions, ratio_sum
from repro.engine.base import UpdateResult


@dataclass
class UpdateLog:
    """Per-update measurements for one engine over one workload."""

    engine: str = ""
    kinds: list[str] = field(default_factory=list)
    ks: list[int] = field(default_factory=list)
    visited: list[int] = field(default_factory=list)
    changed: list[int] = field(default_factory=list)
    seconds: list[float] = field(default_factory=list)

    def record(self, result: UpdateResult, elapsed: float) -> None:
        """Append one update's outcome."""
        self.kinds.append(result.kind)
        self.ks.append(result.k)
        self.visited.append(result.visited)
        self.changed.append(len(result.changed))
        self.seconds.append(elapsed)

    def extend(self, results: Iterable[UpdateResult], elapsed: float) -> None:
        """Append several updates that were timed as one batch.

        The batch time is attributed to the last update; per-update times
        are zero for the others (used when only totals matter).
        """
        results = list(results)
        for i, result in enumerate(results):
            self.record(result, elapsed if i == len(results) - 1 else 0.0)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def total_seconds(self) -> float:
        """Accumulated wall-clock time (the Table II quantity)."""
        return sum(self.seconds)

    @property
    def total_visited(self) -> int:
        return sum(self.visited)

    @property
    def total_changed(self) -> int:
        return sum(self.changed)

    def visited_to_changed_ratio(self) -> float:
        """``sum |visited| / sum |V*|`` — the Fig. 2 statistic."""
        return ratio_sum(self.visited, self.changed)

    def visited_proportions(self, bounds=FIG1_BOUNDS) -> list[float]:
        """Bucketed distribution of per-update visited counts (Fig. 1)."""
        return bucket_proportions(self.visited, bounds)

    def k_values(self) -> list[int]:
        """Per-update ``K`` values (Fig. 10b plots their CDF)."""
        return list(self.ks)

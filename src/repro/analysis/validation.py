"""End-to-end validation of a maintenance engine's state.

Downstream users embedding a maintainer in a long-lived service want a
cheap way to assert, at checkpoints, that the incremental state still
matches ground truth.  :func:`validate_maintainer` recomputes everything
from scratch and diffs it against the engine — core numbers for any
engine, plus index-specific invariants for the engines that expose them
(the k-order's Lemma 5.1 audit, the traversal hierarchy definitions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.engine.base import CoreMaintainer
from repro.core.decomposition import core_numbers
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


@dataclass
class ValidationReport:
    """Outcome of one validation pass."""

    engine: str
    ok: bool = True
    core_mismatches: dict[Vertex, tuple[int, int]] = field(default_factory=dict)
    index_errors: list[str] = field(default_factory=list)

    def raise_if_invalid(self) -> None:
        """Raise :class:`AssertionError` with a readable diff when invalid."""
        if self.ok:
            return
        parts = []
        if self.core_mismatches:
            sample = dict(list(self.core_mismatches.items())[:5])
            parts.append(
                f"{len(self.core_mismatches)} core mismatches "
                f"(engine, truth), e.g. {sample}"
            )
        parts.extend(self.index_errors)
        raise AssertionError(
            f"engine {self.engine!r} failed validation: " + "; ".join(parts)
        )


def diff_cores(
    maintained: Mapping[Vertex, int], truth: Mapping[Vertex, int]
) -> dict[Vertex, tuple[int, int]]:
    """Vertices where two core maps disagree, as ``{v: (got, want)}``."""
    out: dict[Vertex, tuple[int, int]] = {}
    for v, want in truth.items():
        got = maintained.get(v)
        if got != want:
            out[v] = (got if got is not None else -1, want)
    for v in maintained:
        if v not in truth:
            out[v] = (maintained[v], -1)
    return out


def validate_maintainer(engine: CoreMaintainer) -> ValidationReport:
    """Recompute ground truth and audit engine-specific invariants.

    Costs one full core decomposition (``O(m + n)``) plus index audits —
    intended for checkpoints and tests, not per-update use.
    """
    report = ValidationReport(engine=engine.name)
    truth = core_numbers(engine.graph)
    report.core_mismatches = diff_cores(engine.core, truth)
    if report.core_mismatches:
        report.ok = False
    check = getattr(engine, "check", None)
    if callable(check):
        try:
            check()
        except AssertionError as exc:  # InvariantViolationError included
            report.ok = False
            report.index_errors.append(str(exc))
    return report


def validate_against_reference(
    engine: CoreMaintainer, reference: DynamicGraph
) -> ValidationReport:
    """Additionally verify the engine's graph matches a reference graph.

    Useful when the caller mirrors updates into a shadow structure and
    wants to confirm nothing was dropped or duplicated.
    """
    report = validate_maintainer(engine)
    graph = engine.graph
    if graph.n != reference.n or graph.m != reference.m:
        report.ok = False
        report.index_errors.append(
            f"graph size mismatch: engine (n={graph.n}, m={graph.m}) "
            f"vs reference (n={reference.n}, m={reference.m})"
        )
        return report
    for v in reference.vertices():
        if not graph.has_vertex(v) or graph.adj[v] != reference.adj[v]:
            report.ok = False
            report.index_errors.append(f"adjacency differs at vertex {v!r}")
            break
    return report

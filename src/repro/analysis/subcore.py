"""Structural vertex sets bounding the algorithms' search spaces.

Three nested notions from the paper, all computed here by BFS:

* ``sc(u)`` — the *subcore* (Section III): the maximal connected set of
  vertices with ``core == core(u)`` containing ``u``.  Theorem 3.2 confines
  ``V*`` to the subcores of the inserted/removed edge's endpoints.
* ``pc(u)`` — the *purecore* (Definition 4.1): like the subcore but every
  member besides ``u`` must additionally satisfy ``mcd(w) > core(w)``.
  Upper-bounds the traversal insertion algorithm's visited set ``V'``.
* ``oc(u)`` — the *order core* (Definition 5.4): vertices reachable from
  ``u`` along edges that go *forward* in k-order within the same core
  level.  Upper-bounds the order-based algorithm's ``V+`` (Lemma 5.4).

Figure 5 of the paper plots their cumulative size distributions; order
cores are dramatically smaller and tighter than the other two, which is the
structural explanation for the speedups in Table II.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from repro.core.korder import KOrder
from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def sub_core(
    graph: DynamicGraph, core: Mapping[Vertex, int], u: Vertex
) -> set[Vertex]:
    """``sc(u)``: the connected same-coreness region around ``u``."""
    k = core[u]
    seen = {u}
    frontier = [u]
    while frontier:
        x = frontier.pop()
        for w in graph.adj[x]:
            if w not in seen and core[w] == k:
                seen.add(w)
                frontier.append(w)
    return seen


def pure_core(
    graph: DynamicGraph,
    core: Mapping[Vertex, int],
    mcd: Mapping[Vertex, int],
    u: Vertex,
) -> set[Vertex]:
    """``pc(u)``: the subcore restricted to vertices with ``mcd > core``.

    ``u`` itself is always included (Definition 4.1 puts no condition on
    the seed vertex).
    """
    k = core[u]
    seen = {u}
    frontier = [u]
    while frontier:
        x = frontier.pop()
        for w in graph.adj[x]:
            if w not in seen and core[w] == k and mcd[w] > k:
                seen.add(w)
                frontier.append(w)
    return seen


def order_core(
    graph: DynamicGraph,
    korder: KOrder,
    core: Mapping[Vertex, int],
    u: Vertex,
) -> set[Vertex]:
    """``oc(u)``: forward-reachable same-coreness region (Definition 5.4).

    From any member ``x`` the set extends to neighbors ``w`` with
    ``core(w) == core(u)`` and ``x ≺ w`` in the k-order.
    """
    k = core[u]
    seen = {u}
    frontier = [u]
    while frontier:
        x = frontier.pop()
        for w in graph.adj[x]:
            if w not in seen and core[w] == k and korder.precedes(x, w):
                seen.add(w)
                frontier.append(w)
    return seen


def size_profile(
    graph: DynamicGraph,
    compute: Callable[[Vertex], set[Vertex]],
    vertices,
) -> list[int]:
    """Sizes of ``compute(v)`` over ``vertices`` (Fig. 5 raw data)."""
    return [len(compute(v)) for v in vertices]

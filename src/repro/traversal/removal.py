"""Traversal removal: the CoreDecomp-style cascade (Section IV-B).

Rooted at the endpoint(s) at level ``K``, repeatedly dispose of vertices
whose upper bound ``cd`` (lazily seeded from ``mcd``) dropped below ``K``;
disposal decrements the bound of same-level neighbors.  Linear in
``sum(deg(v) for v in V*)`` — the cheap part of the traversal algorithm.
The expensive part, hierarchy maintenance, happens afterwards in the
maintainer.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def traversal_remove_search(
    graph: DynamicGraph,
    core: dict[Vertex, int],
    mcd: Mapping[Vertex, int],
    roots: tuple[Vertex, ...],
    k: int,
) -> tuple[list[Vertex], int]:
    """Find and apply core decrements after an edge removal at level ``k``.

    The edge must already be gone from ``graph`` and ``mcd`` already
    decremented for the endpoints.  Mutates ``core`` (each disposed vertex
    drops to ``k - 1``).  Returns ``(v_star, touched)`` where ``touched``
    counts vertices whose bound was materialized.
    """
    cd: dict[Vertex, int] = {}
    queued: set[Vertex] = set()
    stack: list[Vertex] = []
    for root in roots:
        cd[root] = mcd[root]
        if cd[root] < k:
            stack.append(root)
            queued.add(root)
    disposed: list[Vertex] = []
    while stack:
        w = stack.pop()
        disposed.append(w)
        core[w] = k - 1
        for z in graph.adj[w]:
            if core[z] != k:
                continue
            bound = cd.get(z)
            if bound is None:
                bound = mcd[z]
            bound -= 1
            cd[z] = bound
            if bound < k and z not in queued:
                stack.append(z)
                queued.add(z)
    return disposed, len(cd)

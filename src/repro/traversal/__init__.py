"""The traversal algorithm (Sariyüce et al.): the paper's baseline.

Implements the PVLDB'13 traversal insertion/removal algorithms and the
VLDBJ'16 multi-hop enhancement (``Trav-h`` for ``h >= 2``), including the
expensive part the paper criticizes: maintenance of the residential-degree
hierarchy (``mcd``, ``pcd``, and deeper levels) after every update.
"""

from repro.traversal.degrees import DegreeHierarchy
from repro.traversal.maintainer import TraversalCoreMaintainer

__all__ = ["DegreeHierarchy", "TraversalCoreMaintainer"]

"""The ``mcd`` / ``pcd`` residential-degree hierarchy (Section IV).

Definitions (for a vertex ``u``; ``r_j`` generalizes to ``h`` hops as in
the VLDBJ'16 enhancement the paper benchmarks as ``Trav-h``):

* ``r_1(u) = mcd(u)`` — neighbors ``w`` with ``core(w) >= core(u)``;
* ``r_j(u)`` for ``j >= 2`` — neighbors ``w`` with ``core(w) > core(u)``,
  or ``core(w) == core(u)`` and ``r_{j-1}(w) > core(w)``.

``r_2`` is exactly ``pcd``.  ``r_j`` aggregates information from ``j`` hops
away, so it prunes the insertion DFS harder — but a core-number change at
one vertex can invalidate ``r_j`` values up to ``j`` hops out, which is why
index maintenance dominates the traversal algorithm's cost (the deficiency
the order-based approach removes).

:meth:`DegreeHierarchy.refresh` performs exactly that hop-expanding delta
maintenance: level ``j`` is recomputed for the vertices adjacent to any
vertex whose core or level-``j-1`` value changed.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.graphs.undirected import DynamicGraph

Vertex = Hashable


def compute_mcd(
    graph: DynamicGraph, core: Mapping[Vertex, int]
) -> dict[Vertex, int]:
    """``r_1``: max-core degree of every vertex."""
    return {
        v: sum(1 for w in nbrs if core[w] >= core[v])
        for v, nbrs in graph.adj.items()
    }


def compute_next_level(
    graph: DynamicGraph,
    core: Mapping[Vertex, int],
    previous: Mapping[Vertex, int],
) -> dict[Vertex, int]:
    """``r_j`` for every vertex, given ``r_{j-1}`` in ``previous``."""
    out: dict[Vertex, int] = {}
    for v, nbrs in graph.adj.items():
        cv = core[v]
        count = 0
        for w in nbrs:
            cw = core[w]
            if cw > cv or (cw == cv and previous[w] > cw):
                count += 1
        out[v] = count
    return out


class DegreeHierarchy:
    """Maintained levels ``r_1 .. r_h`` for a ``Trav-h`` engine."""

    def __init__(
        self, graph: DynamicGraph, core: Mapping[Vertex, int], depth: int
    ) -> None:
        if depth < 1:
            raise ValueError("hierarchy depth must be at least 1 (mcd)")
        self._graph = graph
        self._depth = depth
        self.levels: list[dict[Vertex, int]] = [compute_mcd(graph, core)]
        for _ in range(1, depth):
            self.levels.append(compute_next_level(graph, core, self.levels[-1]))

    @property
    def depth(self) -> int:
        """Number of maintained levels (``h`` for a Trav-h engine)."""
        return self._depth

    @property
    def mcd(self) -> dict[Vertex, int]:
        """``r_1``."""
        return self.levels[0]

    @property
    def top(self) -> dict[Vertex, int]:
        """``r_h`` — the value that seeds ``cd`` in the insertion DFS."""
        return self.levels[-1]

    def prune_level(self) -> dict[Vertex, int]:
        """``r_{h-1}`` — the DFS visit filter (``mcd`` when ``h == 2``)."""
        return self.levels[-2] if self._depth >= 2 else self.levels[-1]

    # ------------------------------------------------------------------

    def register_vertex(self, vertex: Vertex) -> None:
        """Initialize an isolated vertex at every level."""
        for level in self.levels:
            level[vertex] = 0

    def forget_vertex(self, vertex: Vertex) -> None:
        """Drop a vertex that left the graph."""
        for level in self.levels:
            level.pop(vertex, None)

    def recompute_value(
        self, core: Mapping[Vertex, int], j: int, vertex: Vertex
    ) -> int:
        """Fresh ``r_{j+1}`` (``levels[j]``) value for one vertex."""
        cv = core[vertex]
        nbrs = self._graph.adj[vertex]
        if j == 0:
            return sum(1 for w in nbrs if core[w] >= cv)
        previous = self.levels[j - 1]
        count = 0
        for w in nbrs:
            cw = core[w]
            if cw > cv or (cw == cv and previous[w] > cw):
                count += 1
        return count

    def refresh(
        self,
        core: Mapping[Vertex, int],
        changed_core: Iterable[Vertex],
        endpoints: Iterable[Vertex] = (),
    ) -> int:
        """Delta-repair every level after an update.

        ``changed_core`` are the vertices whose core number changed
        (``V*``); ``endpoints`` the edge's endpoints (their adjacency
        changed).  Level ``j`` must be recomputed for the endpoints, for
        ``V*``, and for every vertex adjacent to a vertex whose core or
        ``r_{j-1}`` changed.  Returns the number of value recomputations —
        the quantity that blows up with ``h`` and with ``|nbr(V*)|``,
        reproducing the maintenance cost the paper measures.
        """
        graph = self._graph
        changed_set = {v for v in changed_core if v in graph.adj}
        endpoint_set = {v for v in endpoints if v in graph.adj}
        work = 0
        # Vertices whose level-(j-1) value changed during the previous pass;
        # core changes matter at every level.
        previous_changed: set[Vertex] = set()
        for j in range(self._depth):
            candidates = set(endpoint_set)
            candidates.update(changed_set)
            for w in changed_set:
                candidates.update(graph.adj[w])
            for w in previous_changed:
                candidates.update(graph.adj[w])
            level = self.levels[j]
            now_changed: set[Vertex] = set()
            for x in candidates:
                fresh = self.recompute_value(core, j, x)
                work += 1
                if level.get(x) != fresh:
                    level[x] = fresh
                    now_changed.add(x)
            previous_changed = now_changed
        return work

    def check(self, core: Mapping[Vertex, int]) -> None:
        """Audit all levels against from-scratch recomputation."""
        expected = compute_mcd(self._graph, core)
        for j in range(self._depth):
            if j > 0:
                expected = compute_next_level(self._graph, core, self.levels[j - 1])
            if expected != self.levels[j]:
                bad = {
                    v: (self.levels[j].get(v), expected[v])
                    for v in expected
                    if self.levels[j].get(v) != expected[v]
                }
                raise AssertionError(f"hierarchy level r_{j + 1} stale: {bad}")

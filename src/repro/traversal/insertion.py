"""Traversal insertion: expand-shrink DFS with eviction propagation.

From the root (the endpoint with the smaller core number, ``K``), a DFS
visits vertices ``w`` with ``core(w) == K`` whose prune value exceeds ``K``
(``mcd`` for Trav-2, ``r_{h-1}`` for Trav-h).  Every visited vertex gets a
candidate degree ``cd(w)`` seeded from the top hierarchy level (``pcd`` for
Trav-2) minus its already-evicted neighbors; when ``cd(w)`` is at most
``K`` the vertex is evicted and the eviction propagates backwards through
visited vertices.  Survivors are exactly ``V*``.

This is the algorithm whose search space the paper measures in Figs. 1-2:
``V'`` (the visited set) can be orders of magnitude larger than ``V*``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping

from repro.graphs.undirected import DynamicGraph
from repro.traversal.degrees import DegreeHierarchy

Vertex = Hashable


def traversal_insert_search(
    graph: DynamicGraph,
    core: Mapping[Vertex, int],
    hierarchy: DegreeHierarchy,
    root: Vertex,
    k: int,
) -> tuple[list[Vertex], int, int]:
    """Find ``V*`` for an insertion at level ``k`` starting from ``root``.

    The graph must already contain the new edge and the hierarchy must be
    refreshed for it.  Returns ``(v_star, |V'|, |evicted|)``.
    """
    prune = hierarchy.prune_level()
    seed = hierarchy.top
    if prune[root] <= k:
        # The root itself cannot reach core k+1, and V* must contain the
        # root when non-empty (Theorem 3.2) — nothing to do.
        return [], 1, 0

    cd: dict[Vertex, int] = {}
    visited: set[Vertex] = {root}
    evicted: set[Vertex] = set()
    cd[root] = seed[root]
    stack: list[Vertex] = [root]

    def visit(z: Vertex) -> None:
        visited.add(z)
        # Seed cd with the top-level estimate, corrected for neighbors that
        # were already proven out: they are counted by the estimate (every
        # visited vertex passes the prune filter) but cannot help z.
        value = seed[z]
        for y in graph.adj[z]:
            if y in evicted:
                value -= 1
        cd[z] = value
        stack.append(z)

    while stack:
        w = stack.pop()
        if w in evicted:
            continue
        if cd[w] > k:
            for z in graph.adj[w]:
                if z not in visited and core[z] == k and prune[z] > k:
                    visit(z)
        else:
            _propagate_eviction(graph, core, cd, visited, evicted, w, k)

    v_star = [w for w in visited if w not in evicted]
    return v_star, len(visited), len(evicted)


def _propagate_eviction(
    graph: DynamicGraph,
    core: Mapping[Vertex, int],
    cd: dict[Vertex, int],
    visited: set[Vertex],
    evicted: set[Vertex],
    start: Vertex,
    k: int,
) -> None:
    """Evict ``start`` and cascade through visited vertices (Section IV-A)."""
    queue: deque[Vertex] = deque([start])
    evicted.add(start)
    while queue:
        x = queue.popleft()
        for z in graph.adj[x]:
            if z in visited and z not in evicted and core[z] == k:
                cd[z] -= 1
                if cd[z] <= k:
                    evicted.add(z)
                    queue.append(z)
